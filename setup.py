"""Legacy setuptools entry point (mirrors pyproject.toml).

Present so that ``pip install -e .`` works in offline environments that
lack the ``wheel`` package (pip falls back to ``setup.py develop``).
"""
from setuptools import setup

setup()

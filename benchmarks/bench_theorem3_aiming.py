"""Experiment T3: Theorem 3 — aiming PAO with hard-to-reach experiments.

The ``grad(fred) :- admitted(fred, X)`` situation: a retrieval hides
behind a reduction that only applies in a few contexts, so the plain
per-retrieval quota of Theorem 2 is unattainable.  The aiming variant
budgets *attempts to reach* (Equation 8) and falls back to ``p̂ = 0.5``
for never-reached experiments.
"""

from conftest import record_report

from repro.bench import experiment_theorem3


def test_theorem3_aiming(benchmark):
    result = benchmark.pedantic(
        experiment_theorem3,
        kwargs={"trials": 40, "epsilon": 1.0, "delta": 0.1},
        rounds=1,
        iterations=1,
    )
    record_report(result.report())
    assert result.all_passed
    assert result.data["success_rate"] >= 0.9

"""Experiment C1: head-to-head comparison across methods.

Initial depth-first strategy, the greedy ``Υ̃`` fed the *true*
probabilities, PIB, PALO, budget-scaled PAO, and the brute-force
optimum — normalized expected cost over a battery of random instances.
"""

from conftest import record_report

from repro.bench import experiment_comparison


def test_method_comparison(benchmark):
    result = benchmark.pedantic(
        experiment_comparison,
        kwargs={"instances": 25, "contexts": 1500},
        rounds=1,
        iterations=1,
    )
    record_report(result.report())
    assert result.all_passed
    normalized = result.data["normalized"]
    # Sanity: the optimum anchors at 1.0 and learners approach it.
    assert normalized["optimal"] == 1.0
    assert normalized["PIB"] <= normalized["initial"]
    assert normalized["PAO (scaled budget)"] <= 1.10

"""Experiment E1: the PIB₁ one-shot filter's acceptance regions.

Measures Equation 3's behaviour over repeated independent runs: high
power when the proposed swap truly helps, false-positive rate within
``δ`` when it hurts.
"""

from conftest import record_report

from repro.bench import experiment_pib1_filter


def test_pib1_filter(benchmark):
    result = benchmark.pedantic(
        experiment_pib1_filter,
        kwargs={"trials": 400},
        rounds=1,
        iterations=1,
    )
    record_report(result.report())
    assert result.all_passed

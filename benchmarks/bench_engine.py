"""Experiment S2: Datalog substrate throughput.

Micro-benchmarks of the unit operations everything else is built on:
indexed retrieval, satisficing SLD proof (success and failure paths),
the negation-as-failure search, and semi-naive versus naive bottom-up
evaluation on transitive closure.
"""

import random

from repro.datalog.bottomup import naive_evaluate, seminaive_evaluate
from repro.datalog.database import Database
from repro.datalog.engine import TopDownEngine
from repro.datalog.parser import parse_program, parse_query
from repro.datalog.terms import Atom, Constant
from repro.workloads import (
    db1,
    pauper_rule_base,
    ownership_database,
    university_rule_base,
)


def test_indexed_retrieval(benchmark):
    database = Database()
    for index in range(5000):
        database.add(Atom("edge", [Constant(f"a{index % 50}"),
                                   Constant(f"b{index}")]))
    pattern = Atom("edge", [Constant("a7"), "X"])
    result = benchmark(lambda: sum(1 for _ in database.retrieve(pattern)))
    assert result == 100


def test_sld_satisficing_success(benchmark):
    engine = TopDownEngine(university_rule_base())
    database = db1()
    query = parse_query("instructor(manolis)")
    answer = benchmark(engine.prove, query, database)
    assert answer.proved


def test_sld_satisficing_failure(benchmark):
    engine = TopDownEngine(university_rule_base())
    database = db1()
    query = parse_query("instructor(fred)")
    answer = benchmark(engine.prove, query, database)
    assert not answer.proved


def test_naf_pauper_query(benchmark):
    engine = TopDownEngine(pauper_rule_base())
    database = ownership_database(random.Random(0), n_people=100)
    query = parse_query("pauper(person1)")
    benchmark(engine.prove, query, database)


def _closure_inputs(n_nodes=60):
    base = parse_program("""
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- edge(X, Z), path(Z, Y).
    """)
    database = Database()
    rng = random.Random(1)
    for _ in range(n_nodes * 2):
        src, dst = rng.randrange(n_nodes), rng.randrange(n_nodes)
        database.add(Atom("edge", [Constant(f"n{src}"), Constant(f"n{dst}")]))
    return base, database


def test_seminaive_closure(benchmark):
    base, database = _closure_inputs()
    model = benchmark(seminaive_evaluate, base, database)
    assert len(model.relation("path", 2)) > 0


def test_naive_closure_baseline(benchmark):
    base, database = _closure_inputs()
    model = benchmark(naive_evaluate, base, database)
    assert len(model.relation("path", 2)) > 0


def test_seminaive_agrees_with_naive(benchmark):
    base, database = _closure_inputs(40)

    def both_agree():
        return set(seminaive_evaluate(base, database)) == set(
            naive_evaluate(base, database)
        )

    assert benchmark.pedantic(both_agree, rounds=1, iterations=1)

"""Experiment L1: Lemma 1's sensitivity bound on ``Υ_AOT``.

Randomized instances with perturbed probability vectors: the measured
excess cost ``C_P[Θ_p̂] − C_P[Θ_P]`` must never exceed
``2·Σ F¬(eᵢ)·ρ(eᵢ)·|pᵢ − p̂ᵢ|``; the report also shows how tight the
bound is in practice.
"""

from conftest import record_report

from repro.bench import experiment_lemma1


def test_lemma1_bound(benchmark):
    result = benchmark.pedantic(
        experiment_lemma1,
        kwargs={"trials": 300},
        rounds=1,
        iterations=1,
    )
    record_report(result.report())
    assert result.all_passed
    assert result.data["violations"] == 0

"""Experiment A2: negation-as-failure refutation ordering (§5.2).

The ``pauper`` rule's inner satisficing search — find one owned item —
is itself a strategy-ordering problem; PIB orders the ownership
category scans by their true refutation power per unit cost.
"""

from conftest import record_report

from repro.bench import experiment_naf


def test_naf_refutation_ordering(benchmark):
    result = benchmark.pedantic(
        experiment_naf,
        kwargs={"contexts": 6000},
        rounds=1,
        iterations=1,
    )
    record_report(result.report())
    assert result.all_passed

"""Experiment T2: Theorem 2 — PAO's ε-optimality frequency.

Runs the full Equation 7 budgets on random simple-disjunctive
instances and measures ``Pr[C[Θ_pao] ≤ C[Θ_opt] + ε]``; it must be at
least ``1 − δ``.  A second, scaled-down run probes how conservative the
worst-case budgets are (documented deviation knob ``sample_scale`` —
Theorem 2's guarantee formally applies only at scale 1.0).
"""


from conftest import record_report

from repro.bench import experiment_theorem2


def test_theorem2_full_budget(benchmark):
    result = benchmark.pedantic(
        experiment_theorem2,
        kwargs={"trials": 40, "epsilon": 1.0, "delta": 0.1},
        rounds=1,
        iterations=1,
    )
    record_report(result.report())
    assert result.all_passed
    assert result.data["success_rate"] >= 0.9


def test_theorem2_scaled_budget_still_accurate(benchmark):
    # 1% of the Equation 7 budget: the guarantee is void, yet the
    # estimates are usually good enough — evidence the bound is very
    # conservative (worth reporting, not asserting tightly).
    result = benchmark.pedantic(
        experiment_theorem2,
        kwargs={"seed": 44, "trials": 30, "epsilon": 1.0, "delta": 0.1,
                "sample_scale": 0.01},
        rounds=1,
        iterations=1,
    )
    record_report(result.report())
    assert result.data["success_rate"] >= 0.5

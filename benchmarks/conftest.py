"""Benchmark-suite plumbing.

Experiment reports are collected as the benches run and printed in the
terminal summary (which pytest does not capture), so that
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` records
every table alongside the timing stats.
"""

from typing import List

_REPORTS: List[str] = []


def record_report(report: str) -> None:
    """Queue an experiment report for the terminal summary."""
    _REPORTS.append(report)


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("EXPERIMENT REPORTS")
    for report in _REPORTS:
        for line in report.splitlines():
            terminalreporter.write_line(line)

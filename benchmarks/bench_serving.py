"""Experiment S1: serving-layer throughput and cache effectiveness.

A six-form workload with 2 ms simulated fact-probe latency is served
four ways: sequentially, with four workers, and with the two-tier
cache cold and warm.  Sharding by query form must buy >= 2x batch
throughput at four workers *without* changing any per-form climb
decision (the PIB sequential test stays serial within a form), and a
warm answer cache must answer the repeat pass >= 5x faster with its
hit counters visible in the server snapshot.
"""

from conftest import record_report

from repro.bench import experiment_serving


def test_serving(benchmark):
    result = benchmark.pedantic(
        experiment_serving,
        kwargs={"forms": 6, "queries_per_form": 25, "workers": 4},
        rounds=1,
        iterations=1,
    )
    record_report(result.report())
    assert result.all_passed
    assert result.data["parallel_speedup"] >= 2.0
    assert result.data["warm_speedup"] >= 5.0
    assert result.data["answer_cache"]["hits"] > 0

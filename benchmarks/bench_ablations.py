"""Ablation benches: remove one design ingredient, measure the damage.

* AB1 — drop the sequential-δ schedule (§3.2): naive re-testing
  inflates the false-positive rate several-fold; Equation 6 stays
  within budget.
* AB2 — drop the adaptive processor (§4.1): a fixed-strategy monitor
  starves shadowed retrievals of samples; ``QP^A`` fulfils the quota.
* AB3 — drop the pessimistic ``Δ̃`` (§3): full-information monitoring
  climbs more and lands closer to the optimum — the measured price of
  PIB's unobtrusiveness.
"""

from conftest import record_report

from repro.bench import (
    experiment_ablation_adaptive,
    experiment_ablation_delta,
    experiment_ablation_sequential,
)


def test_ablation_sequential_schedule(benchmark):
    result = benchmark.pedantic(
        experiment_ablation_sequential, rounds=1, iterations=1
    )
    record_report(result.report())
    assert result.all_passed


def test_ablation_adaptive_sampling(benchmark):
    result = benchmark.pedantic(
        experiment_ablation_adaptive, rounds=1, iterations=1
    )
    record_report(result.report())
    assert result.all_passed
    assert result.data["fixed_dg_samples"] == 0


def test_ablation_delta_pessimism(benchmark):
    result = benchmark.pedantic(
        experiment_ablation_delta,
        kwargs={"instances": 30, "contexts": 1200},
        rounds=1,
        iterations=1,
    )
    record_report(result.report())
    assert result.all_passed

"""Experiment F1b: the [Smi89] fact-count heuristic on ``DB_2``.

The paper's Section 2 counter-example: 2,000 ``prof`` facts against 500
``grad`` facts make the heuristic pick the prof-first ``Θ₁``, while a
minors-only query stream makes grad-first ``Θ₂`` clearly superior —
and PIB learns that from the stream alone.
"""

from conftest import record_report

from repro.bench import experiment_smith_vs_learned


def test_smith_vs_learned(benchmark):
    result = benchmark.pedantic(
        experiment_smith_vs_learned,
        kwargs={"contexts": 4000},
        rounds=1,
        iterations=1,
    )
    record_report(result.report())
    assert result.all_passed

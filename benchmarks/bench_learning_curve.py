"""Experiment LC: PIB learning curves on the paper's two graphs.

The 'figure' a systems evaluation would plot: mean observed query cost
per window of the stream, falling from the initial strategy's expected
cost toward the optimum as PIB climbs.
"""

from conftest import record_report

from repro.bench import experiment_learning_curve


def test_learning_curves(benchmark):
    result = benchmark.pedantic(
        experiment_learning_curve,
        kwargs={"contexts": 6000, "window": 500},
        rounds=1,
        iterations=1,
    )
    record_report(result.report())
    assert result.all_passed
    # The tails sit essentially on the optimum for both graphs.
    for label in ("G_A", "G_B"):
        data = result.data[label]
        assert data["windows"][-1] <= 1.2 * data["c_opt"]

"""Experiment F2: PIB hill-climbing on Figure 2's ``G_B``.

Exercises the named transformations of Section 3.2 (``τ_{d,c}``,
``Θ_ABDC``, ``Θ_ACDB``), traces every Figure 3 climb against the
Equation 6 threshold, and compares the final strategy with the
brute-force global optimum.
"""

from conftest import record_report

from repro.bench import experiment_figure2_pib


def test_figure2_pib(benchmark):
    result = benchmark.pedantic(
        experiment_figure2_pib,
        kwargs={"contexts": 4000},
        rounds=1,
        iterations=1,
    )
    record_report(result.report())
    assert result.all_passed
    assert result.data["c_final"] < result.data["c_init"]

"""Experiment F1: the Figure 1 / Section 2 worked example.

Regenerates every number of the paper's ``G_A`` walk-through —
``C[Θ₁] = 3.7``, ``C[Θ₂] = 2.8``, the per-context costs, the Note 5
cost functions, and Section 4's ``Υ_AOT(G_A, p̂) = Θ₁`` — and times the
exact expected-cost evaluation that underlies them.
"""

from conftest import record_report

from repro.bench import experiment_figure1
from repro.strategies.expected_cost import expected_cost_exact
from repro.workloads import g_a, intended_probabilities, theta_1


def test_figure1_experiment(benchmark):
    result = benchmark.pedantic(experiment_figure1, rounds=1, iterations=1)
    record_report(result.report())
    assert result.all_passed
    assert result.data["C1"] == 3.7
    assert result.data["C2"] == 2.8


def test_exact_expected_cost_microbench(benchmark):
    graph = g_a()
    strategy = theta_1(graph)
    probs = intended_probabilities()
    value = benchmark(expected_cost_exact, strategy, probs)
    assert value == 3.7

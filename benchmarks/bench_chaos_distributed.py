"""Experiment A1b: segmented scans under injected faults (§5.2 + chaos).

The same workload as A1, but every segment flakes with its own
transient failure rate (the archive also times out), execution runs
through the resilience layer (retries with jittered backoff, per-arc
breakers), and the learner is killed and restored from a checkpoint at
the halfway point.  PIB must still converge to the provably optimal
ratio order — the settled-outcome reporting keeps fault noise out of
the Δ̃ statistics — and the crash round trip must be byte-identical.
"""

from conftest import record_report

from repro.bench import experiment_distributed_faulty


def test_distributed_scan_ordering_under_faults(benchmark):
    result = benchmark.pedantic(
        experiment_distributed_faulty,
        kwargs={"contexts": 6000},
        rounds=1,
        iterations=1,
    )
    record_report(result.report())
    assert result.all_passed
    assert result.data["learned_order"] == result.data["optimal_order"]
    assert result.data["billed_cost"] >= result.data["settled_cost"]

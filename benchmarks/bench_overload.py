"""Experiment OV1: admission control bounds tail latency under burst.

A four-form workload is offered at 1x and at a 10x burst through a
capacity-8 admission queue, and once more with the queue effectively
unbounded.  Measured in the serving layer's deterministic virtual cost
units, the bounded queue must hold the served p99 flat across the 10x
burst (within 1.25x of the calm p99) and at least 3x below the
unbounded queue's p99, while every request still gets a typed outcome,
the outcome sequence replays byte-for-byte, and no tenant starves
under ``reject-over-quota``.

The chaos leg repeats the bounded burst against a database that both
faults (seeded storage-layer ``FaultPlan``) and drifts (a mid-run
mutation moves every form's facts): zero unhandled exceptions and a
p99 still within 4x of the clean burst's.
"""

from conftest import record_report

from repro.bench import experiment_overload


def test_overload(benchmark):
    result = benchmark.pedantic(
        experiment_overload,
        kwargs={
            "forms": 4,
            "queries_per_form": 12,
            "burst": 10,
            "queue_capacity": 8,
            "tenants": 3,
        },
        rounds=1,
        iterations=1,
    )
    record_report(result.report())
    assert result.all_passed
    assert result.data["stormy_p99"] <= result.data["calm_p99"] * 1.25
    assert result.data["tail_ratio"] >= 3.0
    assert result.data["served"] + result.data["rejected"] + \
        result.data["degraded"] == result.data["offered"]
    assert result.data["chaos_faults_injected"] > 0
    assert result.data["chaos_p99"] <= result.data["stormy_p99"] * 4.0

"""Experiment S1: computational-efficiency claims of Sections 4–5.

* ``Υ_AOT`` runtime vs graph size (polynomial, per §4);
* PIB's per-query overhead — "only maintaining [a few] counters and
  computing Equation 6" (§5.1) — measured as the marginal cost of
  monitoring versus plain execution.
"""

import random

from conftest import record_report

from repro.bench import experiment_upsilon_scaling
from repro.graphs.random_graphs import random_instance
from repro.learning.pib import PIB
from repro.strategies.execution import execute
from repro.strategies.strategy import Strategy
from repro.workloads.distributions import IndependentDistribution


def test_upsilon_scaling(benchmark):
    result = benchmark.pedantic(
        experiment_upsilon_scaling,
        kwargs={"sizes": (10, 20, 40, 80, 160)},
        rounds=1,
        iterations=1,
    )
    record_report(result.report())
    assert result.all_passed


def _pib_setup():
    rng = random.Random(99)
    graph, probs = random_instance(rng, n_internal=4, n_retrievals=8)
    distribution = IndependentDistribution(graph, probs)
    contexts = [distribution.sample(rng) for _ in range(256)]
    return graph, contexts


def test_pib_per_query_overhead(benchmark):
    graph, contexts = _pib_setup()
    pib = PIB(graph, delta=0.05, test_every=1)
    index = iter(range(1_000_000))

    def step():
        pib.process(contexts[next(index) % len(contexts)])

    benchmark(step)


def test_plain_execution_baseline(benchmark):
    graph, contexts = _pib_setup()
    strategy = Strategy.depth_first(graph)
    index = iter(range(1_000_000))

    def step():
        execute(strategy, contexts[next(index) % len(contexts)])

    benchmark(step)

"""Experiment A1: horizontally segmented distributed DB scans (§5.2).

Segment hits are *correlated* (an individual's facts live in exactly
one segment), so ``Υ``'s independence assumption fails — but PIB's
guarantees don't need it, and it converges to the provably optimal
ratio order.
"""

from conftest import record_report

from repro.bench import experiment_distributed


def test_distributed_scan_ordering(benchmark):
    result = benchmark.pedantic(
        experiment_distributed,
        kwargs={"contexts": 6000},
        rounds=1,
        iterations=1,
    )
    record_report(result.report())
    assert result.all_passed
    assert result.data["learned_order"] == result.data["optimal_order"]

"""Experiment D1: drift recovery on a piecewise-stationary workload.

``G_A``'s success probabilities flip halfway through the stream, so the
regime-A optimum becomes the regime-B pessimum.  Drift-aware PIB must
detect the change, open a new epoch, and re-climb to within 10% of the
regime-B optimum; the strategy frozen at the change point must stay
outside that band.  Until the change, the drift-aware learner must
take exactly the same climbs as vanilla PIB (the no-drift no-op
guarantee).
"""

from conftest import record_report

from repro.bench import experiment_drift


def test_drift_recovery(benchmark):
    result = benchmark.pedantic(
        experiment_drift,
        kwargs={"regime_contexts": 2500},
        rounds=1,
        iterations=1,
    )
    record_report(result.report())
    assert result.all_passed
    assert result.data["alarms"] >= 1
    assert result.data["cost_aware"] <= 1.10 * result.data["c_opt_b"]
    assert result.data["cost_frozen"] > 1.10 * result.data["c_opt_b"]

"""Experiment T1: Theorem 1 — PIB's mistake probability is below δ.

Runs PIB over many independent random instances and counts the runs in
which *any* climb increased the true expected cost; Theorem 1 bounds
that frequency by δ over the whole run.
"""

from conftest import record_report

from repro.bench import experiment_theorem1


def test_theorem1_mistake_rate(benchmark):
    result = benchmark.pedantic(
        experiment_theorem1,
        kwargs={"runs": 60, "contexts_per_run": 800, "delta": 0.1},
        rounds=1,
        iterations=1,
    )
    record_report(result.report())
    assert result.all_passed
    assert result.data["mistake_rate"] <= 0.1

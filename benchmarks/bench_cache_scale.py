"""Cache-tier microbenchmarks at serving scale.

The serving caches sit on every query's hot path, so their per-op cost
is a first-order term in end-to-end latency.  These benches time the
:class:`~repro.serving.cache.LRUTable` primitives at 100k entries —
steady-state churn (every put evicts), the hit path, and the miss
path — plus the full :class:`~repro.serving.cache.AnswerCache` store
round-trip.  ``tests/test_cache_scale.py`` asserts the correctness
side (bound, order) of the same regime.
"""

import itertools

from repro.datalog.parser import parse_atom
from repro.datalog.terms import Substitution
from repro.serving.cache import AnswerCache, LRUTable
from repro.system import SystemAnswer

CAPACITY = 100_000


def full_table() -> LRUTable:
    table = LRUTable(CAPACITY, "answer")
    for i in range(CAPACITY):
        table.put(i, i)
    return table


def test_lru_churn_at_capacity(benchmark):
    table = full_table()
    fresh = itertools.count(CAPACITY)

    def churn():
        table.put(next(fresh), 0)  # every put evicts the LRU entry

    benchmark(churn)
    assert len(table) == CAPACITY


def test_lru_hit_at_capacity(benchmark):
    table = full_table()
    keys = itertools.cycle(range(CAPACITY - 1000, CAPACITY))
    benchmark(lambda: table.get(next(keys)))
    assert table.stats.hits > 0


def test_lru_miss_at_capacity(benchmark):
    table = full_table()
    missing = itertools.count(10 * CAPACITY)
    benchmark(lambda: table.get(next(missing)))
    assert table.stats.misses > 0


def test_answer_cache_store_roundtrip(benchmark):
    class _Database:
        cache_key = (1, 0)

    cache = AnswerCache(CAPACITY)
    database = _Database()
    answer = SystemAnswer(
        proved=True, substitution=Substitution(), cost=1.0, learned=True
    )
    queries = itertools.cycle(
        parse_atom(f"q{i}(a)") for i in range(4096)
    )

    def store_then_hit():
        query = next(queries)
        cache.store(query, database, answer)
        return cache.lookup(query, database)

    hit = benchmark(store_then_hit)
    assert hit is not None and hit.cached

"""The tracer: per-query spans and ordered events, exportable as JSONL.

A :class:`Tracer` is a :class:`~repro.observability.recorder.Recorder`
that actually records.  Every hook appends one event dict to
``tracer.events`` (in call order, each stamped with a ``seq`` number)
and folds the event into the attached
:class:`~repro.observability.metrics.MetricsRegistry`.

Span schema
-----------

A *span* is one strategy execution: ``query_begin`` opens it (carrying
the strategy's arc order and whether the resilient executor ran it),
``query_end`` closes it with the billed cost — and, for resilient
runs, the settled cost, retry count, and backoff charge.  Events that
happen inside a run (``attempt``, ``retry``, ``unsettled``,
``breaker_shed``, ``deadline_expired``) carry the ``span`` id of their
enclosing query.  Events that outlive a single query — breaker
transitions (the boards persist across queries), learner events,
checkpoints — carry no span.

Event types (the ``type`` field of each JSONL line):

=================== ====================================================
``query_begin``      span, strategy (arc names), resilient
``query_end``        span, cost, succeeded, settled_cost?, retries?,
                     backoff_cost?, degraded?
``attempt``          span, arc, outcome (``ok``/``blocked``/``fault``),
                     cost, attempt (1-based try number)
``retry``            span, arc, attempt, backoff
``unsettled``        span, arc, attempts
``breaker_shed``     span, arc
``breaker``          arc, from, to  (state transition)
``deadline``         span, spent
``learner_sample``   contexts, cost, deltas {transformation: Δ̃}
``margin``           transformation, samples, delta_sum, threshold,
                     margin  (one Equation 6 evaluation)
``climb``            step, context_number, transformation, samples,
                     estimated_gain, threshold, from, to
``checkpoint``       action (``saved``/``restored``), path
``pao_budget``       requirements {experiment: m(d_i)}
``pao_complete``     contexts_used, estimates
``incident``         description
``drift_alarm``      epoch, context_number, sources
``epoch_reset``      epoch, context_number, strategy (last-known-good)
``rollback``         epoch, context_number, from, to
``cache``            cache (``answer``/``subgoal``), action
                     (``hit``/``miss``/``evict``)
``admission``        tenant, action (``served``/``rejected``/
                     ``degraded``), latency? (served/degraded), reason?
``queue_depth``      form, depth  (after an admission step)
``health``           from, to  (server overload state transition)
``warmstart``        form, source, distance (1 − similarity), exact
``experience_write`` fingerprint, samples
=================== ====================================================

Tracing is for *observing*, never for steering: no instrumented code
path reads anything back from the tracer, which is what makes the
disabled/enabled behaviour byte-identical (asserted by the overhead
tests).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Mapping, Optional

from .metrics import LATENCY_BUCKETS, MetricsRegistry
from .recorder import Recorder
from .sink import write_trace

__all__ = ["Tracer"]


class Tracer(Recorder):
    """An in-memory recorder with JSONL export.

    Parameters
    ----------
    metrics:
        The registry to aggregate into (a fresh one by default).
    margin_events:
        Equation 6 runs once per neighbour per test, so ``margin``
        events dominate long traces; set ``False`` to keep spans and
        climbs but drop the per-test margins (the climb event still
        records the winning margin).
    """

    enabled = True

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        margin_events: bool = True,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.margin_events = margin_events
        self.events: List[Dict[str, Any]] = []
        self._next_span = 0
        #: Serving runs batches across worker threads that all share
        #: one tracer; the lock keeps ``seq`` numbering and the event
        #: list consistent.  Uncontended single-thread cost is noise.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _emit(self, type_: str, **fields: Any) -> Dict[str, Any]:
        with self._lock:
            event: Dict[str, Any] = {"seq": len(self.events), "type": type_}
            event.update(fields)
            self.events.append(event)
        return event

    def export_jsonl(self, path: str) -> int:
        """Write every event as one JSON object per line; returns the
        number of lines written."""
        return write_trace(self.events, path)

    def events_of(self, type_: str) -> List[Dict[str, Any]]:
        """All recorded events of one type, in order."""
        return [event for event in self.events if event["type"] == type_]

    def clear(self) -> None:
        """Drop recorded events (metrics keep accumulating)."""
        self.events.clear()

    # ------------------------------------------------------------------
    # Query spans
    # ------------------------------------------------------------------

    def begin_query(self, strategy: Any, resilient: bool = False) -> int:
        with self._lock:
            self._next_span += 1
            span = self._next_span
        arcs = list(strategy.arc_names()) if strategy is not None else []
        self._emit("query_begin", span=span, strategy=arcs,
                   resilient=resilient)
        self.metrics.counter("queries_total").inc()
        return span

    def end_query(
        self,
        span: int,
        *,
        cost: float,
        succeeded: bool,
        settled_cost: Optional[float] = None,
        retries: int = 0,
        backoff_cost: float = 0.0,
        degraded: bool = False,
    ) -> None:
        fields: Dict[str, Any] = {
            "span": span, "cost": cost, "succeeded": succeeded,
        }
        self.metrics.histogram("billed_cost").observe(cost)
        if settled_cost is not None:
            fields["settled_cost"] = settled_cost
            fields["retries"] = retries
            fields["backoff_cost"] = backoff_cost
            fields["degraded"] = degraded
            self.metrics.histogram("settled_cost").observe(settled_cost)
            if backoff_cost:
                self.metrics.histogram("backoff_cost").observe(backoff_cost)
            if degraded:
                self.metrics.counter("degraded_total").inc()
        self._emit("query_end", **fields)

    # ------------------------------------------------------------------
    # Executor events
    # ------------------------------------------------------------------

    def arc_attempt(
        self,
        span: int,
        arc_name: str,
        outcome: str,
        cost: float,
        attempt: int = 1,
    ) -> None:
        self._emit("attempt", span=span, arc=arc_name, outcome=outcome,
                   cost=cost, attempt=attempt)
        self.metrics.counter("attempts_total").inc()
        if outcome == "fault":
            self.metrics.counter("faults_total").inc()

    def arc_retry(
        self, span: int, arc_name: str, attempt: int, backoff: float
    ) -> None:
        self._emit("retry", span=span, arc=arc_name, attempt=attempt,
                   backoff=backoff)
        self.metrics.counter("retries_total").inc()

    def arc_unsettled(self, span: int, arc_name: str, attempts: int) -> None:
        self._emit("unsettled", span=span, arc=arc_name, attempts=attempts)
        self.metrics.counter("unsettled_total").inc()

    def breaker_shed(self, span: int, arc_name: str) -> None:
        self._emit("breaker_shed", span=span, arc=arc_name)
        self.metrics.counter("breaker_shed_total").inc()

    def breaker_transition(
        self, arc_name: str, old_state: str, new_state: str
    ) -> None:
        self._emit("breaker", arc=arc_name, **{"from": old_state,
                                               "to": new_state})
        if new_state == "open":
            self.metrics.counter("breaker_open_total").inc()

    def deadline_expired(self, span: int, spent: float) -> None:
        self._emit("deadline", span=span, spent=spent)
        self.metrics.counter("deadline_expiries_total").inc()

    # ------------------------------------------------------------------
    # Learner events
    # ------------------------------------------------------------------

    def learner_sample(
        self,
        contexts_processed: int,
        cost: float,
        deltas: Mapping[str, float],
    ) -> None:
        self._emit("learner_sample", contexts=contexts_processed, cost=cost,
                   deltas=dict(deltas))
        self.metrics.counter("learner_samples_total").inc()

    def chernoff_margin(
        self,
        transformation: str,
        samples: int,
        delta_sum: float,
        threshold: float,
    ) -> None:
        self.metrics.counter("chernoff_tests_total").inc()
        if not self.margin_events:
            return
        self._emit("margin", transformation=transformation, samples=samples,
                   delta_sum=delta_sum, threshold=threshold,
                   margin=delta_sum - threshold)

    def climb(self, record: Any) -> None:
        self._emit(
            "climb",
            step=record.step,
            context_number=record.context_number,
            transformation=record.transformation,
            samples=record.samples,
            estimated_gain=record.estimated_gain,
            threshold=record.threshold,
            **{"from": list(record.from_arcs), "to": list(record.to_arcs)},
        )
        self.metrics.counter("climbs_total").inc()
        self.metrics.histogram("climb_samples").observe(record.samples)

    def checkpoint_saved(self, path: str) -> None:
        self._emit("checkpoint", action="saved", path=path)
        self.metrics.counter("checkpoints_total").inc()

    def checkpoint_restored(self, path: str) -> None:
        self._emit("checkpoint", action="restored", path=path)
        self.metrics.counter("checkpoint_restores_total").inc()

    # ------------------------------------------------------------------
    # Drift events
    # ------------------------------------------------------------------

    def drift_alarm(
        self, epoch: int, context_number: int, sources: Any
    ) -> None:
        self._emit("drift_alarm", epoch=epoch, context_number=context_number,
                   sources=list(sources))
        self.metrics.counter("drift_alarms_total").inc()

    def epoch_reset(
        self, epoch: int, context_number: int, strategy: Any
    ) -> None:
        self._emit("epoch_reset", epoch=epoch, context_number=context_number,
                   strategy=list(strategy))
        self.metrics.counter("epoch_resets_total").inc()

    def rollback(
        self, epoch: int, context_number: int, from_arcs: Any, to_arcs: Any
    ) -> None:
        self._emit("rollback", epoch=epoch, context_number=context_number,
                   **{"from": list(from_arcs), "to": list(to_arcs)})
        self.metrics.counter("rollbacks_total").inc()

    # ------------------------------------------------------------------
    # Serving-cache events
    # ------------------------------------------------------------------

    def cache_hit(self, kind: str) -> None:
        self._emit("cache", cache=kind, action="hit")
        self.metrics.counter(f"{kind}_cache_hits_total").inc()

    def cache_miss(self, kind: str) -> None:
        self._emit("cache", cache=kind, action="miss")
        self.metrics.counter(f"{kind}_cache_misses_total").inc()

    def cache_evict(self, kind: str) -> None:
        self._emit("cache", cache=kind, action="evict")
        self.metrics.counter(f"{kind}_cache_evictions_total").inc()

    # ------------------------------------------------------------------
    # Admission events
    # ------------------------------------------------------------------

    def request_served(self, tenant: str, latency: float) -> None:
        self._emit("admission", tenant=tenant, action="served",
                   latency=latency)
        self.metrics.counter("admission_served_total").inc()
        self.metrics.histogram(
            "request_latency", buckets=LATENCY_BUCKETS
        ).observe(latency)
        self.metrics.histogram(
            f"tenant_latency:{tenant}", buckets=LATENCY_BUCKETS
        ).observe(latency)

    def request_rejected(self, tenant: str, reason: str) -> None:
        self._emit("admission", tenant=tenant, action="rejected",
                   reason=reason)
        self.metrics.counter("admission_rejected_total").inc()
        self.metrics.counter(f"shed_{reason}_total").inc()

    def request_degraded(self, tenant: str, reason: str) -> None:
        self._emit("admission", tenant=tenant, action="degraded",
                   reason=reason)
        self.metrics.counter("admission_degraded_total").inc()

    def queue_depth(self, form: str, depth: int) -> None:
        self._emit("queue_depth", form=form, depth=depth)
        self.metrics.histogram("queue_depth").observe(depth)

    def health_transition(self, old_state: str, new_state: str) -> None:
        self._emit("health", **{"from": old_state, "to": new_state})
        self.metrics.counter("health_transitions_total").inc()

    # ------------------------------------------------------------------
    # Experience events
    # ------------------------------------------------------------------

    def warmstart(
        self, form: str, source: str, distance: float, exact: bool
    ) -> None:
        self._emit("warmstart", form=form, source=source,
                   distance=distance, exact=exact)
        self.metrics.counter("warmstart_hit").inc()
        self.metrics.histogram("warmstart_distance").observe(distance)

    def experience_write(self, fingerprint: str, samples: int) -> None:
        self._emit("experience_write", fingerprint=fingerprint,
                   samples=samples)
        self.metrics.counter("experience_writes").inc()

    # ------------------------------------------------------------------
    # PAO + system events
    # ------------------------------------------------------------------

    def pao_budget(self, requirements: Mapping[str, int]) -> None:
        self._emit("pao_budget", requirements=dict(requirements))

    def pao_complete(
        self, contexts_used: int, estimates: Mapping[str, float]
    ) -> None:
        self._emit("pao_complete", contexts_used=contexts_used,
                   estimates=dict(estimates))

    def incident(self, description: str) -> None:
        self._emit("incident", description=description)
        self.metrics.counter("incidents_total").inc()

    def snapshot(self) -> Dict[str, object]:
        """Event volume plus the metrics snapshot, JSON-ready."""
        return {"events": len(self.events), "metrics": self.metrics.snapshot()}

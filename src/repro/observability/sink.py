"""Trace persistence: JSONL export, import, and aggregation.

Traces are JSON Lines — one event object per line, in ``seq`` order —
because the format is append-friendly, greppable, and streams: the
``repro stats`` subcommand summarizes multi-megabyte traces without
holding more than a line at a time in principle (and a list in
practice, trace sizes here being simulation-scale).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from ..errors import ReproError
from .metrics import LATENCY_BUCKETS, Histogram

__all__ = ["write_trace", "read_trace", "summarize_trace"]


def write_trace(events: Iterable[Dict[str, Any]], path: str) -> int:
    """Write events as JSONL; returns the number of lines written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace back into a list of event dicts."""
    events: List[Dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise ReproError(
                    f"{path}:{lineno}: not a JSON event: {error}"
                ) from error
            if not isinstance(event, dict) or "type" not in event:
                raise ReproError(
                    f"{path}:{lineno}: trace events are objects with a 'type'"
                )
            events.append(event)
    return events


def summarize_trace(events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate a trace into the numbers ``repro stats`` prints.

    The billed/settled totals are summed from ``query_end`` events, so
    the summary reconciles exactly with the executor's own accounting
    (the acceptance check of the chaos-trace tests).
    """
    event_counts: Dict[str, int] = {}
    queries = 0
    succeeded = 0
    degraded = 0
    billed = 0.0
    settled = 0.0
    backoff = 0.0
    retries = 0
    climbs: List[Dict[str, Any]] = []
    breaker_opens = 0
    drift_alarms = 0
    epoch_resets = 0
    rollbacks: List[Dict[str, Any]] = []
    caches: Dict[str, Dict[str, int]] = {}
    admission: Dict[str, int] = {"served": 0, "rejected": 0, "degraded": 0}
    shed_reasons: Dict[str, int] = {}
    latency: Optional[Histogram] = None
    health_transitions: List[str] = []
    warmstarts: List[Dict[str, Any]] = []
    experience_writes = 0
    for event in events:
        type_ = event["type"]
        event_counts[type_] = event_counts.get(type_, 0) + 1
        if type_ == "query_end":
            queries += 1
            billed += event.get("cost", 0.0)
            settled += event.get("settled_cost", event.get("cost", 0.0))
            backoff += event.get("backoff_cost", 0.0)
            retries += event.get("retries", 0)
            if event.get("succeeded"):
                succeeded += 1
            if event.get("degraded"):
                degraded += 1
        elif type_ == "climb":
            climbs.append(event)
        elif type_ == "breaker" and event.get("to") == "open":
            breaker_opens += 1
        elif type_ == "drift_alarm":
            drift_alarms += 1
        elif type_ == "epoch_reset":
            epoch_resets += 1
        elif type_ == "rollback":
            rollbacks.append(event)
        elif type_ == "cache":
            tier = caches.setdefault(
                str(event.get("cache", "?")),
                {"hits": 0, "misses": 0, "evictions": 0},
            )
            action = event.get("action")
            if action == "hit":
                tier["hits"] += 1
            elif action == "miss":
                tier["misses"] += 1
            elif action == "evict":
                tier["evictions"] += 1
        elif type_ == "admission":
            action = str(event.get("action", "?"))
            admission[action] = admission.get(action, 0) + 1
            if action == "served":
                if latency is None:
                    latency = Histogram("request_latency",
                                        buckets=LATENCY_BUCKETS)
                latency.observe(event.get("latency", 0.0))
            else:
                reason = str(event.get("reason", "?"))
                shed_reasons[reason] = shed_reasons.get(reason, 0) + 1
        elif type_ == "health":
            health_transitions.append(
                f"{event.get('from', '?')}->{event.get('to', '?')}"
            )
        elif type_ == "warmstart":
            warmstarts.append(event)
        elif type_ == "experience_write":
            experience_writes += 1
    summary: Dict[str, Any] = {
        "events": sum(event_counts.values()),
        "event_counts": dict(sorted(event_counts.items())),
        "queries": queries,
        "succeeded": succeeded,
        "degraded": degraded,
        "billed_cost": billed,
        "settled_cost": settled,
        "backoff_cost": backoff,
        "retries": retries,
        "climbs": len(climbs),
        "climb_steps": [
            {
                "step": climb.get("step"),
                "context_number": climb.get("context_number"),
                "transformation": climb.get("transformation"),
                "samples": climb.get("samples"),
            }
            for climb in climbs
        ],
        "breaker_opens": breaker_opens,
        "caches": {name: caches[name] for name in sorted(caches)},
        "drift_alarms": drift_alarms,
        "epoch_resets": epoch_resets,
        "rollbacks": len(rollbacks),
        "rollback_steps": [
            {
                "epoch": rollback.get("epoch"),
                "context_number": rollback.get("context_number"),
                "to": rollback.get("to"),
            }
            for rollback in rollbacks
        ],
    }
    if any(admission.values()):
        summary["admission"] = {
            "served": admission.get("served", 0),
            "rejected": admission.get("rejected", 0),
            "degraded": admission.get("degraded", 0),
            "shed_reasons": dict(sorted(shed_reasons.items())),
            "health_transitions": health_transitions,
        }
        if latency is not None:
            summary["admission"]["latency"] = {
                "p50": latency.quantile(0.5),
                "p95": latency.quantile(0.95),
                "p99": latency.quantile(0.99),
                "mean": latency.mean,
                "max": latency.max,
            }
    if warmstarts or experience_writes:
        distances = [
            float(event.get("distance", 0.0)) for event in warmstarts
        ]
        summary["experience"] = {
            "warmstart_hits": len(warmstarts),
            "exact_hits": sum(1 for e in warmstarts if e.get("exact")),
            "mean_distance": (
                sum(distances) / len(distances) if distances else 0.0
            ),
            "writes": experience_writes,
        }
    return summary

"""Counters and histograms: the aggregate half of observability.

Where the tracer records *what happened, in order*, the registry
records *how much, in total* — the numbers a dashboard or the
``repro stats`` subcommand wants without replaying a trace.  Metrics
are deliberately simulation-native: histograms observe abstract cost
units and sample counts, never wall-clock, so equal-seeded runs
produce byte-identical snapshots.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

__all__ = ["Counter", "Histogram", "MetricsRegistry"]

#: One lock for every metric instance: updates are a handful of
#: attribute writes, so fine-grained per-metric locks buy nothing,
#: while a shared lock keeps concurrent serving workers' increments
#: from losing read-modify-write races.
_METRICS_LOCK = threading.Lock()


class Counter:
    """A monotonically increasing integer counter (thread-safe)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with _METRICS_LOCK:
            self.value += amount


class Histogram:
    """Streaming summary of observed values: count/sum/min/max/mean.

    Full quantile sketches are overkill for the simulation's needs;
    the four moments kept here are exactly what the acceptance checks
    reconcile against (totals must match the executor's own sums).
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        with _METRICS_LOCK:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
        }


class MetricsRegistry:
    """Named counters and histograms, created lazily on first use.

    Metric names follow the convention documented in README's
    Observability section: counters end in ``_total``; histograms name
    the quantity they observe (``billed_cost``, ``climb_samples``, …).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with _METRICS_LOCK:
                counter = self._counters.setdefault(name, Counter(name))
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with _METRICS_LOCK:
                histogram = self._histograms.setdefault(
                    name, Histogram(name)
                )
        return histogram

    def count(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        counter = self._counters.get(name)
        return counter.value if counter else 0

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A JSON-ready dump of every metric, sorted by name."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
        }

"""Counters and histograms: the aggregate half of observability.

Where the tracer records *what happened, in order*, the registry
records *how much, in total* — the numbers a dashboard or the
``repro stats`` subcommand wants without replaying a trace.  Metrics
are deliberately simulation-native: histograms observe abstract cost
units and sample counts, never wall-clock, so equal-seeded runs
produce byte-identical snapshots.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Histogram", "MetricsRegistry", "LATENCY_BUCKETS"]

#: Default fixed boundaries for latency-style histograms (cost units).
#: Roughly exponential, wide enough for queue wait under a 10× burst.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
)

#: One lock for every metric instance: updates are a handful of
#: attribute writes, so fine-grained per-metric locks buy nothing,
#: while a shared lock keeps concurrent serving workers' increments
#: from losing read-modify-write races.
_METRICS_LOCK = threading.Lock()


class Counter:
    """A monotonically increasing integer counter (thread-safe)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with _METRICS_LOCK:
            self.value += amount


class Histogram:
    """Streaming summary of observed values: count/sum/min/max/mean,
    plus — when constructed with fixed bucket boundaries — cumulative
    bucket counts and interpolated quantile estimates.

    The moment-only form is exactly what the acceptance checks
    reconcile against (totals must match the executor's own sums); the
    bucketed form is what latency reporting wants (p50/p95/p99 without
    keeping every sample).  Boundaries are *upper* bounds; values above
    the last boundary land in the implicit ``+inf`` bucket.
    """

    __slots__ = ("name", "count", "total", "min", "max", "boundaries",
                 "bucket_counts")

    def __init__(self, name: str,
                 buckets: Optional[Sequence[float]] = None):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        if buckets is not None:
            boundaries = tuple(sorted(float(b) for b in buckets))
            if not boundaries:
                raise ValueError("buckets, when given, must be non-empty")
            self.boundaries: Optional[Tuple[float, ...]] = boundaries
            #: one count per boundary plus the +inf overflow bucket
            self.bucket_counts: Optional[List[int]] = \
                [0] * (len(boundaries) + 1)
        else:
            self.boundaries = None
            self.bucket_counts = None

    def _bucket_index(self, value: float) -> int:
        assert self.boundaries is not None
        for index, bound in enumerate(self.boundaries):
            if value <= bound:
                return index
        return len(self.boundaries)

    def observe(self, value: float) -> None:
        value = float(value)
        with _METRICS_LOCK:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if self.bucket_counts is not None:
                self.bucket_counts[self._bucket_index(value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """A bucket-interpolated quantile estimate (``None`` without
        buckets or observations).

        The estimate walks the cumulative counts to the bucket holding
        the ``q``-th sample and interpolates linearly inside it, with
        the observed ``min``/``max`` tightening the outer edges — the
        classic fixed-boundary histogram_quantile.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.bucket_counts is None or self.count == 0:
            return None
        assert self.boundaries is not None and self.min is not None \
            and self.max is not None
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = (self.boundaries[index - 1] if index > 0
                         else min(self.min, self.boundaries[0]))
                upper = (self.boundaries[index]
                         if index < len(self.boundaries) else self.max)
                lower = max(lower, self.min)
                upper = min(upper, self.max) if upper >= lower else lower
                fraction = (rank - cumulative) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
            cumulative += bucket_count
        return self.max

    def snapshot(self) -> Dict[str, float]:
        snap: Dict[str, float] = {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
        }
        if self.bucket_counts is not None:
            snap["buckets"] = {  # type: ignore[assignment]
                ("+inf" if index == len(self.boundaries)
                 else f"{self.boundaries[index]:g}"): count
                for index, count in enumerate(self.bucket_counts)
            }
            for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
                estimate = self.quantile(q)
                if estimate is not None:
                    snap[label] = round(estimate, 9)
        return snap


class MetricsRegistry:
    """Named counters and histograms, created lazily on first use.

    Metric names follow the convention documented in README's
    Observability section: counters end in ``_total``; histograms name
    the quantity they observe (``billed_cost``, ``climb_samples``, …).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with _METRICS_LOCK:
                counter = self._counters.setdefault(name, Counter(name))
        return counter

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The named histogram (created on first use).  ``buckets``
        only matters at creation: it fixes the boundary set that
        enables :meth:`Histogram.quantile`; later callers get the
        existing instance whatever they pass."""
        histogram = self._histograms.get(name)
        if histogram is None:
            with _METRICS_LOCK:
                histogram = self._histograms.setdefault(
                    name, Histogram(name, buckets=buckets)
                )
        return histogram

    def count(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        counter = self._counters.get(name)
        return counter.value if counter else 0

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A JSON-ready dump of every metric, sorted by name."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
        }

"""The recorder seam: how the processor's hot paths report events.

The paper *defines* PIB as a monitor bolted unobtrusively onto a
running query processor (Section 3, Theorem 1): the processor keeps
answering queries exactly as before, and the learner merely watches.
The observability layer applies the same discipline to the
reproduction's own internals — every instrumented call site takes an
injectable recorder that defaults to the no-op :class:`Recorder`
below, so with tracing off the processor pays roughly one attribute
check (``recorder.enabled``) per instrumented block and records
*nothing*.

:class:`Recorder` is simultaneously the null object and the interface
contract: :class:`~repro.observability.tracer.Tracer` subclasses it
and overrides every hook.  Instrument sites must guard event-building
work behind ``recorder.enabled`` so the disabled path never allocates:

    if recorder.enabled:
        recorder.arc_attempt(span, arc.name, "ok", charge, attempt)

Query-level hooks (``begin_query`` / ``end_query``) run once per query
and may be called unguarded; per-arc and per-neighbour hooks must be
guarded.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

__all__ = ["Recorder", "NULL_RECORDER"]


class Recorder:
    """The null recorder: every hook is a no-op.

    ``enabled`` is a *class* attribute — the single flag hot paths
    check.  ``metrics`` is ``None`` on the null object; surfaces that
    publish metric snapshots (``System.report()``) test it before
    reading.
    """

    enabled: bool = False
    metrics = None

    # ------------------------------------------------------------------
    # Query spans
    # ------------------------------------------------------------------

    def begin_query(self, strategy: Any, resilient: bool = False) -> int:
        """Open a per-query span; returns the span id events attach to."""
        return 0

    def end_query(
        self,
        span: int,
        *,
        cost: float,
        succeeded: bool,
        settled_cost: Optional[float] = None,
        retries: int = 0,
        backoff_cost: float = 0.0,
        degraded: bool = False,
    ) -> None:
        """Close a span with the run's billed/settled accounting."""

    # ------------------------------------------------------------------
    # Executor events
    # ------------------------------------------------------------------

    def arc_attempt(
        self,
        span: int,
        arc_name: str,
        outcome: str,
        cost: float,
        attempt: int = 1,
    ) -> None:
        """One charged attempt: ``outcome`` is ``ok``/``blocked``/``fault``."""

    def arc_retry(
        self, span: int, arc_name: str, attempt: int, backoff: float
    ) -> None:
        """A retry was scheduled after a fault, charging ``backoff`` units."""

    def arc_unsettled(self, span: int, arc_name: str, attempts: int) -> None:
        """The retry budget ran out without a settled outcome."""

    def breaker_shed(self, span: int, arc_name: str) -> None:
        """An open (or probing) breaker refused the attempt outright."""

    def breaker_transition(
        self, arc_name: str, old_state: str, new_state: str
    ) -> None:
        """A circuit breaker changed state (closed/open/half-open)."""

    def deadline_expired(self, span: int, spent: float) -> None:
        """The per-query cost deadline stopped the run early."""

    # ------------------------------------------------------------------
    # Learner events
    # ------------------------------------------------------------------

    def learner_sample(
        self,
        contexts_processed: int,
        cost: float,
        deltas: Mapping[str, float],
    ) -> None:
        """One monitored run folded into the Δ̃ accumulators;
        ``deltas`` maps each neighbour's transformation to the Δ̃ this
        sample contributed."""

    def chernoff_margin(
        self,
        transformation: str,
        samples: int,
        delta_sum: float,
        threshold: float,
    ) -> None:
        """One Equation 6 test: the neighbour's running Δ̃ sum against
        the sequential threshold (margin = delta_sum − threshold)."""

    def climb(self, record: Any) -> None:
        """PIB switched strategies (``record`` is a ``ClimbRecord``)."""

    def checkpoint_saved(self, path: str) -> None:
        """A crash-safe learner checkpoint was written."""

    def checkpoint_restored(self, path: str) -> None:
        """A learner resumed from a checkpoint at startup."""

    # ------------------------------------------------------------------
    # Drift events
    # ------------------------------------------------------------------

    def drift_alarm(
        self, epoch: int, context_number: int, sources: Any
    ) -> None:
        """A change detector confirmed drift; ``sources`` names the
        alarming streams (``cost``, ``arc:<name>``, ``pao:<name>``)."""

    def epoch_reset(
        self, epoch: int, context_number: int, strategy: Any
    ) -> None:
        """A drift-aware learner opened a new epoch: Δ̃ evidence and
        the sequential-test index were reset; ``strategy`` (arc names)
        was snapshotted as last-known-good."""

    def rollback(
        self, epoch: int, context_number: int, from_arcs: Any, to_arcs: Any
    ) -> None:
        """The learner rolled back to its last-known-good strategy
        after the post-drift regime made the current one statistically
        worse."""

    # ------------------------------------------------------------------
    # PAO events
    # ------------------------------------------------------------------

    def pao_budget(self, requirements: Mapping[str, int]) -> None:
        """The Equation 7/8 per-experiment sample budgets were fixed."""

    def pao_complete(
        self, contexts_used: int, estimates: Mapping[str, float]
    ) -> None:
        """PAO's sampling phase satisfied every counter."""

    # ------------------------------------------------------------------
    # Serving-cache events
    # ------------------------------------------------------------------

    def cache_hit(self, kind: str) -> None:
        """A cache tier answered a lookup (``kind``: ``answer``/``subgoal``)."""

    def cache_miss(self, kind: str) -> None:
        """A cache tier had no entry for a lookup."""

    def cache_evict(self, kind: str) -> None:
        """A cache tier dropped its least-recently-used entry."""

    # ------------------------------------------------------------------
    # Admission events
    # ------------------------------------------------------------------

    def request_served(self, tenant: str, latency: float) -> None:
        """An admitted request completed; ``latency`` is wait + service
        in cost units on the form's virtual clock."""

    def request_rejected(self, tenant: str, reason: str) -> None:
        """Admission shed a request without an answer (``reason``:
        ``queue-full``/``over-quota``/``draining``/…)."""

    def request_degraded(self, tenant: str, reason: str) -> None:
        """Admission served a stale cached answer instead of running
        the request (the ``degrade-to-cached`` shed policy)."""

    def queue_depth(self, form: str, depth: int) -> None:
        """A form's admission-queue depth after an admission step."""

    def health_transition(self, old_state: str, new_state: str) -> None:
        """The server's overload state machine moved
        (healthy/shedding/draining)."""

    # ------------------------------------------------------------------
    # Experience events
    # ------------------------------------------------------------------

    def warmstart(
        self, form: str, source: str, distance: float, exact: bool
    ) -> None:
        """A fresh learner was started from a stored prior: ``source``
        is the contributing form, ``distance`` is ``1 - similarity``."""

    def experience_write(self, fingerprint: str, samples: int) -> None:
        """A settled outcome was contributed to the experience store."""

    # ------------------------------------------------------------------
    # System events
    # ------------------------------------------------------------------

    def incident(self, description: str) -> None:
        """A degradation the processor absorbed (fallback, fault escape)."""

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready summary; empty for the null recorder."""
        return {}


#: The shared process-wide null recorder every instrumented call site
#: defaults to.  It is stateless, so sharing one instance is safe.
NULL_RECORDER = Recorder()

"""Observability: zero-overhead-when-disabled tracing and metrics.

The subsystem has four small parts:

* :mod:`~repro.observability.recorder` — the injectable seam: a
  :class:`Recorder` null object every instrumented call site defaults
  to (one ``enabled`` attribute check when tracing is off);
* :mod:`~repro.observability.tracer` — :class:`Tracer`, the recorder
  that keeps ordered per-query spans and events;
* :mod:`~repro.observability.metrics` — :class:`MetricsRegistry` with
  lazily created counters and histograms;
* :mod:`~repro.observability.sink` — JSONL trace export/import and the
  aggregation behind ``repro stats``.

Quickstart::

    from repro.observability import Tracer

    tracer = Tracer()
    result = execute(strategy, context, recorder=tracer)
    tracer.export_jsonl("trace.jsonl")
    print(tracer.metrics.snapshot())
"""

from .metrics import Counter, Histogram, LATENCY_BUCKETS, MetricsRegistry
from .recorder import NULL_RECORDER, Recorder
from .sink import read_trace, summarize_trace, write_trace
from .tracer import Tracer

__all__ = [
    "Counter",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NULL_RECORDER",
    "Recorder",
    "Tracer",
    "read_trace",
    "summarize_trace",
    "write_trace",
]

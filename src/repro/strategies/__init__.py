"""Strategies: legal arc orderings, execution, costs, and operators.

Implements Section 2.1's strategy machinery: the sequence view of a
strategy, satisficing execution with the cost accounting ``c(Θ, I)``,
expected cost ``C[Θ]`` over context distributions, the sibling-swap
transformations PIB climbs with, exhaustive enumeration for ground
truth, and the adaptive query processor ``QP^A`` of Section 4.1.
"""

from .strategy import Strategy
from .execution import (
    ExecutionOutcome,
    ExecutionResult,
    ResilientExecutionResult,
    cost_of,
    execute,
    execute_resilient,
    pessimistic_cost,
)
from .expected_cost import (
    attempt_probabilities,
    expected_cost_exact,
    expected_cost_explicit,
    expected_cost_monte_carlo,
    reach_probability,
    success_probability,
)
from .transformations import (
    PathPromotion,
    SiblingSwap,
    Transformation,
    all_path_promotions,
    all_sibling_swaps,
    neighbours,
)
from .enumeration import (
    all_legal_strategies,
    all_path_structured_strategies,
    count_path_structured,
)
from .adaptive import AdaptiveQueryProcessor, AttemptOutcome, classify_attempt
from .engines import ENGINE_NAMES, BottomUpProofAdapter, make_engine

__all__ = [
    "Strategy",
    "ExecutionOutcome",
    "ExecutionResult",
    "ResilientExecutionResult",
    "cost_of",
    "execute",
    "execute_resilient",
    "pessimistic_cost",
    "attempt_probabilities",
    "expected_cost_exact",
    "expected_cost_explicit",
    "expected_cost_monte_carlo",
    "reach_probability",
    "success_probability",
    "PathPromotion",
    "SiblingSwap",
    "Transformation",
    "all_path_promotions",
    "all_sibling_swaps",
    "neighbours",
    "all_legal_strategies",
    "all_path_structured_strategies",
    "count_path_structured",
    "AdaptiveQueryProcessor",
    "AttemptOutcome",
    "classify_attempt",
    "ENGINE_NAMES",
    "BottomUpProofAdapter",
    "make_engine",
]

"""The adaptive query processor ``QP^A`` of Section 4.1.

A fixed strategy cannot guarantee samples of every retrieval — if
``D_p`` always succeeds, ``Θ₁`` never attempts ``D_g``.  ``QP^A``
therefore re-plans per context: it keeps one counter per experiment,
initialized to the required sample count, always *aims for* the
experiment whose counter is largest (Definition 1: follow ``Π(e)`` as
far as possible), and decrements a counter every time its experiment is
attempted-or-aimed-at.  Sampling ends when all counters are ≤ 0.

The module also provides :func:`classify_attempt`, which decides from
an execution trace whether a run counts as an "attempt to reach" an
experiment (and whether it reached it) — the statistic Theorem 3's
``m'(e_i)`` counts.
"""

from __future__ import annotations

import enum
from typing import Dict, Mapping, Optional, Tuple

from ..errors import LearningError
from ..graphs.contexts import Context
from ..graphs.inference_graph import Arc, InferenceGraph
from .execution import ExecutionResult, execute
from .strategy import Strategy

__all__ = ["AttemptOutcome", "classify_attempt", "AdaptiveQueryProcessor"]


class AttemptOutcome(enum.Enum):
    """How one run relates to one experiment (Definition 1)."""

    REACHED = "reached"            # the experiment itself was attempted
    BLOCKED_ON_PATH = "blocked"    # followed Π(e) maximally, but an arc blocked
    NOT_ATTEMPTED = "not-attempted"  # the run never headed for e


def classify_attempt(result: ExecutionResult, experiment: Arc) -> AttemptOutcome:
    """Did this run attempt to reach ``experiment``, and did it get there?

    A run "attempted to reach e" iff it followed ``Π(e)`` as far as the
    context allowed: every path arc was either attempted-and-unblocked
    (continue) or attempted-and-blocked (the attempt ends there, still
    counting).  A path arc that was never attempted means the processor
    never headed for ``e``.
    """
    graph = result.strategy.graph
    attempted = {arc.name for arc in result.attempted}
    for path_arc in graph.ancestors(experiment):
        if path_arc.name not in attempted:
            return AttemptOutcome.NOT_ATTEMPTED
        if path_arc.blockable and not result.observations[path_arc.name]:
            return AttemptOutcome.BLOCKED_ON_PATH
    if experiment.name in attempted:
        return AttemptOutcome.REACHED
    return AttemptOutcome.NOT_ATTEMPTED


class AdaptiveQueryProcessor:
    """Counter-driven strategy switching, as prescribed by Section 4.1.

    ``requirements`` maps experiment arc names to the number of
    attempts still wanted (Theorem 2's ``m(d_i)`` or Theorem 3's
    ``m'(e_i)``).  Each call to :meth:`process` answers one context
    with a strategy aimed at the neediest experiment, updates the
    counters from the trace, and returns the execution result.

    The processor records, per experiment, the counts Theorem 3 names:
    ``k(e)`` (times reached) and ``n(e)`` (times found unblocked), plus
    ``attempts(e)`` (times aimed at, reached or not).
    """

    def __init__(
        self,
        graph: InferenceGraph,
        requirements: Mapping[str, int],
        count: str = "attempts",
    ):
        if count not in ("attempts", "reached"):
            raise ValueError("count must be 'attempts' or 'reached'")
        self.graph = graph
        #: Which event drives a counter down: "attempts" (Theorem 3's
        #: attempted-to-reach semantics) or "reached" (Theorem 2 needs
        #: actual samples of each retrieval).
        self.count_mode = count
        # Declaration order, not a set: counter (and therefore
        # estimate) dictionaries must iterate identically across
        # processes regardless of PYTHONHASHSEED.
        names = [arc.name for arc in graph.experiments()]
        unknown = set(requirements) - set(names)
        if unknown:
            raise LearningError(
                f"requirements name non-experiment arcs: {sorted(unknown)}"
            )
        self._counters: Dict[str, int] = {name: 0 for name in names}
        self._counters.update({k: int(v) for k, v in requirements.items()})
        self.reached: Dict[str, int] = {name: 0 for name in names}
        self.unblocked: Dict[str, int] = {name: 0 for name in names}
        self.attempts: Dict[str, int] = {name: 0 for name in names}
        self.contexts_processed = 0
        self._declaration_rank = {
            arc.name: index for index, arc in enumerate(graph.arcs())
        }

    # ------------------------------------------------------------------
    # Strategy selection
    # ------------------------------------------------------------------

    def done(self) -> bool:
        """Whether every counter has been driven to zero or below."""
        return all(count <= 0 for count in self._counters.values())

    def counters(self) -> Dict[str, int]:
        """A copy of the remaining-requirements counters."""
        return dict(self._counters)

    def _target(self) -> Optional[Arc]:
        """The experiment with the largest positive counter (ties: first
        declared)."""
        best: Optional[Tuple[int, int, str]] = None
        for name, count in self._counters.items():
            if count <= 0:
                continue
            key = (-count, self._declaration_rank[name], name)
            if best is None or key < best:
                best = key
        return self.graph.arc(best[2]) if best else None

    def strategy_for_target(self, target: Optional[Arc]) -> Strategy:
        """A complete strategy that aims at ``target`` first.

        The strategy visits the retrievals below (or at) ``target``
        first — so the run starts by descending ``Π(target)`` — then
        orders the remaining retrievals by how needy their own path
        experiments are, so by-product samples accrue where they help.
        """
        def neediness(retrieval: Arc) -> Tuple[int, int]:
            path = self.graph.ancestors(retrieval) + [retrieval]
            need = sum(
                max(0, self._counters.get(arc.name, 0))
                for arc in path
                if arc.blockable
            )
            return (-need, self._declaration_rank[retrieval.name])

        retrievals = self.graph.retrieval_arcs()
        if target is None:
            ordered = sorted(retrievals, key=neediness)
        else:
            subtree = {arc.name for arc in self.graph.subtree_arcs(target)}
            first = [r for r in retrievals if r.name in subtree]
            rest = sorted(
                (r for r in retrievals if r.name not in subtree), key=neediness
            )
            ordered = first + rest
        return Strategy.from_retrieval_order(self.graph, ordered)

    # ------------------------------------------------------------------
    # Processing
    # ------------------------------------------------------------------

    def process(self, context: Context) -> ExecutionResult:
        """Answer one context with an aimed strategy; update all counters."""
        strategy = self.strategy_for_target(self._target())
        result = execute(strategy, context)
        self.contexts_processed += 1
        for experiment in self.graph.experiments():
            outcome = classify_attempt(result, experiment)
            if outcome is AttemptOutcome.NOT_ATTEMPTED:
                continue
            name = experiment.name
            self.attempts[name] += 1
            if self.count_mode == "attempts":
                self._counters[name] -= 1
            if outcome is AttemptOutcome.REACHED:
                self.reached[name] += 1
                if self.count_mode == "reached":
                    self._counters[name] -= 1
                if result.observations[name]:
                    self.unblocked[name] += 1
        return result

    # ------------------------------------------------------------------
    # Estimates
    # ------------------------------------------------------------------

    def frequency_estimates(self, fallback: float = 0.5) -> Dict[str, float]:
        """``p̂_i = n(e_i)/k(e_i)``, or ``fallback`` when never reached.

        The 0.5 fallback is Theorem 3's prescription for experiments
        with ``k(e_i) = 0`` — their reach probability ``ρ`` is then so
        small that any estimate suffices (Lemma 1 weighs the error by
        ``ρ``).
        """
        estimates: Dict[str, float] = {}
        for name in self._counters:
            if self.reached[name] > 0:
                estimates[name] = self.unblocked[name] / self.reached[name]
            else:
                estimates[name] = fallback
        return estimates

"""Executing a strategy on a context: the cost ``c(Θ, I)``.

The query processor traverses the inference graph in strategy order,
beginning at the root, searching for a success node (Section 2.1).
Operationally:

* an arc is *attempted* when its turn comes up and its source node has
  been reached; attempting an arc always costs ``f(arc)``, whether or
  not the context blocks it (Figure 1's worked example charges the
  failed ``prof(manolis)`` retrieval its full unit);
* a blocked arc does not extend the reached set (its subtree stays
  unreachable), an unblocked arc does;
* the search stops at the first success node reached — satisficing
  search [SK75] — and the remaining subsequence of the strategy is
  ignored.

:func:`execute` returns an :class:`ExecutionResult` carrying the cost,
the outcome, and the *observations* the run made — exactly the
information PIB is allowed to learn from (it never sees the statuses of
arcs the run did not attempt).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..graphs.contexts import Context, PartialContext
from ..graphs.inference_graph import Arc, ArcKind, InferenceGraph
from .strategy import Strategy

__all__ = ["ExecutionResult", "execute", "cost_of", "pessimistic_cost"]


@dataclass
class ExecutionResult:
    """The outcome of running one strategy on one context.

    ``attempted`` lists arcs in attempt order; ``observations`` records
    each attempted blockable arc's revealed status.  ``success_arc`` is
    the retrieval that answered the query, or ``None`` when the whole
    graph was searched without success (the "no" answer).
    """

    strategy: Strategy
    context: Context
    cost: float
    succeeded: bool
    success_arc: Optional[Arc]
    attempted: List[Arc] = field(default_factory=list)
    observations: Dict[str, bool] = field(default_factory=dict)

    def partial_context(self) -> PartialContext:
        """The :class:`PartialContext` of what this run revealed."""
        return PartialContext(self.strategy.graph, self.observations)


def execute(
    strategy: Strategy, context: Context, required_successes: int = 1
) -> ExecutionResult:
    """Run ``strategy`` against ``context`` and account its cost.

    ``required_successes`` implements Section 5.2's first-``k`` variant
    ("one set of variants seek the first k answers to a query"): the
    search stops at the ``k``-th success node instead of the first.
    ``success_arc`` reports the stopping retrieval; with ``k > 1`` the
    run counts as succeeded only if all ``k`` successes were found.
    """
    if required_successes < 1:
        raise ValueError("required_successes must be at least 1")
    graph = strategy.graph
    reached: Set[str] = {graph.root.name}
    cost = 0.0
    successes = 0
    attempted: List[Arc] = []
    observations: Dict[str, bool] = {}

    for arc in strategy:
        if arc.source.name not in reached:
            continue  # tail never reached: the arc is silently skipped
        attempted.append(arc)
        traversable = context.traversable(arc)
        cost += arc.cost if traversable else arc.blocked_cost
        if arc.blockable:
            observations[arc.name] = traversable
        if not traversable:
            continue
        reached.add(arc.target.name)
        if arc.target.is_success:
            successes += 1
            if successes >= required_successes:
                return ExecutionResult(
                    strategy, context, cost, True, arc, attempted, observations
                )
    return ExecutionResult(
        strategy, context, cost, False, None, attempted, observations
    )


def cost_of(strategy: Strategy, context: Context) -> float:
    """Shorthand for ``execute(strategy, context).cost`` — ``c(Θ, I)``."""
    return execute(strategy, context).cost


def pessimistic_cost(strategy: Strategy, partial: PartialContext) -> float:
    """An upper bound on ``c(strategy, I)`` over every context ``I``
    consistent with the observations in ``partial``.

    This is the evaluation behind PIB's under-estimate ``Δ̃``
    (Section 3.2): arcs the monitored run observed are charged their
    actual outcome; unobserved arcs are charged their *worst-case*
    attempt ``max(f, f_blocked)`` and completed adversarially —
    retrievals blocked (no early stop), reductions traversable (full
    subtree exposure).  With the paper's symmetric costs this equals
    executing against ``partial.pessimistic_completion()``; with
    Note 4's asymmetric costs the explicit max keeps the bound sound.
    """
    graph = strategy.graph
    reached: Set[str] = {graph.root.name}
    cost = 0.0
    for arc in strategy:
        if arc.source.name not in reached:
            continue
        observed = partial.observed(arc)
        if observed is None:
            cost += max(arc.cost, arc.blocked_cost)
            traversable = arc.kind is not ArcKind.RETRIEVAL
        else:
            cost += arc.cost if observed else arc.blocked_cost
            traversable = observed
        if not traversable:
            continue
        reached.add(arc.target.name)
        if arc.target.is_success:
            return cost
    return cost

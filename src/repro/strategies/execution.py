"""Executing a strategy on a context: the cost ``c(Θ, I)``.

The query processor traverses the inference graph in strategy order,
beginning at the root, searching for a success node (Section 2.1).
Operationally:

* an arc is *attempted* when its turn comes up and its source node has
  been reached; attempting an arc always costs ``f(arc)``, whether or
  not the context blocks it (Figure 1's worked example charges the
  failed ``prof(manolis)`` retrieval its full unit);
* a blocked arc does not extend the reached set (its subtree stays
  unreachable), an unblocked arc does;
* the search stops at the first success node reached — satisficing
  search [SK75] — and the remaining subsequence of the strategy is
  ignored.

:func:`execute` returns an :class:`ExecutionResult` carrying the cost,
the outcome, and the *observations* the run made — exactly the
information PIB is allowed to learn from (it never sees the statuses of
arcs the run did not attempt).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Protocol,
    Set,
    runtime_checkable,
)

from ..errors import RetrievalFaultError
from ..graphs.contexts import Context, PartialContext
from ..graphs.inference_graph import Arc, ArcKind
from ..observability.recorder import NULL_RECORDER, Recorder
from ..storage.interface import COMPLETE, Completeness
from .strategy import Strategy

if TYPE_CHECKING:
    from ..resilience.policy import ResiliencePolicy

__all__ = [
    "ExecutionOutcome",
    "ExecutionResult",
    "ResilientExecutionResult",
    "execute",
    "execute_resilient",
    "cost_of",
    "pessimistic_cost",
]


@runtime_checkable
class ExecutionOutcome(Protocol):
    """What every strategy-execution result exposes, resilient or not.

    :class:`ExecutionResult` and :class:`ResilientExecutionResult`
    both satisfy this protocol, so callers that only need the shared
    surface — the billed ``cost``, whether the run ``succeeded``, the
    revealed ``partial_context()``, and the learner-facing
    ``settled_result()`` — can take an ``ExecutionOutcome`` and stop
    branching on the concrete result type.  ``degraded`` is ``False``
    on a plain execution and reports resilience deviations (deadline
    expiry, unsettled or shed arcs) on a resilient one.
    """

    strategy: Strategy
    context: Context
    cost: float
    succeeded: bool
    success_arc: Optional[Arc]
    attempted: List[Arc]
    observations: Dict[str, bool]
    #: Whether the run's retrievals saw the whole fact base, or a
    #: federated backend degraded to a partial view (missing shards).
    completeness: Completeness

    @property
    def degraded(self) -> bool: ...

    def settled_result(self) -> "ExecutionResult": ...

    def partial_context(self) -> PartialContext: ...


@dataclass
class ExecutionResult:
    """The outcome of running one strategy on one context.

    ``attempted`` lists arcs in attempt order; ``observations`` records
    each attempted blockable arc's revealed status.  ``success_arc`` is
    the retrieval that answered the query, or ``None`` when the whole
    graph was searched without success (the "no" answer).
    """

    strategy: Strategy
    context: Context
    cost: float
    succeeded: bool
    success_arc: Optional[Arc]
    attempted: List[Arc] = field(default_factory=list)
    observations: Dict[str, bool] = field(default_factory=dict)
    #: Attached post-hoc by the query processor when the backing store
    #: reports a probe window; in-memory runs are trivially complete.
    completeness: Completeness = COMPLETE

    @property
    def degraded(self) -> bool:
        """A plain execution never deviates from the fault-free path."""
        return False

    def settled_result(self) -> "ExecutionResult":
        """Itself: an unmonitored run *is* the settled view
        (:class:`ExecutionOutcome`'s learner-facing accessor)."""
        return self

    def partial_context(self) -> PartialContext:
        """The :class:`PartialContext` of what this run revealed."""
        return PartialContext(self.strategy.graph, self.observations)


def execute(
    strategy: Strategy,
    context: Context,
    required_successes: int = 1,
    recorder: Recorder = NULL_RECORDER,
) -> ExecutionResult:
    """Run ``strategy`` against ``context`` and account its cost.

    ``required_successes`` implements Section 5.2's first-``k`` variant
    ("one set of variants seek the first k answers to a query"): the
    search stops at the ``k``-th success node instead of the first.
    ``success_arc`` reports the stopping retrieval; with ``k > 1`` the
    run counts as succeeded only if all ``k`` successes were found.

    ``recorder`` observes the run (span + per-attempt events) without
    influencing it; with the default null recorder the common
    first-success case takes a branch-free fast path with no recorder
    or success-counting overhead in the arc loop.
    """
    if required_successes < 1:
        raise ValueError("required_successes must be at least 1")
    if required_successes == 1 and not recorder.enabled:
        return _execute_fast(strategy, context)
    graph = strategy.graph
    reached: Set[str] = {graph.root.name}
    cost = 0.0
    successes = 0
    attempted: List[Arc] = []
    observations: Dict[str, bool] = {}
    span = recorder.begin_query(strategy) if recorder.enabled else 0

    for arc in strategy:
        if arc.source.name not in reached:
            continue  # tail never reached: the arc is silently skipped
        attempted.append(arc)
        traversable = context.traversable(arc)
        charge = arc.cost if traversable else arc.blocked_cost
        cost += charge
        if recorder.enabled:
            recorder.arc_attempt(
                span, arc.name, "ok" if traversable else "blocked", charge
            )
        if arc.blockable:
            observations[arc.name] = traversable
        if not traversable:
            continue
        reached.add(arc.target.name)
        if arc.target.is_success:
            successes += 1
            if successes >= required_successes:
                if recorder.enabled:
                    recorder.end_query(span, cost=cost, succeeded=True)
                return ExecutionResult(
                    strategy, context, cost, True, arc, attempted, observations
                )
    if recorder.enabled:
        recorder.end_query(span, cost=cost, succeeded=False)
    return ExecutionResult(
        strategy, context, cost, False, None, attempted, observations
    )


def _execute_fast(strategy: Strategy, context: Context) -> ExecutionResult:
    """:func:`execute` specialized to the dominant call shape.

    Identical semantics to ``execute(strategy, context)`` with
    ``required_successes=1`` and the null recorder — same cost, same
    attempt order, same observations — minus the recorder seam and the
    success counter.  PIB's inner training loop executes millions of
    (strategy, context) pairs through here, so the per-arc constant
    matters; the dispatch in :func:`execute` keeps every recorded or
    first-``k`` call on the fully instrumented path.
    """
    reached: Set[str] = {strategy.graph.root.name}
    cost = 0.0
    attempted: List[Arc] = []
    observations: Dict[str, bool] = {}
    traversable_of = context.traversable
    append = attempted.append
    add_reached = reached.add
    for arc in strategy:
        if arc.source.name not in reached:
            continue
        append(arc)
        if traversable_of(arc):
            cost += arc.cost
            if arc.blockable:
                observations[arc.name] = True
            target = arc.target
            add_reached(target.name)
            if target.is_success:
                return ExecutionResult(
                    strategy, context, cost, True, arc, attempted, observations
                )
        else:
            cost += arc.blocked_cost
            if arc.blockable:
                observations[arc.name] = False
    return ExecutionResult(
        strategy, context, cost, False, None, attempted, observations
    )


@dataclass
class ResilientExecutionResult:
    """One strategy run through the resilience layer.

    Two views of the same run:

    * ``cost`` is the caller-facing bill — every attempt, every retry,
      every jittered backoff, every latency spike.  This is the
      ``c(Θ, I)`` the paper's cost accounting charges the query.
    * :meth:`settled_result` is the learner-facing view — the settled
      outcome of each arc at its fault-free charge, exactly what an
      unmonitored fault-free run would have produced.  PIB must learn
      from *this* one: feeding retry noise into the Δ̃ accumulators
      would poison the under-estimates with non-stationary
      infrastructure noise (the fault process is not part of the
      context distribution Theorem 1 quantifies over).

    Arcs whose status never settled (retry budget exhausted, circuit
    open) appear in ``unsettled`` / ``skipped_open`` and are *absent*
    from ``observations`` — PIB then treats them exactly like arcs the
    run never attempted, which is sound (pessimistic completion).
    """

    strategy: Strategy
    context: Context
    cost: float
    succeeded: bool
    success_arc: Optional[Arc]
    attempted: List[Arc] = field(default_factory=list)
    observations: Dict[str, bool] = field(default_factory=dict)
    settled_cost: float = 0.0
    retries: Dict[str, int] = field(default_factory=dict)
    backoff_cost: float = 0.0
    deadline_expired: bool = False
    skipped_open: List[str] = field(default_factory=list)
    unsettled: List[str] = field(default_factory=list)
    completeness: Completeness = COMPLETE

    @property
    def degraded(self) -> bool:
        """Whether the run deviated from a clean fault-free execution."""
        return bool(
            self.deadline_expired or self.skipped_open or self.unsettled
        )

    @property
    def total_retries(self) -> int:
        return sum(self.retries.values())

    def settled_result(self) -> ExecutionResult:
        """The fault-free-equivalent :class:`ExecutionResult` for PIB."""
        return ExecutionResult(
            self.strategy,
            self.context,
            self.settled_cost,
            self.succeeded,
            self.success_arc,
            list(self.attempted),
            dict(self.observations),
            completeness=self.completeness,
        )

    def partial_context(self) -> PartialContext:
        return PartialContext(self.strategy.graph, self.observations)


def execute_resilient(
    strategy: Strategy,
    context: Context,
    policy: "ResiliencePolicy",
    required_successes: int = 1,
    recorder: Recorder = NULL_RECORDER,
) -> ResilientExecutionResult:
    """Run ``strategy`` against a possibly-faulty ``context``.

    Semantics relative to :func:`execute`:

    * Each attempt goes through ``context.attempt(arc)``; a raised
      :class:`~repro.errors.RetrievalFaultError` charges the wasted
      attempt at the arc's *worst-case* rate (``max(f, f_blocked)``
      times the fault's multiplier — the caller paid for the attempt
      without learning the outcome), then backs off per the retry
      policy (the jittered wait is charged too) and tries again.
    * An arc whose retry budget is exhausted stays **unsettled**: it is
      reported blocked to the search (its subtree is unreachable this
      run) but *no observation is recorded*, so the learner never
      mistakes a fault for a blocked arc.
    * Per-arc circuit breakers persist on ``policy``: enough
      consecutive exhausted arcs trip the breaker and later queries
      shed the arc outright (``skipped_open``) until the cooldown's
      half-open probe succeeds.
    * A :class:`~repro.resilience.deadline.CostDeadline` on the policy
      bounds the total charge; when the next attempt cannot fit, the
      run stops early with ``deadline_expired=True`` and whatever
      answer it has (a degraded "no" if none) — it never raises.

    On a fault-free context this degenerates to :func:`execute`
    exactly: same cost, same observations, same outcome.
    """
    if required_successes < 1:
        raise ValueError("required_successes must be at least 1")
    graph = strategy.graph
    reached: Set[str] = {graph.root.name}
    retry = policy.retry
    deadline = policy.deadline

    cost = 0.0
    settled_cost = 0.0
    backoff_total = 0.0
    successes = 0
    succeeded = False
    success_arc: Optional[Arc] = None
    deadline_expired = False
    attempted: List[Arc] = []
    observations: Dict[str, bool] = {}
    retries: Dict[str, int] = {}
    skipped_open: List[str] = []
    unsettled: List[str] = []
    span = recorder.begin_query(strategy, resilient=True) \
        if recorder.enabled else 0

    def finish() -> ResilientExecutionResult:
        if recorder.enabled:
            recorder.end_query(
                span,
                cost=cost,
                succeeded=succeeded,
                settled_cost=settled_cost,
                retries=sum(retries.values()),
                backoff_cost=backoff_total,
                degraded=bool(deadline_expired or skipped_open or unsettled),
            )
        return ResilientExecutionResult(
            strategy,
            context,
            cost,
            succeeded,
            success_arc,
            attempted,
            observations,
            settled_cost=settled_cost,
            retries=retries,
            backoff_cost=backoff_total,
            deadline_expired=deadline_expired,
            skipped_open=skipped_open,
            unsettled=unsettled,
        )

    for arc in strategy:
        if arc.source.name not in reached:
            continue
        breaker = policy.breaker_for(arc.name) if arc.blockable else None
        if breaker is not None and not breaker.allow():
            skipped_open.append(arc.name)
            if recorder.enabled:
                recorder.breaker_shed(span, arc.name)
            continue

        worst_attempt = max(arc.cost, arc.blocked_cost)
        settled: Optional[bool] = None
        for attempt in range(1, retry.max_attempts + 1):
            if deadline is not None and deadline.would_exceed(
                cost, worst_attempt
            ):
                deadline_expired = True
                policy.deadline_expiries += 1
                if breaker is not None:
                    # A half-open probe this run may still be pending;
                    # abandoning it un-settled must not wedge the
                    # breaker in its single-probe gate.
                    breaker.release_probe()
                if recorder.enabled:
                    recorder.deadline_expired(span, cost)
                return finish()
            try:
                traversable, multiplier = context.attempt(arc)
            except RetrievalFaultError as fault:
                policy.total_faults += 1
                charge = worst_attempt * fault.cost_multiplier
                cost += charge
                if recorder.enabled:
                    recorder.arc_attempt(span, arc.name, "fault", charge,
                                         attempt)
                if breaker is None or retry.exhausted(attempt):
                    break
                retries[arc.name] = retries.get(arc.name, 0) + 1
                policy.total_retries += 1
                wait = retry.backoff_cost(attempt, policy.rng)
                cost += wait
                backoff_total += wait
                if recorder.enabled:
                    recorder.arc_retry(span, arc.name, attempt, wait)
            else:
                settled = traversable
                base = arc.cost if traversable else arc.blocked_cost
                cost += base * multiplier
                settled_cost += base
                if recorder.enabled:
                    recorder.arc_attempt(
                        span, arc.name,
                        "ok" if traversable else "blocked",
                        base * multiplier, attempt,
                    )
                break

        if settled is None:
            # Retry budget exhausted without a settled outcome: the arc
            # contributes nothing the learner may see, and its subtree
            # is unreachable this run.
            unsettled.append(arc.name)
            policy.unsettled_arcs += 1
            if recorder.enabled:
                recorder.arc_unsettled(span, arc.name, attempt)
            if breaker is not None:
                breaker.record_fault()
            continue

        if breaker is not None:
            breaker.record_success()
        attempted.append(arc)
        if arc.blockable:
            observations[arc.name] = settled
        if not settled:
            continue
        reached.add(arc.target.name)
        if arc.target.is_success:
            successes += 1
            if successes >= required_successes:
                succeeded = True
                success_arc = arc
                return finish()
    return finish()


def cost_of(strategy: Strategy, context: Context) -> float:
    """Shorthand for ``execute(strategy, context).cost`` — ``c(Θ, I)``."""
    return execute(strategy, context).cost


def pessimistic_cost(strategy: Strategy, partial: PartialContext) -> float:
    """An upper bound on ``c(strategy, I)`` over every context ``I``
    consistent with the observations in ``partial``.

    This is the evaluation behind PIB's under-estimate ``Δ̃``
    (Section 3.2): arcs the monitored run observed are charged their
    actual outcome; unobserved arcs are charged their *worst-case*
    attempt ``max(f, f_blocked)`` and completed adversarially —
    retrievals blocked (no early stop), reductions traversable (full
    subtree exposure).  With the paper's symmetric costs this equals
    executing against ``partial.pessimistic_completion()``; with
    Note 4's asymmetric costs the explicit max keeps the bound sound.
    """
    graph = strategy.graph
    reached: Set[str] = {graph.root.name}
    cost = 0.0
    for arc in strategy:
        if arc.source.name not in reached:
            continue
        observed = partial.observed(arc)
        if observed is None:
            cost += max(arc.cost, arc.blocked_cost)
            traversable = arc.kind is not ArcKind.RETRIEVAL
        else:
            cost += arc.cost if observed else arc.blocked_cost
            traversable = observed
        if not traversable:
            continue
        reached.add(arc.target.name)
        if arc.target.is_success:
            return cost
    return cost

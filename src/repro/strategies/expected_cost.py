"""Expected cost ``C[Θ]`` of a strategy over a context distribution.

Section 2.1 defines ``C_Pr[Θ] = E[c(Θ, I)] = Σ_I Pr(I)·c(Θ, I)``.
Three evaluation routes are provided, fastest applicable first:

* :func:`expected_cost_exact` — closed-form for *independent* arc
  success probabilities (the assumption under which ``Υ_G`` operates,
  footnote 8).  It uses linearity of expectation over arcs:
  ``C[Θ] = Σ_a f(a) · Pr[a is attempted]``, with the attempt
  probability computed by a tree product (see
  :func:`attempt_probabilities`).  Runs in ``O(|A|²)`` and works for
  every legal strategy, path-structured or not.
* :func:`expected_cost_explicit` — exact for an explicit finite
  distribution (a weighted list of contexts, possibly *correlated*,
  which PIB permits); simulates each context once.
* :func:`expected_cost_monte_carlo` — sampling estimate for anything
  that can be sampled.

The three agree on their common domain — including Section 5.2's
first-``k`` variant (every route takes ``required_successes``); the
property tests check the three-way agreement on randomized graphs.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Tuple

from ..errors import DistributionError
from ..graphs.contexts import Context
from ..graphs.inference_graph import Arc, ArcKind, InferenceGraph, Node
from .execution import execute
from .strategy import Strategy

__all__ = [
    "attempt_probabilities",
    "expected_cost_exact",
    "expected_cost_explicit",
    "expected_cost_monte_carlo",
    "success_probability",
    "reach_probability",
]


def _success_prob(arc: Arc, probs: Mapping[str, float]) -> float:
    """Probability that ``arc`` is traversable, validating the vector."""
    if not arc.blockable:
        return 1.0
    try:
        p = probs[arc.name]
    except KeyError:
        raise DistributionError(
            f"probability vector is missing blockable arc {arc.name!r}"
        ) from None
    if not 0.0 <= p <= 1.0:
        raise DistributionError(f"p({arc.name}) = {p} is not in [0, 1]")
    return p


def _no_success_factor(
    graph: InferenceGraph,
    node: Node,
    before: frozenset,
    probs: Mapping[str, float],
    forced: frozenset,
) -> float:
    """Pr[no retrieval in ``before`` within ``node``'s subtree has a fully
    unblocked path from ``node``], with arcs in ``forced`` conditioned
    unblocked."""
    factor = 1.0
    for arc in graph.children(node):
        p = 1.0 if arc.name in forced else _success_prob(arc, probs)
        if arc.kind is ArcKind.RETRIEVAL:
            if arc.name in before:
                factor *= 1.0 - p
        else:
            inner = _no_success_factor(graph, arc.target, before, probs, forced)
            if inner < 1.0:
                factor *= (1.0 - p) + p * inner
    return factor


def _convolve_capped(
    left: List[float], right: List[float], cap: int
) -> List[float]:
    """Convolution of two success-count distributions, lumping every
    count ≥ ``cap`` into the last cell (the search has stopped by then,
    so finer resolution is never needed)."""
    out = [0.0] * (cap + 1)
    for i, pa in enumerate(left):
        if pa == 0.0:
            continue
        for j, pb in enumerate(right):
            if pb:
                out[min(i + j, cap)] += pa * pb
    return out


def _success_count_dist(
    graph: InferenceGraph,
    node: Node,
    before: frozenset,
    probs: Mapping[str, float],
    forced: frozenset,
    cap: int,
) -> List[float]:
    """Distribution of the number of retrievals in ``before`` within
    ``node``'s subtree that have fully unblocked paths from ``node``,
    truncated at ``cap`` (index ``cap`` holds Pr[count ≥ cap]).

    Distinct children's subtrees share no arcs, so their counts are
    independent and combine by (capped) convolution; ``forced`` arcs
    are conditioned unblocked exactly as in :func:`_no_success_factor`
    — this is that function generalized from "none" to "how many",
    which Section 5.2's first-``k`` stopping rule needs.
    """
    dist = [1.0] + [0.0] * cap
    for arc in graph.children(node):
        p = 1.0 if arc.name in forced else _success_prob(arc, probs)
        if arc.kind is ArcKind.RETRIEVAL:
            if arc.name not in before:
                continue
            child = [1.0 - p, p] + [0.0] * (cap - 1)
        else:
            inner = _success_count_dist(
                graph, arc.target, before, probs, forced, cap
            )
            if inner[0] == 1.0:
                continue  # subtree holds no prior retrievals
            child = [(1.0 - p) + p * inner[0]]
            child.extend(p * mass for mass in inner[1:])
        dist = _convolve_capped(dist, child, cap)
    return dist


def attempt_probabilities(
    strategy: Strategy,
    probs: Mapping[str, float],
    required_successes: int = 1,
) -> Dict[str, float]:
    """``Pr[arc is attempted]`` for every arc, under independent blocking.

    An arc ``a`` at position ``i`` is attempted iff its ancestors are
    all unblocked *and* fewer than ``required_successes`` of the
    retrievals placed before ``i`` have fully unblocked root paths
    (the ``k``-th such retrieval is where Section 5.2's first-``k``
    satisficing search stopped, whether or not the processor got to
    attempt it this run — if it did not, even earlier successes stopped
    it).  The two events are made independent by conditioning the
    shared ancestor arcs unblocked inside the tree product.
    """
    if required_successes < 1:
        raise ValueError("required_successes must be at least 1")
    graph = strategy.graph
    result: Dict[str, float] = {}
    retrievals_before: List[str] = []
    for arc in strategy:
        ancestors = graph.ancestors(arc)
        forced = frozenset(a.name for a in ancestors)
        reach = 1.0
        for ancestor in ancestors:
            reach *= _success_prob(ancestor, probs)
        if reach <= 0.0:
            not_stopped = 0.0
        elif required_successes == 1:
            not_stopped = _no_success_factor(
                graph, graph.root, frozenset(retrievals_before), probs, forced
            )
        else:
            counts = _success_count_dist(
                graph, graph.root, frozenset(retrievals_before), probs,
                forced, required_successes,
            )
            not_stopped = sum(counts[:required_successes])
        result[arc.name] = reach * not_stopped
        if arc.kind is ArcKind.RETRIEVAL:
            retrievals_before.append(arc.name)
    return result


def expected_cost_exact(
    strategy: Strategy,
    probs: Mapping[str, float],
    required_successes: int = 1,
) -> float:
    """``C[Θ]`` under independent arc success probabilities.

    Reproduces the paper's worked example: on ``G_A`` with unit costs
    this returns 3.7 for ``Θ₁`` and 2.8 for ``Θ₂``.  Asymmetric
    blocked/unblocked costs (Note 4's extension) are handled by
    charging each attempt its mean ``p·f + (1−p)·f_blocked`` — the
    arc's own outcome is independent of the attempt event.

    ``required_successes`` evaluates the first-``k`` variant: the
    search charges arcs until the ``k``-th success instead of the
    first, matching :func:`~repro.strategies.execution.execute`'s
    parameter of the same name.
    """
    attempted = attempt_probabilities(strategy, probs, required_successes)
    return sum(
        arc.expected_attempt_cost(_success_prob(arc, probs))
        * attempted[arc.name]
        for arc in strategy
    )


def success_probability(graph: InferenceGraph, probs: Mapping[str, float]) -> float:
    """Pr[some derivation exists] — strategy-independent in a tree.

    Every complete strategy searches the whole graph on failure, so the
    success probability depends only on the graph and the distribution.
    """
    all_retrievals = frozenset(a.name for a in graph.retrieval_arcs())
    return 1.0 - _no_success_factor(
        graph, graph.root, all_retrievals, probs, frozenset()
    )


def reach_probability(
    graph: InferenceGraph, arc: Arc, probs: Mapping[str, float]
) -> float:
    """Definition 2's ``ρ(e)``: the best-case probability of reaching ``e``.

    In a tree the strategy that maximizes the chance of reaching ``e``
    heads straight down ``Π(e)``, so ``ρ(e)`` is the product of the
    success probabilities along the path.
    """
    rho = 1.0
    for ancestor in graph.ancestors(arc):
        rho *= _success_prob(ancestor, probs)
    return rho


def expected_cost_explicit(
    strategy: Strategy,
    weighted_contexts: Iterable[Tuple[float, Context]],
    required_successes: int = 1,
) -> float:
    """``Σ Pr(I)·c(Θ, I)`` for an explicit finite distribution.

    Weights must be non-negative and sum to 1 (within 1e-9); the
    distribution may correlate arcs arbitrarily — this is the
    evaluation route for PIB's no-independence-needed setting.
    ``required_successes`` is threaded through to every simulated
    :func:`~repro.strategies.execution.execute` call (the first-``k``
    variant of Section 5.2).
    """
    total_weight = 0.0
    total = 0.0
    for weight, context in weighted_contexts:
        if weight < 0:
            raise DistributionError(f"negative context weight {weight}")
        total_weight += weight
        if weight:
            total += weight * execute(
                strategy, context, required_successes
            ).cost
    if abs(total_weight - 1.0) > 1e-9:
        raise DistributionError(
            f"context weights sum to {total_weight}, expected 1"
        )
    return total


def expected_cost_monte_carlo(
    strategy: Strategy,
    sampler: Callable[[], Context],
    samples: int,
    required_successes: int = 1,
) -> float:
    """Sample-mean estimate of ``C[Θ]`` from ``samples`` draws; the
    first-``k`` variant is simulated when ``required_successes > 1``."""
    if samples <= 0:
        raise ValueError("samples must be positive")
    total = 0.0
    for _ in range(samples):
        total += execute(strategy, sampler(), required_successes).cost
    return total / samples

"""Strategy transformations: the operator set ``T`` PIB hill-climbs with.

Section 3.2 parameterizes PIB by a set of transformations
``T = {τ_j}``, "each … perhaps re-ordering a particular pair of arcs
that descend from a common node".  :class:`SiblingSwap` is that
operator (``τ_{d,c}(Θ_ABCD) = Θ_ABDC``); :func:`all_sibling_swaps`
builds the full operator set for a graph, and :func:`neighbours`
produces ``T(Θ)``, the neighbour strategies of a given ``Θ``.

Each transformation knows its Chernoff range ``Λ[Θ, τ(Θ)]`` — "never
more than the sum of the costs of the arcs under the node where Θ
deviates from Θ_j", i.e. ``f*(r₁) + f*(r₂)`` for a sibling swap.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, List, Tuple

from ..graphs.inference_graph import InferenceGraph
from .strategy import Strategy

__all__ = [
    "Transformation",
    "SiblingSwap",
    "PathPromotion",
    "all_sibling_swaps",
    "all_path_promotions",
    "neighbours",
]


class Transformation:
    """Base class: a named mapping from strategies to strategies."""

    name: str = "transformation"

    def apply(self, strategy: Strategy) -> Strategy:
        """Return the transformed strategy."""
        raise NotImplementedError

    def chernoff_range(self, graph: InferenceGraph) -> float:
        """``Λ``: the width of the support of ``Δ_i = c(Θ,I) − c(τ(Θ),I)``.

        The default is the sound but loose ``2·Σ_a f(a)`` (each cost
        lies in ``[0, total]``); subclasses tighten it.
        """
        return 2.0 * graph.total_cost

    def __repr__(self) -> str:
        return self.name


class SiblingSwap(Transformation):
    """Interchange two sibling arcs (and their subtrees) in a strategy.

    The operator is an involution: applying it twice restores the
    original strategy, so one unordered pair ``{r₁, r₂}`` covers both
    climb directions.
    """

    def __init__(self, first: str, second: str):
        if first == second:
            raise ValueError("a swap needs two distinct arcs")
        # Normalize so that SiblingSwap("a","b") == SiblingSwap("b","a").
        self.first, self.second = sorted((first, second))
        self.name = f"swap({self.first},{self.second})"

    def apply(self, strategy: Strategy) -> Strategy:
        return strategy.with_swap(self.first, self.second)

    def chernoff_range(self, graph: InferenceGraph) -> float:
        """``Λ = f*(r₁) + f*(r₂)`` (Section 3.1 and the Eq 5 examples)."""
        return graph.f_star(graph.arc(self.first)) + graph.f_star(
            graph.arc(self.second)
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, SiblingSwap)
            and self.first == other.first
            and self.second == other.second
        )

    def __hash__(self) -> int:
        return hash((SiblingSwap, self.first, self.second))


class PathPromotion(Transformation):
    """Move one retrieval's whole root path to the front of the strategy.

    The §3.2 closing comments note that PIB "can use (almost) arbitrary
    sets of transformations to hill-climb", e.g. macro-operators: a
    path promotion is the macro move the ``Θ_ABCD → Θ_DABC``-style
    re-orderings need, which single sibling swaps reach only through
    intermediate strategies that may not individually test as
    improvements.

    The result is the path-structured strategy visiting the promoted
    retrieval first and the remaining retrievals in their prior order.
    The conservative ``Δ̃`` under-estimate stays sound for this (and
    any) transformation because the pessimistic completion *maximizes*
    the candidate's cost over all contexts consistent with the
    monitored run (see ``PartialContext.pessimistic_completion``).
    """

    def __init__(self, retrieval: str):
        self.retrieval = retrieval
        self.name = f"promote({retrieval})"

    def apply(self, strategy: Strategy) -> Strategy:
        order = [arc.name for arc in strategy.retrieval_order()]
        if self.retrieval not in order:
            raise ValueError(
                f"{self.retrieval!r} is not a retrieval of the strategy's graph"
            )
        order.remove(self.retrieval)
        return Strategy.from_retrieval_order(
            strategy.graph, [self.retrieval] + order
        )

    def __eq__(self, other) -> bool:
        return isinstance(other, PathPromotion) and self.retrieval == other.retrieval

    def __hash__(self) -> int:
        return hash((PathPromotion, self.retrieval))


def all_path_promotions(graph: InferenceGraph) -> List[PathPromotion]:
    """One promotion operator per retrieval arc."""
    return [PathPromotion(arc.name) for arc in graph.retrieval_arcs()]


def all_sibling_swaps(graph: InferenceGraph) -> List[SiblingSwap]:
    """Every unordered pair of sibling arcs in the graph.

    This is the transformation set the paper's examples use: for
    ``G_A`` it is the single ``swap(R_p, R_g)``; for ``G_B`` it
    includes ``τ_{d,c}`` (reorder ``R_td``/``R_tc`` under ``T``),
    the ``R_sb``/``R_st`` reorder under ``S``, and the top-level
    ``R_ga``/``R_gs`` swap.
    """
    swaps: List[SiblingSwap] = []
    for node in graph.nodes():
        children = graph.children(node)
        for left, right in combinations(children, 2):
            swaps.append(SiblingSwap(left.name, right.name))
    return swaps


def neighbours(
    strategy: Strategy, transformations: Iterable[Transformation]
) -> List[Tuple[Transformation, Strategy]]:
    """``T(Θ) = {τ(Θ) | τ ∈ T}`` with the generating operator attached.

    Transformations that leave the strategy unchanged are dropped —
    a no-op neighbour could never satisfy Equation 6 but would inflate
    the union bound.
    """
    result: List[Tuple[Transformation, Strategy]] = []
    for transformation in transformations:
        candidate = transformation.apply(strategy)
        if candidate.arc_names() != strategy.arc_names():
            result.append((transformation, candidate))
    return result

"""Exhaustive strategy enumeration for small graphs.

PAO's guarantee is relative to the *globally* optimal strategy
``Θ_opt``; on small graphs we can find it by brute force and use it as
the ground truth the property tests compare ``Υ_AOT`` against.

Two enumerations are provided:

* :func:`all_path_structured_strategies` — one strategy per permutation
  of the retrieval arcs (Note 3's path view).  ``k`` retrievals give
  ``k!`` strategies.
* :func:`all_legal_strategies` — every legal arc sequence (all
  topological orders of the arc forest).  Vastly larger; used only to
  confirm that restricting attention to path-structured strategies
  loses nothing (see :mod:`repro.optimal`).
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterator, List

from ..errors import StrategyError
from ..graphs.inference_graph import Arc, InferenceGraph
from .strategy import Strategy

__all__ = [
    "all_path_structured_strategies",
    "all_legal_strategies",
    "count_path_structured",
]

#: Enumerating more retrievals than this is almost certainly a mistake.
_MAX_RETRIEVALS = 9


def count_path_structured(graph: InferenceGraph) -> int:
    """How many path-structured strategies the graph admits (``k!``)."""
    count = 1
    for index in range(2, len(graph.retrieval_arcs()) + 1):
        count *= index
    return count


def all_path_structured_strategies(
    graph: InferenceGraph, max_retrievals: int = _MAX_RETRIEVALS
) -> Iterator[Strategy]:
    """Yield every path-structured strategy of the graph.

    Raises :class:`StrategyError` when the graph has more than
    ``max_retrievals`` retrieval arcs (the count grows factorially).
    """
    retrievals = graph.retrieval_arcs()
    if len(retrievals) > max_retrievals:
        raise StrategyError(
            f"{len(retrievals)} retrievals would enumerate "
            f"{len(retrievals)}! strategies; raise max_retrievals to force"
        )
    for order in permutations(retrievals):
        yield Strategy.from_retrieval_order(graph, order)


def all_legal_strategies(
    graph: InferenceGraph, limit: int = 200_000
) -> Iterator[Strategy]:
    """Yield every legal arc sequence (topological orders of the forest).

    Stops with :class:`StrategyError` if more than ``limit`` sequences
    would be produced — this enumeration explodes much faster than the
    path-structured one.
    """
    arcs = graph.arcs()
    produced = 0

    def extend(prefix: List[Arc], available: List[Arc]) -> Iterator[Strategy]:
        nonlocal produced
        if not available:
            produced += 1
            if produced > limit:
                raise StrategyError(
                    f"more than {limit} legal strategies; raise the limit to force"
                )
            yield Strategy(graph, list(prefix))
            return
        placed = {arc.name for arc in prefix}
        for index, arc in enumerate(available):
            parent = graph.parent_arc(arc)
            if parent is not None and parent.name not in placed:
                continue
            prefix.append(arc)
            yield from extend(prefix, available[:index] + available[index + 1:])
            prefix.pop()

    yield from extend([], list(arcs))

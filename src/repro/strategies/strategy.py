"""Query-processing strategies: legal orderings of a graph's arcs.

Section 2.1: "We will write each strategy as a sequence of the elements
of A, with the understanding that the remaining subsequence will be
ignored after reaching a solution."  A sequence is *legal* when every
arc appears exactly once and only after the arc leading into its source
node — the query processor cannot attempt an arc before having reached
its tail.

Note 3 views a strategy as a sequence of *paths*, each descending from
an already-visited node down to a retrieval; :meth:`Strategy.paths`
computes that decomposition.  Strategies whose arc order is a
concatenation of such paths are called *path-structured*; they
correspond one-to-one with permutations of the retrieval arcs
(:meth:`Strategy.from_retrieval_order`), and some optimal strategy is
always path-structured — postponing an arc until just before the first
retrieval that needs it can only shrink the set of scenarios in which
its cost is paid (see ``repro.optimal``).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import IllegalStrategyError
from ..graphs.inference_graph import Arc, ArcKind, InferenceGraph, Node

__all__ = ["Strategy"]


class Strategy:
    """An immutable legal ordering of all arcs of an inference graph."""

    __slots__ = ("graph", "_arcs", "_positions")

    def __init__(self, graph: InferenceGraph, arcs: Sequence[Union[Arc, str]]):
        resolved: List[Arc] = [
            graph.arc(a) if isinstance(a, str) else a for a in arcs
        ]
        self.graph = graph
        self._arcs: Tuple[Arc, ...] = tuple(resolved)
        self._positions: Dict[str, int] = {
            arc.name: index for index, arc in enumerate(self._arcs)
        }
        self._check_legal()

    def _check_legal(self) -> None:
        expected = {arc.name for arc in self.graph.arcs()}
        seen = set()
        for arc in self._arcs:
            if self.graph.arc(arc.name) is not arc:
                raise IllegalStrategyError(
                    f"arc {arc.name!r} does not belong to this graph"
                )
            if arc.name in seen:
                raise IllegalStrategyError(f"arc {arc.name!r} appears twice")
            seen.add(arc.name)
            parent = self.graph.parent_arc(arc)
            if parent is not None and parent.name not in seen:
                raise IllegalStrategyError(
                    f"arc {arc.name!r} appears before its parent {parent.name!r}"
                )
        missing = expected - seen
        if missing:
            raise IllegalStrategyError(
                f"strategy omits arcs: {sorted(missing)}"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def depth_first(
        cls,
        graph: InferenceGraph,
        child_order: Optional[Dict[str, Sequence[str]]] = None,
    ) -> "Strategy":
        """The depth-first, left-to-right strategy (the paper's default).

        ``child_order`` optionally overrides the sibling order at named
        nodes (node name -> arc names in desired order).
        """
        order: List[Arc] = []

        def walk(node: Node) -> None:
            children = graph.children(node)
            if child_order and node.name in child_order:
                ranked = {name: i for i, name in enumerate(child_order[node.name])}
                children = sorted(
                    children, key=lambda a: ranked.get(a.name, len(ranked))
                )
            for arc in children:
                order.append(arc)
                walk(arc.target)

        walk(graph.root)
        return cls(graph, order)

    @classmethod
    def from_retrieval_order(
        cls, graph: InferenceGraph, retrievals: Sequence[Union[Arc, str]]
    ) -> "Strategy":
        """The path-structured strategy visiting retrievals in this order.

        Each retrieval contributes the not-yet-listed arcs on its root
        path (Note 3's path), deepest-last.  Every retrieval arc of the
        graph must appear exactly once.
        """
        resolved = [
            graph.arc(r) if isinstance(r, str) else r for r in retrievals
        ]
        expected = {arc.name for arc in graph.retrieval_arcs()}
        given = [arc.name for arc in resolved]
        if sorted(given) != sorted(expected):
            raise IllegalStrategyError(
                "retrieval order must list every retrieval arc exactly once; "
                f"expected {sorted(expected)}, got {sorted(given)}"
            )
        order: List[Arc] = []
        placed = set()
        for retrieval in resolved:
            for arc in graph.ancestors(retrieval) + [retrieval]:
                if arc.name not in placed:
                    placed.add(arc.name)
                    order.append(arc)
        return cls(graph, order)

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._arcs)

    def __iter__(self) -> Iterator[Arc]:
        return iter(self._arcs)

    def __getitem__(self, index: int) -> Arc:
        return self._arcs[index]

    def arcs(self) -> Tuple[Arc, ...]:
        """The arc sequence."""
        return self._arcs

    def arc_names(self) -> Tuple[str, ...]:
        """The arc names in order (handy in tests and reports)."""
        return tuple(arc.name for arc in self._arcs)

    def position(self, arc: Union[Arc, str]) -> int:
        """Index of ``arc`` in the sequence."""
        name = arc if isinstance(arc, str) else arc.name
        return self._positions[name]

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def retrieval_order(self) -> List[Arc]:
        """The retrieval arcs in the order the strategy reaches them."""
        return [a for a in self._arcs if a.kind is ArcKind.RETRIEVAL]

    def paths(self) -> List[List[Arc]]:
        """Note 3's path decomposition.

        Splits the arc sequence after every retrieval arc.  For a
        path-structured strategy each piece is a descending path from
        an already-visited node down to a retrieval (e.g. ``Θ_ABCD ≈
        ⟨⟨R_ga D_a⟩, ⟨R_gs R_sb D_b⟩, ⟨R_st R_tc D_c⟩, ⟨R_td D_d⟩⟩``).
        """
        pieces: List[List[Arc]] = []
        current: List[Arc] = []
        for arc in self._arcs:
            current.append(arc)
            if arc.kind is ArcKind.RETRIEVAL:
                pieces.append(current)
                current = []
        if current:
            pieces.append(current)
        return pieces

    def is_path_structured(self) -> bool:
        """Whether every piece of :meth:`paths` is a descending chain."""
        for piece in self.paths():
            if piece[-1].kind is not ArcKind.RETRIEVAL:
                return False
            for earlier, later in zip(piece, piece[1:]):
                if self.graph.parent_arc(later) is not earlier:
                    return False
        return True

    def with_swap(self, first: Union[Arc, str], second: Union[Arc, str]) -> "Strategy":
        """The strategy with two sibling subtrees' arc blocks interchanged.

        ``first`` and ``second`` must descend from a common node
        (Section 3.1's transformation: "interchanging r₁ (and its
        descendents) with r₂ (and its descendents)").  Arc order inside
        each block is preserved; arcs outside both subtrees keep their
        positions relative to the blocks.
        """
        first = self.graph.arc(first) if isinstance(first, str) else first
        second = self.graph.arc(second) if isinstance(second, str) else second
        if first.source is not second.source:
            raise IllegalStrategyError(
                f"{first.name!r} and {second.name!r} are not siblings"
            )
        if first is second:
            raise IllegalStrategyError("cannot swap an arc with itself")
        block_a = {a.name for a in self.graph.subtree_arcs(first)}
        block_b = {a.name for a in self.graph.subtree_arcs(second)}
        seq_a = [a for a in self._arcs if a.name in block_a]
        seq_b = [a for a in self._arcs if a.name in block_b]
        start_a = self._positions[seq_a[0].name]
        start_b = self._positions[seq_b[0].name]
        swapped: List[Arc] = []
        for index, arc in enumerate(self._arcs):
            if index == start_a:
                swapped.extend(seq_b)
            elif index == start_b:
                swapped.extend(seq_a)
            if arc.name not in block_a and arc.name not in block_b:
                swapped.append(arc)
        return Strategy(self.graph, swapped)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Strategy)
            and self.graph is other.graph
            and self.arc_names() == other.arc_names()
        )

    def __hash__(self) -> int:
        return hash((id(self.graph), self.arc_names()))

    def __repr__(self) -> str:
        return f"Strategy⟨{' '.join(self.arc_names())}⟩"

"""The evaluation-engine registry: one name per strategy substrate.

The paper's query processor is top-down, but the repo now carries
three independently-derived evaluation strategies over the same rule
base — top-down SLD resolution, bottom-up semi-naive fixpoints, and
query-subquery nets — and the session layer, the CLI (``--engine``),
and the 3-way differential oracle all select between them by name.
This module is that seam: :data:`ENGINE_NAMES` enumerates the
registry, :func:`make_engine` constructs an engine behind the common
``prove`` / ``answers`` / ``holds`` protocol.

The bottom-up engine natively answers with bare substitutions (it is
a model oracle, not a proof search), so :func:`make_engine` wraps it
in :class:`BottomUpProofAdapter`, which bills one retrieval per query
against the materialized model and returns the same
:class:`~repro.datalog.engine.Answer` objects the other two engines
produce.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..datalog.bottomup import BottomUpEngine
from ..datalog.database import Database
from ..datalog.engine import Answer, CostModel, ProofTrace, TopDownEngine
from ..datalog.qsqn import QSQNEngine
from ..datalog.rules import RuleBase
from ..datalog.terms import Atom, Substitution
from ..errors import StrategyError

__all__ = ["ENGINE_NAMES", "BottomUpProofAdapter", "make_engine"]

#: The registered evaluation strategies, in documentation order.
ENGINE_NAMES = ("topdown", "bottomup", "qsqn")


class BottomUpProofAdapter:
    """:class:`BottomUpEngine` behind the proof-engine protocol.

    Each query is answered from the (cached) materialized model; the
    trace bills one retrieval per query — the model lookup — so the
    session layer's cost accounting stays well-defined even though
    bottom-up evaluation has no per-derivation cost story.
    """

    def __init__(
        self,
        rule_base: RuleBase,
        cost_model: Optional[CostModel] = None,
    ):
        self.rule_base = rule_base
        self.cost_model = cost_model or CostModel()
        self._engine = BottomUpEngine(rule_base)

    def prove(self, query: Atom, database: Database) -> Answer:
        trace = ProofTrace()
        cost = self.cost_model.retrieval(query)
        for binding in self._engine.model(database).retrieve(query):
            trace.record_retrieval(query, True, cost)
            return Answer(True, binding, trace)
        trace.record_retrieval(query, False, cost)
        return Answer(False, Substitution(), trace)

    def answers(
        self, query: Atom, database: Database, limit: Optional[int] = None
    ) -> Iterator[Answer]:
        trace = ProofTrace()
        cost = self.cost_model.retrieval(query)
        produced = 0
        for binding in self._engine.model(database).retrieve(query):
            if produced == 0:
                trace.record_retrieval(query, True, cost)
            yield Answer(True, binding, trace)
            produced += 1
            if limit is not None and produced >= limit:
                return
        if produced == 0:
            trace.record_retrieval(query, False, cost)

    def holds(self, query: Atom, database: Database) -> bool:
        return self._engine.holds(query, database)

    def invalidate(self, database: Optional[Database] = None) -> None:
        self._engine.invalidate(database)


def make_engine(
    name: str,
    rule_base: RuleBase,
    *,
    max_depth: Optional[int] = None,
    cost_model: Optional[CostModel] = None,
):
    """Construct the named evaluation engine over ``rule_base``.

    ``max_depth`` only applies to the top-down engine (the other two
    need no depth bound: bottom-up is a fixpoint, QSQN tables its
    subqueries); passing it for them is accepted and ignored so
    callers can thread one configuration through uniformly.
    """
    if name == "topdown":
        return TopDownEngine(
            rule_base, cost_model=cost_model, max_depth=max_depth or 64
        )
    if name == "bottomup":
        return BottomUpProofAdapter(rule_base, cost_model=cost_model)
    if name == "qsqn":
        return QSQNEngine(rule_base, cost_model=cost_model)
    raise StrategyError(
        f"unknown engine {name!r}; expected one of {', '.join(ENGINE_NAMES)}"
    )

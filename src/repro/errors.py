"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without also swallowing programming
mistakes such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DatalogError",
    "ParseError",
    "UnificationError",
    "StratificationError",
    "EvaluationError",
    "GraphError",
    "RecursionLimitError",
    "StrategyError",
    "IllegalStrategyError",
    "DistributionError",
    "LearningError",
    "SampleBudgetExceeded",
    "ResilienceError",
    "RetrievalFaultError",
    "QueryDeadlineExceeded",
    "CircuitOpenError",
    "CheckpointError",
]


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class DatalogError(ReproError):
    """Base class for errors in the Datalog substrate."""


class ParseError(DatalogError):
    """Raised when Datalog source text cannot be parsed.

    Carries the 1-based ``line`` and ``column`` of the offending token
    when they are known.
    """

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class UnificationError(DatalogError):
    """Raised by operations that require a unifier when none exists."""


class StratificationError(DatalogError):
    """Raised when a rule base using negation admits no stratification."""


class EvaluationError(DatalogError):
    """Raised when query evaluation cannot proceed (e.g. unsafe rules)."""


class GraphError(ReproError):
    """Base class for inference-graph construction and validation errors."""


class RecursionLimitError(GraphError):
    """Raised when unfolding a recursive rule base without a depth bound."""


class StrategyError(ReproError):
    """Base class for strategy-level errors."""


class IllegalStrategyError(StrategyError):
    """Raised when an arc sequence is not a legal strategy for its graph."""


class DistributionError(ReproError):
    """Raised when a context distribution is mis-specified."""


class LearningError(ReproError):
    """Base class for errors in the PIB/PAO learning algorithms."""


class SampleBudgetExceeded(LearningError):
    """Raised when a learner exhausts its sample budget before finishing."""


class ResilienceError(ReproError):
    """Base class for failures in the resilient execution layer."""


class RetrievalFaultError(ResilienceError):
    """A *transient* fault while attempting a database retrieval.

    Unlike a blocked arc — a definitive "these facts are not here" —
    a fault carries no information about the context: the segment timed
    out, the connection dropped, the scan must be retried.  ``arc_name``
    identifies the attempted arc; ``timeout`` distinguishes simulated
    timeouts from plain faults; ``cost_multiplier`` scales the charge
    for the wasted attempt (a timeout burns more of the cost budget
    than a fast connection refusal).
    """

    def __init__(self, arc_name, timeout=False, cost_multiplier=1.0):
        kind = "timeout" if timeout else "transient fault"
        super().__init__(f"{kind} while attempting arc {arc_name!r}")
        self.arc_name = arc_name
        self.timeout = timeout
        self.cost_multiplier = float(cost_multiplier)


class QueryDeadlineExceeded(ResilienceError):
    """A query's cost deadline expired before the search finished.

    ``spent`` is the cost charged up to the stop; ``budget`` the
    per-query deadline it ran into.
    """

    def __init__(self, spent, budget):
        super().__init__(
            f"query deadline exceeded: spent {spent:g} of budget {budget:g}"
        )
        self.spent = float(spent)
        self.budget = float(budget)


class CircuitOpenError(ResilienceError):
    """An arc's circuit breaker is open: attempts are being shed."""

    def __init__(self, arc_name):
        super().__init__(f"circuit open for arc {arc_name!r}")
        self.arc_name = arc_name


class CheckpointError(LearningError):
    """A learner checkpoint is missing, truncated, or corrupt.

    Wraps the raw ``FileNotFoundError`` / ``JSONDecodeError`` /
    ``KeyError`` family so callers can treat every bad-state-file
    condition uniformly.  ``path`` names the offending file when known.
    """

    def __init__(self, message, path=None):
        if path is not None:
            message = f"{message} (checkpoint: {path})"
        super().__init__(message)
        self.path = path

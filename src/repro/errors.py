"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without also swallowing programming
mistakes such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DatalogError",
    "ParseError",
    "UnificationError",
    "StratificationError",
    "EvaluationError",
    "GraphError",
    "RecursionLimitError",
    "StrategyError",
    "IllegalStrategyError",
    "DistributionError",
    "LearningError",
    "SampleBudgetExceeded",
]


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class DatalogError(ReproError):
    """Base class for errors in the Datalog substrate."""


class ParseError(DatalogError):
    """Raised when Datalog source text cannot be parsed.

    Carries the 1-based ``line`` and ``column`` of the offending token
    when they are known.
    """

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class UnificationError(DatalogError):
    """Raised by operations that require a unifier when none exists."""


class StratificationError(DatalogError):
    """Raised when a rule base using negation admits no stratification."""


class EvaluationError(DatalogError):
    """Raised when query evaluation cannot proceed (e.g. unsafe rules)."""


class GraphError(ReproError):
    """Base class for inference-graph construction and validation errors."""


class RecursionLimitError(GraphError):
    """Raised when unfolding a recursive rule base without a depth bound."""


class StrategyError(ReproError):
    """Base class for strategy-level errors."""


class IllegalStrategyError(StrategyError):
    """Raised when an arc sequence is not a legal strategy for its graph."""


class DistributionError(ReproError):
    """Raised when a context distribution is mis-specified."""


class LearningError(ReproError):
    """Base class for errors in the PIB/PAO learning algorithms."""


class SampleBudgetExceeded(LearningError):
    """Raised when a learner exhausts its sample budget before finishing."""

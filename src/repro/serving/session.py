"""`QuerySession`: the unified public entry point.

One object, one lifecycle, instead of the former sprawl of
``SelfOptimizingQueryProcessor`` kwargs, ``execute`` vs
``execute_resilient`` call sites, and CLI-only replay plumbing::

    import repro

    with repro.open_session("kb.dl", "facts.dl") as session:
        answer = session.query("instructor(manolis)?")
        answers = session.query_batch(batch_of_queries)
        report = session.learn_from_stream(open("stream.txt"))
        print(session.report())

A session owns a processor (configured by a
:class:`~repro.serving.config.SessionConfig`), fronted by a
:class:`~repro.serving.server.QueryServer` (configured by
:class:`ServingConfig`/:class:`CacheConfig`), plus an optional default
database.  Everything the CLI's ``learn``/``trace``/``serve``
subcommands do goes through this layer — the CLI is a thin adapter.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..datalog.database import Database
from ..datalog.parser import parse_program, parse_query
from ..datalog.rules import RuleBase
from ..datalog.terms import Atom
from ..errors import ReproError
from ..observability.recorder import Recorder
from ..storage.interface import FactStore
from ..system import SelfOptimizingQueryProcessor, SystemAnswer
from .admission import Request, RequestOutcome
from .config import CacheConfig, ServingConfig, SessionConfig
from .server import QueryServer

__all__ = ["QuerySession", "StreamReport", "open_session"]

#: What session entry points accept as a query.
QueryLike = Union[Atom, str]


@dataclass
class StreamReport:
    """Aggregate outcome of one :meth:`QuerySession.learn_from_stream`."""

    queries: int = 0
    total_cost: float = 0.0
    degraded: int = 0
    climbs: int = 0
    cached: int = 0

    @property
    def mean_cost(self) -> float:
        return self.total_cost / self.queries if self.queries else 0.0


def _coerce_rules(rules: Union[RuleBase, str, os.PathLike]) -> RuleBase:
    if isinstance(rules, (str, os.PathLike)):
        with open(rules, encoding="utf-8") as handle:
            return parse_program(handle.read())
    return rules


def _coerce_database(
    database: Union[Database, str, os.PathLike, None],
) -> Optional[Database]:
    if database is None or isinstance(database, FactStore):
        return database
    with open(database, encoding="utf-8") as handle:
        return Database.from_program(handle.read())


class QuerySession:
    """A configured, concurrent, cache-fronted query-processing session.

    Prefer :func:`open_session` (which also accepts file paths and is
    a context manager) over constructing this directly.
    """

    def __init__(
        self,
        rules: Union[RuleBase, str, os.PathLike],
        database: Union[Database, str, os.PathLike, None] = None,
        *,
        config: Optional[SessionConfig] = None,
        cache: Optional[CacheConfig] = None,
        serving: Optional[ServingConfig] = None,
        recorder: Optional[Recorder] = None,
    ):
        self.rules = _coerce_rules(rules)
        self.database = _coerce_database(database)
        self.config = config or SessionConfig()
        self.processor = SelfOptimizingQueryProcessor(
            self.rules, config=self.config, recorder=recorder
        )
        self.server = QueryServer(
            self.processor,
            serving=serving or ServingConfig(),
            cache=cache or CacheConfig(),
        )
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def __enter__(self) -> "QuerySession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Flush checkpoints and experience (when configured), then
        refuse further work.

        Session close is when this session's settled outcomes become
        *experience*: each form that processed at least one context
        contributes its current winner to the configured store, where
        the next session's :func:`open_session` can warm-start from
        it.
        """
        if self._closed:
            return
        if self.config.checkpoint_dir is not None:
            self.processor.checkpoint_now()
        if self.processor.experience_store is not None:
            self.processor.contribute_experience()
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def _require_open(self) -> None:
        if self._closed:
            raise ReproError("the session is closed")

    def _resolve_database(self, database: Optional[Database]) -> Database:
        resolved = database if database is not None else self.database
        if resolved is None:
            raise ReproError(
                "no database: pass one to the call or to open_session()"
            )
        return resolved

    @staticmethod
    def _coerce_query(query: QueryLike) -> Atom:
        return parse_query(query) if isinstance(query, str) else query

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def query(
        self, query: QueryLike, database: Optional[Database] = None
    ) -> SystemAnswer:
        """Answer one query (string or :class:`Atom`) through the server."""
        self._require_open()
        return self.server.submit(
            self._coerce_query(query), self._resolve_database(database)
        )

    def query_batch(
        self,
        queries: Sequence[QueryLike],
        database: Optional[Database] = None,
    ) -> List[SystemAnswer]:
        """Answer a batch, sharded by form across the worker pool."""
        self._require_open()
        return self.server.run_batch(
            [self._coerce_query(query) for query in queries],
            self._resolve_database(database),
        )

    def submit_request(
        self,
        request: "Request",
        database: Optional[Database] = None,
    ) -> "RequestOutcome":
        """Admission-controlled single submission (typed outcome)."""
        self._require_open()
        return self.server.submit_request(
            request, self._resolve_database(database)
        )

    def run_requests(
        self,
        requests: Sequence,
        database: Optional[Database] = None,
    ) -> List["RequestOutcome"]:
        """Serve a burst of :class:`~repro.serving.admission.Request`
        objects (or plain queries) through admission control; outcomes
        align with the input order and are never exceptions."""
        self._require_open()
        return self.server.run_requests(
            [request if isinstance(request, Request)
             else Request(self._coerce_query(request))
             for request in requests],
            self._resolve_database(database),
        )

    def drain(self) -> None:
        """Move the server to DRAINING: queued work finishes, new
        requests are rejected.  No-op when admission is off."""
        self.server.drain()

    def learn_from_stream(
        self,
        stream: Union[Iterable[str], str, os.PathLike],
        database: Optional[Database] = None,
        on_answer: Optional[Callable[[int, str, SystemAnswer], None]] = None,
        checkpoint: bool = True,
    ) -> StreamReport:
        """Replay a query stream through the learning processor.

        ``stream`` is a path, an open file, or any iterable of lines;
        blank lines and ``%`` comments are skipped — the same format
        the CLI's ``learn``/``trace`` subcommands read.  ``on_answer``
        (called as ``on_answer(count, text, answer)`` after each
        query) is the seam the CLI uses to echo climbs and
        degradations as they happen.  With ``checkpoint`` (default),
        a configured checkpoint directory gets a final forced
        checkpoint after the stream drains.
        """
        self._require_open()
        resolved = self._resolve_database(database)
        report = StreamReport()
        if isinstance(stream, (str, os.PathLike)):
            with open(stream, encoding="utf-8") as handle:
                return self.learn_from_stream(
                    handle, resolved, on_answer, checkpoint
                )
        for raw in stream:
            text = raw.split("%", 1)[0].strip()
            if not text:
                continue
            answer = self.query(text, resolved)
            report.queries += 1
            report.total_cost += answer.cost
            if answer.degraded:
                report.degraded += 1
            if answer.climbed:
                report.climbs += 1
            if answer.cached:
                report.cached += 1
            if on_answer is not None:
                on_answer(report.queries, text, answer)
        if checkpoint and self.config.checkpoint_dir is not None:
            self.processor.checkpoint_now()
        return report

    # ------------------------------------------------------------------
    # Introspection & persistence
    # ------------------------------------------------------------------

    def report(self) -> Dict[str, Dict[str, object]]:
        """The processor's per-form report plus serving/cache counters."""
        summary = self.processor.report()
        summary["serving"] = self.server.snapshot()
        return summary

    def checkpoint(self) -> int:
        """Force a checkpoint of every compiled form; returns how many."""
        self._require_open()
        return self.processor.checkpoint_now()

    def contribute_experience(self) -> int:
        """Flush settled outcomes to the experience store immediately
        (``close`` also does this); returns how many records landed.
        No-op (0) when experience is disabled."""
        self._require_open()
        return self.processor.contribute_experience()


def open_session(
    rules: Union[RuleBase, str, os.PathLike],
    database: Union[Database, str, os.PathLike, None] = None,
    *,
    config: Optional[SessionConfig] = None,
    cache: Optional[CacheConfig] = None,
    serving: Optional[ServingConfig] = None,
    recorder: Optional[Recorder] = None,
) -> QuerySession:
    """Open a :class:`QuerySession` — the one-stop public entry point.

    ``rules`` and ``database`` accept in-memory objects or paths to
    Datalog files.  The three config dataclasses each default to their
    neutral settings: vanilla learning, no caching, one worker.
    """
    return QuerySession(
        rules,
        database,
        config=config,
        cache=cache,
        serving=serving,
        recorder=recorder,
    )

"""`QueryServer`: batched, form-sharded, cached query execution.

The paper's learner state is *per query form* — each form owns its
inference graph, PIB learner, breakers, and drift epoch (Theorem 1's
guarantee is quantified per form), which makes the form the natural
sharding key for concurrency: queries of different forms never touch
shared learner state, so they can run on different worker threads,
while queries of the same form are serialized under the form's lock so
the Δ̃ accumulation and Equation 6 sequential test keep exactly the
paper's serial semantics.

Layered in front of execution sit the two cache tiers of
:mod:`repro.serving.cache`: the answer cache short-circuits repeated
ground queries entirely, and the subgoal memo (installed into the
processor as its context seam) shares settled database-probe results
across queries and threads.

Determinism contract (asserted by the ``serving_determinism`` tests):

* with ``workers == 1`` and caches disabled, a batch run is
  byte-identical — trace and report — to calling
  ``processor.query(...)`` in a plain loop;
* under parallel execution, each form still sees its queries in
  submission order, so per-form climb decisions are identical to the
  sequential run's.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ..datalog.database import Database
from ..datalog.rules import QueryForm
from ..datalog.terms import Atom
from ..system import SelfOptimizingQueryProcessor, SystemAnswer
from .cache import AnswerCache, SubgoalMemo
from .config import CacheConfig, ServingConfig

__all__ = ["QueryServer"]


class QueryServer:
    """Serve batches of queries against a self-optimizing processor.

    Parameters
    ----------
    processor:
        The :class:`~repro.system.SelfOptimizingQueryProcessor` that
        owns all per-form learner state.  The server installs its
        subgoal memo (when configured) as the processor's context
        seam; otherwise the processor is used unmodified.
    serving:
        Worker-pool shape (:class:`~repro.serving.config.ServingConfig`).
    cache:
        Cache-tier bounds (:class:`~repro.serving.config.CacheConfig`);
        both tiers default to disabled.
    """

    def __init__(
        self,
        processor: SelfOptimizingQueryProcessor,
        serving: Optional[ServingConfig] = None,
        cache: Optional[CacheConfig] = None,
    ):
        self.processor = processor
        self.serving = serving or ServingConfig()
        self.cache_config = cache or CacheConfig()
        recorder = processor.recorder
        self.answer_cache: Optional[AnswerCache] = (
            AnswerCache(self.cache_config.answer_capacity, recorder)
            if self.cache_config.answer_capacity
            else None
        )
        self.subgoal_memo: Optional[SubgoalMemo] = (
            SubgoalMemo(self.cache_config.subgoal_capacity, recorder)
            if self.cache_config.subgoal_capacity
            else None
        )
        if self.subgoal_memo is not None:
            processor.subgoal_memo = self.subgoal_memo
        self.batches = 0
        self.queries_served = 0
        self.cached_answers = 0
        self._admin_lock = threading.Lock()
        self._form_locks: Dict[QueryForm, threading.Lock] = {}

    # ------------------------------------------------------------------
    # Locking
    # ------------------------------------------------------------------

    def _lock_for(self, form: QueryForm) -> threading.Lock:
        """The form's serialization lock (created on first use).

        Creation happens under the admin lock, which also guards the
        processor's lazy per-form compilation: two threads racing on a
        brand-new form must not both build its graph and learner.
        """
        lock = self._form_locks.get(form)
        if lock is None:
            with self._admin_lock:
                lock = self._form_locks.get(form)
                if lock is None:
                    self.processor.ensure_compiled(form)
                    lock = self._form_locks[form] = threading.Lock()
        return lock

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def submit(self, query: Atom, database: Database) -> SystemAnswer:
        """Answer one query: answer cache, then the learned processor.

        Thread-safe: any number of threads may call this concurrently;
        queries of one form are serialized in arrival order.
        """
        if self.answer_cache is not None:
            cached = self.answer_cache.lookup(query, database)
            if cached is not None:
                with self._admin_lock:
                    self.queries_served += 1
                    self.cached_answers += 1
                return cached
        form = QueryForm.of(query)
        with self._lock_for(form):
            answer = self.processor.query(query, database)
        if self.answer_cache is not None:
            self.answer_cache.store(query, database, answer)
        with self._admin_lock:
            self.queries_served += 1
        return answer

    def run_batch(
        self, queries: Sequence[Atom], database: Database
    ) -> List[SystemAnswer]:
        """Answer a batch; results align with the input order.

        With one worker the batch runs strictly sequentially in
        submission order (the byte-identity path).  With more, queries
        are grouped by form and each group — internally ordered — runs
        as one pool task, so forms proceed in parallel while per-form
        order (and therefore every climb decision) is preserved.
        """
        queries = list(queries)
        self.batches += 1
        if self.serving.workers == 1:
            return [self.submit(query, database) for query in queries]

        groups: Dict[QueryForm, List[int]] = {}
        for index, query in enumerate(queries):
            groups.setdefault(QueryForm.of(query), []).append(index)
        results: List[Optional[SystemAnswer]] = [None] * len(queries)
        workers = min(self.serving.workers, max(len(groups), 1))

        def run_group(indexes: List[int]) -> List[Tuple[int, SystemAnswer]]:
            return [
                (index, self.submit(queries[index], database))
                for index in indexes
            ]

        with ThreadPoolExecutor(max_workers=workers) as pool:
            for chunk in pool.map(run_group, groups.values()):
                for index, answer in chunk:
                    results[index] = answer
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Serving + cache counters, JSON-ready (for ``report()``)."""
        summary: Dict[str, object] = {
            "workers": self.serving.workers,
            "batches": self.batches,
            "queries_served": self.queries_served,
            "cached_answers": self.cached_answers,
            "forms": len(self._form_locks),
        }
        if self.answer_cache is not None:
            summary["answer_cache"] = self.answer_cache.snapshot()
        if self.subgoal_memo is not None:
            summary["subgoal_memo"] = self.subgoal_memo.snapshot()
        return summary

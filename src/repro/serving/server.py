"""`QueryServer`: batched, form-sharded, cached query execution.

The paper's learner state is *per query form* — each form owns its
inference graph, PIB learner, breakers, and drift epoch (Theorem 1's
guarantee is quantified per form), which makes the form the natural
sharding key for concurrency: queries of different forms never touch
shared learner state, so they can run on different worker threads,
while queries of the same form are serialized under the form's lock so
the Δ̃ accumulation and Equation 6 sequential test keep exactly the
paper's serial semantics.

Layered in front of execution sit the two cache tiers of
:mod:`repro.serving.cache`: the answer cache short-circuits repeated
ground queries entirely, and the subgoal memo (installed into the
processor as its context seam) shares settled database-probe results
across queries and threads.

Determinism contract (asserted by the ``serving_determinism`` tests):

* with ``workers == 1`` and caches disabled, a batch run is
  byte-identical — trace and report — to calling
  ``processor.query(...)`` in a plain loop;
* under parallel execution, each form still sees its queries in
  submission order, so per-form climb decisions are identical to the
  sequential run's.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from dataclasses import replace

from ..datalog.database import Database
from ..datalog.rules import QueryForm
from ..datalog.terms import Atom, Substitution
from ..system import SelfOptimizingQueryProcessor, SystemAnswer
from .admission import (
    REASON_DEADLINE,
    REASON_DRAINING,
    REASON_EVICTED,
    REASON_OVER_CONCURRENCY,
    REASON_OVER_QUOTA,
    REASON_QUEUE_FULL,
    AdmissionQueue,
    HealthTracker,
    LoadShedder,
    Request,
    RequestOutcome,
    ServerHealth,
    TenantQuota,
    coerce_requests,
)
from .cache import AnswerCache, SubgoalMemo
from .config import CacheConfig, ServingConfig

__all__ = ["QueryServer"]


class QueryServer:
    """Serve batches of queries against a self-optimizing processor.

    Parameters
    ----------
    processor:
        The :class:`~repro.system.SelfOptimizingQueryProcessor` that
        owns all per-form learner state.  The server installs its
        subgoal memo (when configured) as the processor's context
        seam; otherwise the processor is used unmodified.
    serving:
        Worker-pool shape (:class:`~repro.serving.config.ServingConfig`).
    cache:
        Cache-tier bounds (:class:`~repro.serving.config.CacheConfig`);
        both tiers default to disabled.
    """

    def __init__(
        self,
        processor: SelfOptimizingQueryProcessor,
        serving: Optional[ServingConfig] = None,
        cache: Optional[CacheConfig] = None,
    ):
        self.processor = processor
        self.serving = serving or ServingConfig()
        self.cache_config = cache or CacheConfig()
        recorder = processor.recorder
        self.answer_cache: Optional[AnswerCache] = (
            AnswerCache(self.cache_config.answer_capacity, recorder)
            if self.cache_config.answer_capacity
            else None
        )
        self.subgoal_memo: Optional[SubgoalMemo] = (
            SubgoalMemo(self.cache_config.subgoal_capacity, recorder)
            if self.cache_config.subgoal_capacity
            else None
        )
        if self.subgoal_memo is not None:
            processor.subgoal_memo = self.subgoal_memo
        self.batches = 0
        self.queries_served = 0
        self.cached_answers = 0
        self.requests_rejected = 0
        self.requests_degraded = 0
        self._admin_lock = threading.Lock()
        self._form_locks: Dict[QueryForm, threading.Lock] = {}
        admission = self.serving.admission
        if admission is not None:
            self._quota: Optional[TenantQuota] = TenantQuota(
                admission.tenant_rate,
                admission.tenant_burst,
                admission.tenant_concurrency,
            )
            self._shedder: Optional[LoadShedder] = LoadShedder(
                admission.shed_policy
            )
            self._health: Optional[HealthTracker] = HealthTracker(
                admission.shed_threshold, admission.recover_threshold
            )
            self._queues: Dict[QueryForm, AdmissionQueue] = {}
            #: Guards shedder/quota/counter mutations reachable from
            #: dispatch worker threads.
            self._admission_lock = threading.Lock()
        else:
            self._quota = None
            self._shedder = None
            self._health = None
            self._queues = {}

    # ------------------------------------------------------------------
    # Locking
    # ------------------------------------------------------------------

    def _lock_for(self, form: QueryForm) -> threading.Lock:
        """The form's serialization lock (created on first use).

        Creation happens under the admin lock, which also guards the
        processor's lazy per-form compilation: two threads racing on a
        brand-new form must not both build its graph and learner.
        """
        lock = self._form_locks.get(form)
        if lock is None:
            with self._admin_lock:
                lock = self._form_locks.get(form)
                if lock is None:
                    self.processor.ensure_compiled(form)
                    lock = self._form_locks[form] = threading.Lock()
        return lock

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def submit(self, query: Atom, database: Database) -> SystemAnswer:
        """Answer one query: answer cache, then the learned processor.

        Thread-safe: any number of threads may call this concurrently;
        queries of one form are serialized in arrival order.
        """
        if self.answer_cache is not None:
            cached = self.answer_cache.lookup(query, database)
            if cached is not None:
                with self._admin_lock:
                    self.queries_served += 1
                    self.cached_answers += 1
                return cached
        form = QueryForm.of(query)
        with self._lock_for(form):
            answer = self.processor.query(query, database)
        if self.answer_cache is not None:
            self.answer_cache.store(query, database, answer)
        with self._admin_lock:
            self.queries_served += 1
        return answer

    # ------------------------------------------------------------------
    # Admission-controlled serving
    # ------------------------------------------------------------------

    @property
    def health(self) -> ServerHealth:
        """The overload state machine (HEALTHY when admission is off)."""
        return (self._health.state if self._health is not None
                else ServerHealth.HEALTHY)

    def drain(self) -> None:
        """Enter DRAINING: refuse every new request from now on.

        Queued work in an in-flight ``run_requests`` still completes;
        later submissions are rejected with reason ``draining``.
        No-op when admission is off.
        """
        if self._health is None:
            return
        edge = self._health.drain()
        recorder = self.processor.recorder
        if edge is not None and recorder.enabled:
            recorder.health_transition(*edge)

    def _breaker_open(self) -> bool:
        """Whether any circuit breaker on the processor is not closed."""
        policy = self.processor.resilience
        if policy is None:
            return False
        return any(
            state.get("state") != "closed"
            for state in policy.breakers.snapshot().values()
        )

    def _queue_for(self, form: QueryForm) -> AdmissionQueue:
        queue = self._queues.get(form)
        if queue is None:
            assert self.serving.admission is not None
            queue = self._queues[form] = AdmissionQueue(
                self.serving.admission.queue_capacity
            )
        return queue

    def _update_health(self) -> None:
        assert self._health is not None and self.serving.admission is not None
        depth = sum(len(queue) for queue in self._queues.values())
        capacity = (self.serving.admission.queue_capacity
                    * max(1, len(self._queues)))
        edge = self._health.update(depth, capacity,
                                   breaker_open=self._breaker_open())
        recorder = self.processor.recorder
        if edge is not None and recorder.enabled:
            recorder.health_transition(*edge)

    def _shed(
        self, request: Request, reason: str, database: Database
    ) -> RequestOutcome:
        """Turn one request away: stale-cache degrade when the policy
        allows and a stale answer exists, typed rejection otherwise.
        Never raises; never touches the processor (learner isolation).
        """
        assert self._shedder is not None
        recorder = self.processor.recorder
        with self._admission_lock:
            self._shedder.note(reason)
        if self._shedder.wants_degrade and self.answer_cache is not None:
            stale = self.answer_cache.lookup_stale(request.query, database)
            if stale is not None:
                answer = replace(stale, degraded=True,
                                 incident=f"admission: {reason}")
                with self._admission_lock:
                    self.requests_degraded += 1
                if recorder.enabled:
                    recorder.request_degraded(request.tenant, reason)
                return RequestOutcome(request, "degraded", answer=answer,
                                      reason=reason)
        with self._admission_lock:
            self.requests_rejected += 1
        if recorder.enabled:
            recorder.request_rejected(request.tenant, reason)
        return RequestOutcome(request, "rejected", reason=reason)

    def submit_request(
        self, request: Request, database: Database
    ) -> RequestOutcome:
        """Admission-controlled :meth:`submit` for one request."""
        return self.run_requests([request], database)[0]

    def run_requests(
        self, requests: Sequence, database: Database
    ) -> List[RequestOutcome]:
        """Serve a burst of :class:`~repro.serving.admission.Request`
        objects (plain :class:`Atom` queries are wrapped) through
        admission control; outcomes align with the input order.

        The run has two deterministic phases:

        *Admission* walks the arrival sequence once — each arrival
        advances the quota clock one tick, DRAINING and per-tenant
        limits shed first, then the form's bounded queue admits or the
        shed policy picks a victim.  All admission state is a pure
        function of the arrival sequence (never wall time), so
        outcomes are byte-identical across worker counts and replays.

        *Dispatch* drains each form's queue in (deadline, arrival)
        order on the form's *virtual cost clock*: each serve advances
        the clock by the answer's billed cost plus one overhead tick,
        and a request whose latency budget is already exhausted when
        its turn comes is shed as ``deadline-expired-in-queue``.  The
        request-level budget bounds *queue wait*; the per-execution
        :class:`~repro.resilience.deadline.CostDeadline` (when the
        processor has one) still bounds each run's own cost, so the
        two compose.  Forms are independent — with ``workers > 1``
        they drain in parallel with unchanged outcomes.

        Shed requests never reach the processor: they contribute no
        PIB sample, so Theorem 1's per-form schedule over the served
        requests equals a plain sequential run over those requests.
        """
        requests = coerce_requests(requests)
        admission = self.serving.admission
        recorder = self.processor.recorder
        if admission is None:
            outcomes = []
            for request in requests:
                answer = self.submit(request.query, database)
                outcomes.append(RequestOutcome(
                    request, "served", answer=answer, latency=answer.cost
                ))
            return outcomes

        assert (self._quota is not None and self._shedder is not None
                and self._health is not None)
        quota, shedder, health = self._quota, self._shedder, self._health
        slots: List[Optional[RequestOutcome]] = [None] * len(requests)

        # -- Phase 1: admission, strictly in arrival order -------------
        for index, request in enumerate(requests):
            quota.tick()
            tenant = request.tenant
            if health.state is ServerHealth.DRAINING:
                slots[index] = self._shed(request, REASON_DRAINING, database)
                continue
            if quota.over_concurrency(tenant):
                slots[index] = self._shed(request, REASON_OVER_CONCURRENCY,
                                          database)
                continue
            if not quota.try_acquire(tenant):
                slots[index] = self._shed(request, REASON_OVER_QUOTA,
                                          database)
                continue
            form = QueryForm.of(request.query)
            queue = self._queue_for(form)
            # Proactive backpressure: in SHEDDING, a tenant that already
            # holds queue slots is shed before the queue is hard-full —
            # tenants with nothing queued are spared, so light tenants
            # keep getting through while heavy ones drain.
            proactive = (health.state is ServerHealth.SHEDDING
                         and not queue.full
                         and len(queue)
                         >= admission.shed_threshold * queue.capacity
                         and queue.tenant_depths().get(tenant, 0) > 0)
            if proactive or queue.full:
                victim = (None if proactive
                          else shedder.overflow_victim(queue, request))
                if victim is not None:
                    victim_seq, victim_request = victim
                    quota.leave(victim_request.tenant)
                    slots[victim_seq] = self._shed(
                        victim_request, REASON_EVICTED, database
                    )
                    queue.push(request, index, admission.deadline)
                    quota.enter(tenant)
                else:
                    slots[index] = self._shed(request, REASON_QUEUE_FULL,
                                              database)
            else:
                queue.push(request, index, admission.deadline)
                quota.enter(tenant)
            if recorder.enabled:
                recorder.queue_depth(str(form), len(queue))
            self._update_health()

        # -- Phase 2: dispatch, per-form virtual cost clocks -----------
        def drain_queue(form: QueryForm, queue: AdmissionQueue) -> None:
            clock = 0.0
            while True:
                item = queue.pop()
                if item is None:
                    return
                seq, request = item
                deadline = (request.deadline
                            if request.deadline is not None
                            else admission.deadline)
                if deadline is not None and clock >= deadline:
                    with self._admission_lock:
                        quota.leave(request.tenant)
                    slots[seq] = self._shed(request, REASON_DEADLINE,
                                            database)
                    continue
                answer = self.submit(request.query, database)
                clock += answer.cost + 1.0
                with self._admission_lock:
                    quota.leave(request.tenant)
                slots[seq] = RequestOutcome(
                    request, "served", answer=answer, latency=clock
                )
                if recorder.enabled:
                    recorder.request_served(request.tenant, clock)

        pending = [(form, queue) for form, queue in self._queues.items()
                   if len(queue)]
        if self.serving.workers == 1 or len(pending) <= 1:
            for form, queue in pending:
                drain_queue(form, queue)
        else:
            workers = min(self.serving.workers, len(pending))
            with ThreadPoolExecutor(max_workers=workers) as pool:
                list(pool.map(lambda pair: drain_queue(*pair), pending))

        self._update_health()
        return slots  # type: ignore[return-value]

    def _answer_for(self, outcome: RequestOutcome) -> SystemAnswer:
        """An outcome as a SystemAnswer (for the batch API): rejected
        requests become degraded unproved answers, never exceptions."""
        if outcome.answer is not None:
            return outcome.answer
        return SystemAnswer(
            proved=False,
            substitution=Substitution(),
            cost=0.0,
            learned=False,
            degraded=True,
            incident=f"admission: {outcome.reason}",
        )

    def run_batch(
        self, queries: Sequence[Atom], database: Database
    ) -> List[SystemAnswer]:
        """Answer a batch; results align with the input order.

        With one worker the batch runs strictly sequentially in
        submission order (the byte-identity path).  With more, queries
        are grouped by form and each group — internally ordered — runs
        as one pool task, so forms proceed in parallel while per-form
        order (and therefore every climb decision) is preserved.
        """
        queries = list(queries)
        self.batches += 1
        if self.serving.admission is not None:
            outcomes = self.run_requests(queries, database)
            return [self._answer_for(outcome) for outcome in outcomes]
        if self.serving.workers == 1:
            return [self.submit(query, database) for query in queries]

        groups: Dict[QueryForm, List[int]] = {}
        for index, query in enumerate(queries):
            groups.setdefault(QueryForm.of(query), []).append(index)
        results: List[Optional[SystemAnswer]] = [None] * len(queries)
        workers = min(self.serving.workers, max(len(groups), 1))

        def run_group(indexes: List[int]) -> List[Tuple[int, SystemAnswer]]:
            return [
                (index, self.submit(queries[index], database))
                for index in indexes
            ]

        with ThreadPoolExecutor(max_workers=workers) as pool:
            for chunk in pool.map(run_group, groups.values()):
                for index, answer in chunk:
                    results[index] = answer
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Serving + cache counters, JSON-ready (for ``report()``)."""
        summary: Dict[str, object] = {
            "workers": self.serving.workers,
            "batches": self.batches,
            "queries_served": self.queries_served,
            "cached_answers": self.cached_answers,
            "forms": len(self._form_locks),
        }
        if self.answer_cache is not None:
            summary["answer_cache"] = self.answer_cache.snapshot()
        if self.subgoal_memo is not None:
            summary["subgoal_memo"] = self.subgoal_memo.snapshot()
        if (self._health is not None and self._shedder is not None
                and self._quota is not None):
            summary["admission"] = {
                "health": self._health.snapshot(),
                "shedder": self._shedder.snapshot(),
                "quota": self._quota.snapshot(),
                "rejected": self.requests_rejected,
                "degraded": self.requests_degraded,
                "queues": {
                    str(form): {
                        "offered": queue.offered,
                        "peak_depth": queue.peak_depth,
                    }
                    for form, queue in sorted(
                        self._queues.items(), key=lambda pair: str(pair[0])
                    )
                },
            }
        return summary

"""Admission control: bounded queues, quotas, shedding, server health.

PR 1 made a *single execution* resilient (retries, breakers, cost
deadlines) and the serving layer made batches fast; this module
protects the :class:`~repro.serving.server.QueryServer` itself from
overload.  An unbounded burst must not queue without limit, starve
tenants, or blow every deadline at once — instead the server admits
what fits, sheds the rest by an explicit policy, and reports typed
outcomes rather than raising on the hot path.

Everything here is deterministic by construction, in the same spirit
as the resilience and verify layers:

* the :class:`TenantQuota` token buckets refill per *arrival tick*
  (each request arrival advances the clock by one), never wall time;
* the :class:`AdmissionQueue` orders by (deadline, arrival) — FIFO
  among equals, earliest-deadline-first when deadlines are set — and
  its capacity bound is enforced at offer time;
* dispatch latency is accounted on a per-form *virtual cost clock*
  (each serve advances the form's clock by its billed cost plus one
  overhead tick), so admission outcomes and latency percentiles are
  byte-identical across worker counts and replays.

The learner-isolation invariant (checked by the ``overload`` verify
profile): a shed, rejected, or cache-degraded request never reaches
the processor, so it contributes **no** sample to PIB — Theorem 1's
per-form schedule over the *served* requests is exactly what a plain
sequential run over those requests would produce.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from ..datalog.terms import Atom

if TYPE_CHECKING:
    from ..system import SystemAnswer

__all__ = [
    "Request",
    "RequestOutcome",
    "AdmissionQueue",
    "TenantQuota",
    "LoadShedder",
    "ServerHealth",
    "HealthTracker",
    "DEFAULT_TENANT",
    "coerce_requests",
    "REASON_QUEUE_FULL",
    "REASON_OVER_QUOTA",
    "REASON_OVER_CONCURRENCY",
    "REASON_DEADLINE",
    "REASON_DRAINING",
    "REASON_EVICTED",
]

#: Tenant attributed to plain (non-request) submissions.
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class Request:
    """One admission-controlled query submission."""

    query: Atom
    tenant: str = DEFAULT_TENANT
    #: Latency budget in cost units on the form's virtual clock
    #: (queue wait + service); ``None`` inherits the config default.
    deadline: Optional[float] = None


@dataclass(frozen=True)
class RequestOutcome:
    """What the server did with one :class:`Request` — never an
    exception.

    ``status`` is one of:

    * ``"served"`` — the request ran (or hit the coherent cache);
      ``answer`` is the normal :class:`~repro.system.SystemAnswer`;
    * ``"degraded"`` — admission could not run it but salvaged a stale
      cache entry (``degrade-to-cached``); ``answer`` carries it,
      flagged degraded, and ``reason`` says why it could not run;
    * ``"rejected"`` — shed without an answer; ``reason`` is one of
      the :class:`LoadShedder` reason strings and ``answer`` is None.

    ``latency`` is wait + service in cost units on the form's virtual
    clock (0.0 for rejected requests — they never waited in a served
    queue slot).
    """

    request: Request
    status: str
    answer: Optional["SystemAnswer"] = None
    reason: Optional[str] = None
    latency: float = 0.0

    @property
    def served(self) -> bool:
        return self.status == "served"

    @property
    def rejected(self) -> bool:
        return self.status == "rejected"

    @property
    def degraded(self) -> bool:
        return self.status == "degraded"

    @property
    def completeness(self):
        """The answer's :class:`~repro.storage.interface.Completeness`
        verdict (``None`` for rejected requests, which carry no
        answer).  A degrade-to-cached outcome built from a stale
        *partial* entry keeps its partial verdict — shedding never
        upgrades an answer to complete."""
        return self.answer.completeness if self.answer is not None else None


# ----------------------------------------------------------------------
# Queueing
# ----------------------------------------------------------------------


def _order_key(request: Request, seq: int,
               default_deadline: Optional[float]) -> Tuple:
    """Deadline-aware FIFO: finite deadlines first (earliest first),
    arrival order among equals."""
    deadline = request.deadline if request.deadline is not None \
        else default_deadline
    if deadline is None:
        return (1, 0.0, seq)
    return (0, float(deadline), seq)


@dataclass
class _Entry:
    key: Tuple
    seq: int
    request: Request

    def __lt__(self, other: "_Entry") -> bool:
        return self.key < other.key


class AdmissionQueue:
    """A bounded, deadline-aware FIFO for one query form.

    ``offer`` never raises: it returns the evicted entry (the incoming
    request itself when there is no better victim), or ``None`` when
    the request fit.  Victim selection is the shedder's job — the
    queue only knows its bound.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        self.capacity = capacity
        self._entries: List[_Entry] = []
        self.offered = 0
        self.peak_depth = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def tenant_depths(self) -> Dict[str, int]:
        depths: Dict[str, int] = {}
        for entry in self._entries:
            depths[entry.request.tenant] = \
                depths.get(entry.request.tenant, 0) + 1
        return depths

    def push(self, request: Request, seq: int,
             default_deadline: Optional[float]) -> None:
        """Insert (caller has already checked/made room)."""
        self.offered += 1
        entry = _Entry(_order_key(request, seq, default_deadline), seq,
                       request)
        bisect.insort(self._entries, entry)
        self.peak_depth = max(self.peak_depth, len(self._entries))

    def evict_tenant(self, tenant: str) -> Optional[Tuple[int, Request]]:
        """Drop the *newest* queued request of one tenant; returns its
        (arrival seq, request) so the caller can attribute the
        outcome."""
        for index in range(len(self._entries) - 1, -1, -1):
            if self._entries[index].request.tenant == tenant:
                entry = self._entries.pop(index)
                return (entry.seq, entry.request)
        return None

    def pop(self) -> Optional[Tuple[int, Request]]:
        """The next (arrival seq, request) in (deadline, arrival)
        order."""
        if not self._entries:
            return None
        entry = self._entries.pop(0)
        return (entry.seq, entry.request)

    def head_key(self) -> Optional[Tuple]:
        return self._entries[0].key if self._entries else None


# ----------------------------------------------------------------------
# Quotas
# ----------------------------------------------------------------------


class TenantQuota:
    """Per-tenant token buckets on the arrival-tick clock.

    Every arrival (admitted or not) advances the global tick; each
    tenant's bucket refills ``rate`` tokens per tick up to ``burst``
    and admission spends one token.  ``rate == 0`` disables rate
    limiting (every acquire succeeds).  A separate per-tenant
    concurrency bound caps queued-but-unserved requests.

    Deterministic: state is a pure function of the arrival sequence.
    """

    def __init__(self, rate: float, burst: int, concurrency: int = 0):
        self.rate = float(rate)
        self.burst = int(burst)
        self.concurrency = int(concurrency)
        self._tokens: Dict[str, float] = {}
        self._last_tick: Dict[str, int] = {}
        self._in_flight: Dict[str, int] = {}
        self._tick = 0

    def tick(self) -> int:
        """Advance the arrival clock; returns the new tick."""
        self._tick += 1
        return self._tick

    def _refill(self, tenant: str) -> float:
        last = self._last_tick.get(tenant)
        tokens = self._tokens.get(tenant, float(self.burst))
        if last is not None and self.rate > 0:
            tokens = min(float(self.burst),
                         tokens + (self._tick - last) * self.rate)
        self._last_tick[tenant] = self._tick
        self._tokens[tenant] = tokens
        return tokens

    def over_concurrency(self, tenant: str) -> bool:
        return (self.concurrency > 0
                and self._in_flight.get(tenant, 0) >= self.concurrency)

    def try_acquire(self, tenant: str) -> bool:
        """Spend one token (rate limit only; concurrency is separate)."""
        if self.rate <= 0:
            return True
        tokens = self._refill(tenant)
        if tokens < 1.0:
            return False
        self._tokens[tenant] = tokens - 1.0
        return True

    def enter(self, tenant: str) -> None:
        self._in_flight[tenant] = self._in_flight.get(tenant, 0) + 1

    def leave(self, tenant: str) -> None:
        self._in_flight[tenant] = max(0, self._in_flight.get(tenant, 0) - 1)

    def snapshot(self) -> Dict[str, object]:
        return {
            "rate": self.rate,
            "burst": self.burst,
            "tick": self._tick,
            "tokens": {name: round(self._tokens[name], 6)
                       for name in sorted(self._tokens)},
        }


# ----------------------------------------------------------------------
# Shedding
# ----------------------------------------------------------------------

#: Reason strings carried by rejected/degraded outcomes.
REASON_QUEUE_FULL = "queue-full"
REASON_OVER_QUOTA = "over-quota"
REASON_OVER_CONCURRENCY = "over-concurrency"
REASON_DEADLINE = "deadline-expired-in-queue"
REASON_DRAINING = "draining"
REASON_EVICTED = "evicted-over-quota"


class LoadShedder:
    """Applies one of the three shed policies at admission points.

    The shedder decides *who* loses when something must give; the
    server decides *when* something must give (queue full, quota
    exhausted, draining, deadline expired).  The ``degrade-to-cached``
    policy is expressed by :meth:`wants_degrade` — the server owns the
    cache, so it performs the stale lookup itself.
    """

    def __init__(self, policy: str):
        self.policy = policy
        self.shed_counts: Dict[str, int] = {}

    def note(self, reason: str) -> str:
        self.shed_counts[reason] = self.shed_counts.get(reason, 0) + 1
        return reason

    @property
    def wants_degrade(self) -> bool:
        return self.policy == "degrade-to-cached"

    def overflow_victim(
        self, queue: AdmissionQueue, incoming: Request
    ) -> Optional[Tuple[int, Request]]:
        """Who to evict so ``incoming`` can be queued — the victim's
        (arrival seq, request) — or ``None`` to reject the incoming
        request itself.

        ``reject-over-quota`` evicts from the tenant hogging the most
        queue slots — but only when that tenant holds strictly more
        slots than the incoming request's tenant, so a fair queue
        rejects the newcomer rather than churning.
        """
        if self.policy != "reject-over-quota":
            return None
        depths = queue.tenant_depths()
        if not depths:
            return None
        hog = max(sorted(depths), key=lambda name: depths[name])
        if depths[hog] <= depths.get(incoming.tenant, 0):
            return None
        return queue.evict_tenant(hog)

    def snapshot(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "shed": {name: self.shed_counts[name]
                     for name in sorted(self.shed_counts)},
        }


# ----------------------------------------------------------------------
# Health
# ----------------------------------------------------------------------


class ServerHealth(Enum):
    """The server's overload state machine.

    HEALTHY → SHEDDING when aggregate queue depth crosses the shed
    threshold (or a circuit breaker is open); SHEDDING → HEALTHY when
    depth falls back under the recover threshold and no breaker is
    open.  DRAINING is terminal-ish: entered explicitly via
    ``server.drain()``, it refuses every new request while queued work
    finishes.
    """

    HEALTHY = "healthy"
    SHEDDING = "shedding"
    DRAINING = "draining"


@dataclass
class HealthTracker:
    """Tracks the state machine and its transition history."""

    shed_threshold: float
    recover_threshold: float
    state: ServerHealth = ServerHealth.HEALTHY
    transitions: List[Tuple[str, str]] = field(default_factory=list)

    def _move(self, new_state: ServerHealth) -> Optional[Tuple[str, str]]:
        if new_state is self.state:
            return None
        edge = (self.state.value, new_state.value)
        self.state = new_state
        self.transitions.append(edge)
        return edge

    def drain(self) -> Optional[Tuple[str, str]]:
        return self._move(ServerHealth.DRAINING)

    def update(self, depth: int, capacity: int,
               breaker_open: bool = False) -> Optional[Tuple[str, str]]:
        """Re-evaluate from queue depth; returns the transition edge
        taken (or ``None``).  DRAINING never leaves via ``update``."""
        if self.state is ServerHealth.DRAINING:
            return None
        fraction = depth / capacity if capacity else 0.0
        if self.state is ServerHealth.HEALTHY:
            if breaker_open or fraction >= self.shed_threshold:
                return self._move(ServerHealth.SHEDDING)
        elif self.state is ServerHealth.SHEDDING:
            if not breaker_open and fraction <= self.recover_threshold:
                return self._move(ServerHealth.HEALTHY)
        return None

    def snapshot(self) -> Dict[str, object]:
        return {
            "state": self.state.value,
            "transitions": ["->".join(edge) for edge in self.transitions],
        }


def coerce_requests(queries, tenants: int = 0) -> List[Request]:
    """Wrap plain queries as :class:`Request` objects.

    ``tenants > 0`` assigns synthetic tenants round-robin (``t0``,
    ``t1``, …) — the CLI's ``--tenants`` flag and the burst worlds use
    this to model multi-tenant traffic over a single query stream.
    """
    requests: List[Request] = []
    for index, query in enumerate(queries):
        if isinstance(query, Request):
            requests.append(query)
        elif tenants > 0:
            requests.append(Request(query, tenant=f"t{index % tenants}"))
        else:
            requests.append(Request(query))
    return requests

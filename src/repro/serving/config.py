"""Typed configuration for the session/serving API.

Until now the processor's knobs lived as loose keyword arguments on
:class:`~repro.system.SelfOptimizingQueryProcessor` and as ad-hoc
flag-parsing helpers buried in the CLI.  This module gathers them into
three small dataclasses:

* :class:`SessionConfig` — everything that shapes *learning and
  answering* (the paper's ``δ``, the Equation 6 test cadence, the
  resilience policy, checkpoints, drift handling);
* :class:`CacheConfig` — the serving layer's two-tier cache: the
  ground-answer cache and the QSQN-style subgoal memo table, both LRU
  bounded and both disabled by default (capacity 0), because caching
  changes which queries reach the learner;
* :class:`ServingConfig` — the concurrency shape of a
  :class:`~repro.serving.server.QueryServer` (worker count; work is
  always sharded by query form, the unit that owns its PIB learner);
* :class:`AdmissionConfig` — overload protection: bounded per-form
  queues, per-tenant token-bucket quotas, load-shedding policy, and
  request deadlines.  ``None``/absent means admission control is off
  and the server accepts everything (the pre-admission behaviour).

The old processor keywords keep working through a shim that builds a
:class:`SessionConfig` and emits a :class:`DeprecationWarning`; see
:class:`~repro.system.SelfOptimizingQueryProcessor`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence, TYPE_CHECKING

from ..learning.drift import DriftConfig
from ..resilience.policy import ResiliencePolicy
from ..resilience.retry import RetryPolicy

if TYPE_CHECKING:
    from ..graphs.inference_graph import InferenceGraph
    from ..strategies.transformations import Transformation

__all__ = [
    "SessionConfig",
    "CacheConfig",
    "ServingConfig",
    "AdmissionConfig",
    "ExperienceConfig",
]

#: The load-shedding policies :class:`AdmissionConfig` accepts.
SHED_POLICIES = ("reject-newest", "reject-over-quota", "degrade-to-cached")


@dataclass(frozen=True)
class ExperienceConfig:
    """Cross-session experience store + warm-start knobs.

    Experience is *priors only*: with ``enabled=False`` (the default)
    nothing in the session touches the store and every output is
    byte-identical to a build without the experience subsystem; with
    it enabled, a new form's learner starts at its nearest structural
    neighbour's settled strategy instead of depth-first — the Theorem 1
    per-run schedule still starts cold either way.

    The ranking blend follows querytorque's knowledge engine:
    ``0.7 * pattern + 0.3 * similarity`` by default.
    """

    #: JSON store location (``None``: memory-only, dies with the
    #: session — still useful for repeated forms within one session).
    path: Optional[str] = None
    #: Master switch; off means the store is never opened or written.
    enabled: bool = False
    #: How many nearest neighbours to consider per form.
    neighbour_k: int = 3
    #: Minimum blended similarity for a record to be used at all.
    similarity_floor: float = 0.5
    #: Weight of the structural-pattern component in the blend.
    pattern_weight: float = 0.7
    #: Weight of the feature-similarity component in the blend.
    similarity_weight: float = 0.3

    def __post_init__(self) -> None:
        if self.neighbour_k < 1:
            raise ValueError("neighbour_k must be at least 1")
        if not 0.0 <= self.similarity_floor <= 1.0:
            raise ValueError("similarity_floor must be in [0, 1]")
        if self.pattern_weight < 0 or self.similarity_weight < 0:
            raise ValueError("blend weights cannot be negative")
        if self.pattern_weight + self.similarity_weight <= 0:
            raise ValueError("blend weights cannot both be zero")

    @classmethod
    def default_enabled(
        cls, path: Optional[str] = None
    ) -> "ExperienceConfig":
        """What the CLI's bare ``--experience`` flag turns on."""
        return cls(path=path, enabled=True)


@dataclass
class SessionConfig:
    """Everything a query session's processor needs to know.

    The fields mirror (and subsume) the legacy keyword arguments of
    :class:`~repro.system.SelfOptimizingQueryProcessor`:

    =========================  =====================================
    legacy keyword             config field
    =========================  =====================================
    ``delta``                  :attr:`delta`
    ``test_every``             :attr:`test_every`
    ``max_depth``              :attr:`max_depth`
    ``transformations_factory``:attr:`transformations_factory`
    ``resilience``             :attr:`resilience`
    ``checkpoint_dir``         :attr:`checkpoint_dir`
    ``checkpoint_every``       :attr:`checkpoint_every`
    ``drift``                  :attr:`drift`
    ``experience``             :attr:`experience`
    =========================  =====================================
    """

    #: Per-form mistake budget (Theorem 1's ``δ``).
    delta: float = 0.05
    #: Run Equation 6 only every ``k``-th context.
    test_every: int = 1
    #: Graph-unfolding / SLD recursion bound (``None``: defaults).
    max_depth: Optional[int] = None
    #: Operator set factory (``None``: every sibling swap).
    transformations_factory: Optional[
        Callable[["InferenceGraph"], Sequence["Transformation"]]
    ] = None
    #: Retries/breakers/deadlines for the learned path (``None``: off).
    resilience: Optional[ResiliencePolicy] = None
    #: Directory for crash-safe per-form PIB checkpoints (``None``: off).
    checkpoint_dir: Optional[str] = None
    #: Checkpoint each form every N queries (and after every climb).
    checkpoint_every: int = 25
    #: Drift-aware learning configuration (``None``: stationary mode).
    drift: Optional[DriftConfig] = None
    #: Cross-session warm-start configuration (``None``: off — the
    #: byte-identical legacy path; see :class:`ExperienceConfig`).
    experience: Optional[ExperienceConfig] = None
    #: Fallback evaluation engine for forms learning does not apply to
    #: (one of :data:`repro.strategies.engines.ENGINE_NAMES`).
    engine: str = "topdown"

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be at least 1")
        if self.test_every < 1:
            raise ValueError("test_every must be at least 1")
        # Imported lazily: the registry lives above the serving layer.
        from ..strategies.engines import ENGINE_NAMES

        if self.engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of "
                + ", ".join(ENGINE_NAMES)
            )

    @classmethod
    def from_options(
        cls,
        *,
        delta: float = 0.05,
        test_every: int = 1,
        max_depth: Optional[int] = None,
        retries: int = 0,
        deadline: Optional[float] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 25,
        drift: bool = False,
        drift_delta: float = 0.05,
        drift_detector: str = "window",
        experience: bool = False,
        experience_path: Optional[str] = None,
        experience_neighbours: int = 3,
        engine: str = "topdown",
    ) -> "SessionConfig":
        """Build a config from scalar options (the CLI's flag set).

        This is the public home of what used to be the CLI-only
        ``_resilience_from_args`` / ``_drift_from_args`` helpers:
        ``retries``/``deadline`` turn into a
        :class:`~repro.resilience.policy.ResiliencePolicy` (either one
        being set enables the resilience layer), and the ``drift*``
        flags into a :class:`~repro.learning.drift.DriftConfig`.
        Library users get exactly the capability the shell had.
        """
        resilience = None
        if retries or deadline:
            resilience = ResiliencePolicy(
                retry=RetryPolicy(max_attempts=retries or 3),
                deadline=deadline,
            )
        drift_config = (
            DriftConfig(delta=drift_delta, detector=drift_detector)
            if drift
            else None
        )
        experience_config = None
        if experience or experience_path is not None:
            experience_config = ExperienceConfig(
                path=experience_path,
                enabled=True,
                neighbour_k=experience_neighbours,
            )
        return cls(
            delta=delta,
            test_every=test_every,
            max_depth=max_depth,
            resilience=resilience,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            drift=drift_config,
            experience=experience_config,
            engine=engine,
        )

    def with_overrides(self, **changes) -> "SessionConfig":
        """A copy with some fields replaced (``dataclasses.replace``)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class CacheConfig:
    """The serving layer's two-tier cache bounds (0 = tier disabled).

    Both tiers key on :attr:`repro.datalog.database.Database.cache_key`
    — the database's identity plus its mutation :attr:`generation` —
    so any fact added or removed invalidates every cached entry for
    that database *implicitly*: stale keys simply stop being looked up
    and age out of the LRU.
    """

    #: Ground-answer cache entries, keyed by (query, database generation).
    answer_capacity: int = 0
    #: Subgoal memo entries, keyed by (ground subgoal, database generation).
    subgoal_capacity: int = 0

    def __post_init__(self) -> None:
        if self.answer_capacity < 0:
            raise ValueError("answer_capacity cannot be negative")
        if self.subgoal_capacity < 0:
            raise ValueError("subgoal_capacity cannot be negative")

    @property
    def enabled(self) -> bool:
        return self.answer_capacity > 0 or self.subgoal_capacity > 0

    @classmethod
    def default_enabled(cls) -> "CacheConfig":
        """The capacities behind the CLI's bare ``--cache`` flag."""
        return cls(answer_capacity=4096, subgoal_capacity=16384)


@dataclass(frozen=True)
class AdmissionConfig:
    """Overload protection for a :class:`~repro.serving.server.QueryServer`.

    Everything is denominated in the simulation's deterministic units —
    token buckets refill per *arrival tick* and deadlines are measured
    on the per-form virtual cost clock — so admission decisions are a
    pure function of the request sequence: equal request streams shed
    and serve identically, regardless of threads or wall time.

    The three shed policies differ only in what happens when a request
    cannot be admitted (queue full, tenant over quota, or the server is
    SHEDDING):

    * ``reject-newest`` — the incoming request is rejected;
    * ``reject-over-quota`` — queue overflow evicts the queued request
      of the *most-queued* tenant instead (protecting in-quota tenants
      from a noisy neighbour); quota violations still reject;
    * ``degrade-to-cached`` — before rejecting, try to serve a stale
      :class:`~repro.serving.cache.AnswerCache` entry (any generation)
      as a *degraded* answer — availability over freshness.
    """

    #: Bounded per-form queue capacity (the backpressure bound).
    queue_capacity: int = 64
    #: Token-bucket refill per arrival tick (tokens a tenant earns each
    #: time *any* request arrives).  ``0`` disables rate limiting.
    tenant_rate: float = 0.0
    #: Token-bucket burst size (max accumulated tokens).
    tenant_burst: int = 8
    #: Max queued-but-unserved requests per tenant (``0``: unlimited).
    tenant_concurrency: int = 0
    #: What to do with the overflow (see class docstring).
    shed_policy: str = "reject-newest"
    #: Default per-request latency budget in cost units (wait + service
    #: on the form's virtual clock); ``None`` = no deadline.  Composes
    #: with the resilience layer's :class:`CostDeadline`, which bounds
    #: the *execution* alone.
    deadline: Optional[float] = None
    #: Queue-depth fraction at which health enters SHEDDING.
    shed_threshold: float = 0.8
    #: Queue-depth fraction at which health returns to HEALTHY.
    recover_threshold: float = 0.5

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1")
        if self.tenant_rate < 0:
            raise ValueError("tenant_rate cannot be negative")
        if self.tenant_burst < 1:
            raise ValueError("tenant_burst must be at least 1")
        if self.tenant_concurrency < 0:
            raise ValueError("tenant_concurrency cannot be negative")
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed_policy {self.shed_policy!r}; expected one "
                f"of {', '.join(SHED_POLICIES)}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if not 0.0 < self.recover_threshold <= self.shed_threshold <= 1.0:
            raise ValueError(
                "need 0 < recover_threshold <= shed_threshold <= 1"
            )


@dataclass(frozen=True)
class ServingConfig:
    """Concurrency shape of a :class:`~repro.serving.server.QueryServer`.

    Work is sharded by query form: each form owns its PIB learner,
    strategy, breakers, and drift epoch, so forms are independent and
    embarrassingly parallel, while *within* a form queries run
    serially under the form's lock — preserving exactly the paper's
    sequential Δ̃ accumulation and Equation 6 test order.  With
    ``workers == 1`` the server never touches a thread pool and is
    byte-identical to the plain sequential processor loop.

    ``admission`` (``None`` by default — admission control off, the
    byte-identical legacy path) bounds what a server will accept under
    overload; see :class:`AdmissionConfig`.
    """

    #: Worker threads for batch execution (1 = strictly sequential).
    workers: int = 1
    #: Overload protection (``None``: accept everything, legacy path).
    admission: Optional[AdmissionConfig] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be at least 1")

"""The serving layer: sessions, batched parallel execution, caching.

Public surface:

* :func:`~repro.serving.session.open_session` /
  :class:`~repro.serving.session.QuerySession` — the unified entry
  point (query, batches, learn-from-stream, report, checkpoint);
* :class:`~repro.serving.server.QueryServer` — form-sharded worker
  pool with the two-tier cache;
* :class:`~repro.serving.config.SessionConfig` /
  :class:`~repro.serving.config.CacheConfig` /
  :class:`~repro.serving.config.ServingConfig` /
  :class:`~repro.serving.config.AdmissionConfig` /
  :class:`~repro.serving.config.ExperienceConfig` — typed configuration;
* :class:`~repro.serving.cache.AnswerCache` /
  :class:`~repro.serving.cache.SubgoalMemo` — the cache tiers;
* :class:`~repro.serving.admission.Request` /
  :class:`~repro.serving.admission.RequestOutcome` /
  :class:`~repro.serving.admission.ServerHealth` — the admission
  control surface (bounded queues, quotas, shedding, health).

``server``/``session`` import :mod:`repro.system` (which itself uses
this package's config module), so they are loaded lazily via module
``__getattr__`` to keep the import graph acyclic.
"""

from .admission import Request, RequestOutcome, ServerHealth
from .cache import AnswerCache, CacheStats, SubgoalMemo
from .config import (
    AdmissionConfig,
    CacheConfig,
    ExperienceConfig,
    ServingConfig,
    SessionConfig,
)

__all__ = [
    "AdmissionConfig",
    "AnswerCache",
    "CacheConfig",
    "CacheStats",
    "ExperienceConfig",
    "QueryServer",
    "QuerySession",
    "Request",
    "RequestOutcome",
    "ServerHealth",
    "ServingConfig",
    "SessionConfig",
    "StreamReport",
    "SubgoalMemo",
    "open_session",
]

_LAZY = {
    "QueryServer": "server",
    "QuerySession": "session",
    "StreamReport": "session",
    "open_session": "session",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))

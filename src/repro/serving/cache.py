"""The serving layer's two-tier cache: answers and subgoal memos.

Query-Subquery Nets eliminate re-derivation by *tabling*: once a
ground subgoal's status is known, later queries reuse it instead of
re-proving.  The serving layer applies the same idea at two levels:

* :class:`SubgoalMemo` — a memo table over *database probes*.  The
  executor's unit operation is "does any fact match this retrieval
  pattern?"; the memo records the answer per (pattern, database
  generation) so that concurrent and repeated queries skip the
  physical probe.  The strategy's cost accounting is untouched — an
  attempted arc is billed its ``f(arc)`` either way — so learning
  statistics are identical with and without the memo.
* :class:`AnswerCache` — whole-query results.  A repeated ground
  query with an unchanged database is answered straight from cache
  (billed zero: no retrieval work happens) and **bypasses the
  learner**: a cache hit executes no strategy, so it contributes no
  sample to PIB's Δ̃ accumulators.

Coherence is by construction, not by invalidation walks: every key
embeds :attr:`repro.datalog.database.Database.cache_key` — the
database's identity plus its mutation ``generation`` counter — so the
moment a fact is added or removed, every previously cached entry for
that database stops matching and ages out of the LRU bound.

Both tiers are thread-safe (one lock per table) and report
hit/miss/eviction counters through :class:`CacheStats` and, when a
recorder is attached, through the observability layer's ``cache``
events and ``*_cache_*_total`` metrics.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import replace
from typing import Any, Dict, Hashable, Optional, Tuple, TYPE_CHECKING

from ..datalog.terms import Atom, Variable
from ..observability.recorder import NULL_RECORDER, Recorder

if TYPE_CHECKING:
    from ..datalog.database import Database
    from ..system import SystemAnswer

__all__ = ["CacheStats", "LRUTable", "SubgoalMemo", "AnswerCache"]

#: Distinguishes "cached as False/None" from "not cached".
_MISS = object()


class CacheStats:
    """Hit/miss/eviction counters for one cache tier."""

    __slots__ = ("hits", "misses", "evictions")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )


class LRUTable:
    """A bounded, thread-safe LRU map with observability counters.

    ``kind`` names the tier in recorder events (``"answer"`` /
    ``"subgoal"``).  Lookups and stores are O(1); eviction drops the
    least-recently-used entry once ``capacity`` is exceeded.
    """

    def __init__(
        self,
        capacity: int,
        kind: str,
        recorder: Recorder = NULL_RECORDER,
    ):
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.capacity = capacity
        self.kind = kind
        self.recorder = recorder
        self.stats = CacheStats()
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable) -> Any:
        """The cached value, or the module-private miss sentinel."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.stats.hits += 1
                value = self._data[key]
                hit = True
            else:
                self.stats.misses += 1
                value = _MISS
                hit = False
        if self.recorder.enabled:
            if hit:
                self.recorder.cache_hit(self.kind)
            else:
                self.recorder.cache_miss(self.kind)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        evicted = 0
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.stats.evictions += 1
                evicted += 1
        if evicted and self.recorder.enabled:
            for _ in range(evicted):
                self.recorder.cache_evict(self.kind)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()


def _pattern_key(pattern: Atom) -> Tuple:
    """A canonical key for a retrieval pattern's success status.

    Whether *any* fact matches a pattern depends on the constants at
    bound positions and on which variable positions must be *equal* —
    ``e2(X, X)`` only matches facts with identical arguments, so it
    must not share an entry with ``e2(X, Y)``.  Variables are therefore
    numbered by first occurrence (names stay wildcards, repetition
    structure does not).
    """
    numbering: Dict[str, int] = {}
    parts = []
    for arg in pattern.args:
        if isinstance(arg, Variable):
            index = numbering.setdefault(arg.name, len(numbering))
            parts.append(("var", index))
        else:
            parts.append(("const", arg))
    return (pattern.predicate, pattern.arity, tuple(parts))


class SubgoalMemo:
    """Tabling for ground-subgoal probes (the QSQN idea).

    Implements the memo seam
    :class:`~repro.graphs.contexts.MemoizedDatalogContext` consumes:
    :meth:`lookup` returns the remembered status of a retrieval
    pattern against a database *generation* (``None`` when unknown),
    :meth:`store` records a settled probe.  Faulted probes are never
    stored — only the storage layer's settled truth enters the table.
    """

    def __init__(self, capacity: int, recorder: Recorder = NULL_RECORDER):
        self._table = LRUTable(capacity, "subgoal", recorder)

    @property
    def stats(self) -> CacheStats:
        return self._table.stats

    def __len__(self) -> int:
        return len(self._table)

    @staticmethod
    def _key(pattern: Atom, database: "Database") -> Tuple:
        return (database.cache_key,) + _pattern_key(pattern)

    def lookup(self, pattern: Atom, database: "Database") -> Optional[bool]:
        value = self._table.get(self._key(pattern, database))
        return None if value is _MISS else value

    def store(
        self, pattern: Atom, database: "Database", status: bool
    ) -> None:
        self._table.put(self._key(pattern, database), bool(status))

    def snapshot(self) -> Dict[str, float]:
        return self._table.stats.snapshot()


class AnswerCache:
    """Whole-answer cache keyed by (query, database generation).

    Only *clean* answers are stored: degraded answers (deadline
    expiries, fault escapes, shed arcs) reflect infrastructure state
    at one instant, not the database, so replaying them would be
    wrong.  A stored answer is normalized to its served-from-cache
    form once — zero billed cost, ``cached=True`` — so hits share one
    immutable object.
    """

    def __init__(self, capacity: int, recorder: Recorder = NULL_RECORDER):
        self._table = LRUTable(capacity, "answer", recorder)
        #: Last clean answer per (database identity, query) — any
        #: generation.  Only the admission layer's ``degrade-to-cached``
        #: shed policy reads this, and only through
        #: :meth:`lookup_stale`; coherent lookups never see it.  Bounded
        #: by the same capacity as the main table.
        self._stale: "OrderedDict[Tuple, SystemAnswer]" = OrderedDict()
        self._stale_lock = threading.Lock()
        self.stale_hits = 0

    @property
    def stats(self) -> CacheStats:
        return self._table.stats

    def __len__(self) -> int:
        return len(self._table)

    @staticmethod
    def _key(query: Atom, database: "Database") -> Tuple:
        return (database.cache_key, str(query))

    @staticmethod
    def _stale_key(query: Atom, database: "Database") -> Tuple:
        return (database.cache_key[0], str(query))

    def lookup(
        self, query: Atom, database: "Database"
    ) -> Optional["SystemAnswer"]:
        value = self._table.get(self._key(query, database))
        return None if value is _MISS else value

    def store(
        self, query: Atom, database: "Database", answer: "SystemAnswer"
    ) -> bool:
        """Cache a clean answer; returns whether it was cacheable.

        Degraded answers are never cached.  *Partial* answers (a
        federated backend with dark shards) never enter the coherent
        table — a coherent hit must reflect the whole fact base — but
        they do refresh the stale table, where the preserved
        ``completeness`` verdict guarantees a later degrade-to-cached
        shed serves them flagged partial, never as complete.
        """
        if answer.degraded:
            return False
        normalized = replace(answer, cost=0.0, climbed=False, cached=True)
        complete = answer.completeness.complete
        if complete:
            self._table.put(self._key(query, database), normalized)
        with self._stale_lock:
            key = self._stale_key(query, database)
            existing = self._stale.get(key)
            # A partial answer never displaces a complete stale entry:
            # under shedding, an older complete answer beats a fresher
            # partial one.
            if complete or existing is None or existing.completeness.partial:
                self._stale[key] = normalized
                self._stale.move_to_end(key)
                while len(self._stale) > self._table.capacity:
                    self._stale.popitem(last=False)
        return complete

    def lookup_stale(
        self, query: Atom, database: "Database"
    ) -> Optional["SystemAnswer"]:
        """The last clean answer for this query against this database
        *object*, whatever its generation was — possibly stale.

        This is the ``degrade-to-cached`` shed policy's escape hatch:
        under overload, a stale answer explicitly marked degraded beats
        no answer.  Never consulted on the coherent path.
        """
        with self._stale_lock:
            answer = self._stale.get(self._stale_key(query, database))
            if answer is not None:
                self.stale_hits += 1
        return answer

    def snapshot(self) -> Dict[str, float]:
        stats = self._table.stats.snapshot()
        if self.stale_hits:
            stats["stale_hits"] = self.stale_hits
        return stats

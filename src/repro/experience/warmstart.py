"""Warm-starting a fresh learner from stored experience — priors only.

The whole contract of this module fits in one sentence: a warm start
may choose *where the hill-climb begins*, never *how it proceeds*.
:func:`warm_start` returns an initial strategy Θ₀; the learner's Δ̃
accumulators, ``total_tests`` counter, and the Theorem 1 δ_i schedule
all start cold, exactly as they would without experience.  Theorem 1
is indifferent to Θ₀ (the anytime guarantee holds from any legal
starting strategy), so correctness is untouched and the only effect
of a good prior is fewer samples spent climbing ground the previous
session already covered.

Strategy transfer works at two fidelities:

* **Exact fingerprint match** — the recorded retrieval-arc names all
  exist in the new graph, so the settled strategy is replayed
  verbatim via :meth:`Strategy.from_retrieval_order`.
* **Structural neighbour** — arc names differ, but the recorded
  *positional* ranks (declaration-order indices of the retrievals, in
  visit order) map onto the new graph's retrievals.  Indices past the
  new graph's retrieval count are dropped and unranked retrievals
  append in declaration order, so the result is always a legal
  permutation.

Either way the result is a legal path-structured strategy for the new
graph — :meth:`Strategy.from_retrieval_order` validates that — or the
warm start is skipped entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..graphs.inference_graph import InferenceGraph
from ..strategies.strategy import Strategy
from .fingerprint import FormProfile
from .store import ExperienceRecord, ExperienceStore, Neighbour

__all__ = [
    "WarmStart",
    "warm_start",
    "record_from_learner",
    "pao_aiming",
]


@dataclass(frozen=True)
class WarmStart:
    """A prior the store produced for one form: Θ₀ plus provenance."""

    strategy: Strategy
    #: Fingerprint of the contributing record (the neighbour, not
    #: necessarily this form).
    source_fingerprint: str
    source_form: str
    similarity: float
    exact: bool

    @property
    def distance(self) -> float:
        """``1 - similarity``; what the observability layer histograms."""
        return max(0.0, 1.0 - self.similarity)


def _strategy_from_record(
    graph: InferenceGraph, record: ExperienceRecord, exact: bool
) -> Optional[Strategy]:
    retrievals = graph.retrieval_arcs()
    if not retrievals:
        return None
    names = [arc.name for arc in retrievals]
    if exact and set(record.retrieval_names) == set(names):
        order = list(record.retrieval_names)
    else:
        order = [
            names[rank]
            for rank in record.retrieval_ranks
            if rank < len(names)
        ]
        seen = set(order)
        order.extend(name for name in names if name not in seen)
    try:
        return Strategy.from_retrieval_order(graph, order)
    except ValueError:
        return None


def warm_start(
    store: ExperienceStore,
    profile: FormProfile,
    graph: InferenceGraph,
    k: int = 3,
    floor: float = 0.0,
    pattern_weight: float = 0.7,
    similarity_weight: float = 0.3,
) -> Optional[WarmStart]:
    """The best applicable prior for ``profile``, or ``None``.

    Neighbours are tried best-first (the store's ordering is
    deterministic); the first whose recorded strategy maps onto
    ``graph`` as a legal path-structured strategy wins.  Returning
    ``None`` means "start cold" — never an error.
    """
    for neighbour in store.nearest(
        profile,
        k=k,
        floor=floor,
        pattern_weight=pattern_weight,
        similarity_weight=similarity_weight,
    ):
        strategy = _strategy_from_record(
            graph, neighbour.record, exact=neighbour.exact
        )
        if strategy is not None:
            return WarmStart(
                strategy=strategy,
                source_fingerprint=neighbour.record.fingerprint,
                source_form=neighbour.record.form,
                similarity=neighbour.score,
                exact=neighbour.exact,
            )
    return None


def record_from_learner(
    profile: FormProfile,
    form: str,
    learner,
    regime: int = 0,
) -> Optional[ExperienceRecord]:
    """Distil a finished learner's settled outcome into a record.

    ``learner`` is a :class:`~repro.learning.pib.PIB` (duck-typed so
    drift-aware subclasses and test doubles work).  A learner that
    never processed a context has nothing to teach and yields
    ``None``.
    """
    contexts = getattr(learner, "contexts_processed", 0)
    if contexts <= 0:
        return None
    strategy = learner.strategy
    graph = learner.graph
    declaration = {
        arc.name: index
        for index, arc in enumerate(graph.retrieval_arcs())
    }
    visit = strategy.retrieval_order()
    if not visit or any(arc.name not in declaration for arc in visit):
        return None
    delta_tilde = sum(
        climb.estimated_gain for climb in getattr(learner, "history", ())
    )
    return ExperienceRecord(
        fingerprint=profile.fingerprint,
        form=form,
        regime=regime,
        retrieval_names=tuple(arc.name for arc in visit),
        retrieval_ranks=tuple(declaration[arc.name] for arc in visit),
        delta_tilde=delta_tilde,
        sample_count=contexts,
        profile=profile,
    )


def pao_aiming(
    store: ExperienceStore,
    profile: FormProfile,
    graph: InferenceGraph,
    k: int = 3,
    floor: float = 0.0,
    pattern_weight: float = 0.7,
    similarity_weight: float = 0.3,
) -> Optional[Strategy]:
    """A warm ``aiming`` strategy for PAO (Theorems 2/3).

    PAO's ``aiming`` parameter is already a pure prior — it biases
    which candidate the optimiser examines first without affecting
    what the sample complexity bounds promise — so experience plugs in
    directly: aim at the nearest neighbour's settled winner.
    """
    warm = warm_start(
        store,
        profile,
        graph,
        k=k,
        floor=floor,
        pattern_weight=pattern_weight,
        similarity_weight=similarity_weight,
    )
    return warm.strategy if warm is not None else None


def neighbour_summary(neighbour: Neighbour) -> str:
    """One human line for CLI/report output."""
    marker = "exact" if neighbour.exact else "similar"
    return (
        f"{neighbour.record.form} "
        f"[{marker}, score={neighbour.score:.3f}, "
        f"samples={neighbour.record.sample_count}]"
    )

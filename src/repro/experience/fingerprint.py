"""Structural fingerprints for query forms and their inference graphs.

A *form fingerprint* identifies what the learner actually learns
about: not the query text, but the shape of the search space — the
predicate/arity skeleton of the goals, the query form's adornment
(binding) pattern, and the rule-dependency shape of the compiled
inference graph (which reductions hang under which goals, where the
retrievals sit).  Two sessions that compile structurally identical
graphs for ``instructor^(b)`` get the same fingerprint, whatever the
constants in the concrete queries were — which is exactly the unit
across which a learned strategy preference transfers.

Everything here is a pure function of the graph's declared structure.
Iteration uses declaration order and every unordered collection is
sorted before hashing, so fingerprints and similarity rankings are
stable across processes and ``PYTHONHASHSEED`` values.

Similarity between two profiles follows the blend that querytorque's
knowledge engine uses to rank prior outcomes: a *pattern* component
(does the rule-dependency skeleton match?) weighted 0.7 against a
*feature* component (how close are the coarse structural statistics?)
weighted 0.3.  The weights live in
:class:`~repro.serving.config.ExperienceConfig` and are only defaults
here.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..datalog.rules import QueryForm
from ..datalog.terms import Atom
from ..graphs.inference_graph import Arc, InferenceGraph, Node

__all__ = [
    "FormProfile",
    "form_profile",
    "form_fingerprint",
    "similarity",
]

#: querytorque's hybrid ranking blend: 0.7 x pattern + 0.3 x similarity.
DEFAULT_PATTERN_WEIGHT = 0.7
DEFAULT_SIMILARITY_WEIGHT = 0.3


def _goal_signature(goal: Optional[Atom]) -> str:
    """``predicate/arity`` of a goal literal, ``-`` for synthetic arcs."""
    if goal is None:
        return "-"
    return f"{goal.predicate}/{goal.arity}"


def _arc_label(arc: Arc) -> str:
    """The arc's structural role, independent of its generated name."""
    parts = [arc.kind.value, _goal_signature(arc.goal)]
    if arc.blockable and arc.kind.value != "retrieval":
        parts.append("blockable")
    return ":".join(parts)


def _shape(graph: InferenceGraph, node: Node) -> str:
    """Canonical serialization of the subtree under ``node``.

    Children keep declaration order — sibling order is part of the
    graph's identity (it fixes the default strategy) — and each arc is
    rendered by its structural role, never its generated name, so the
    shape matches across sessions that rebuilt the graph from the same
    rules.
    """
    rendered = [
        f"{_arc_label(arc)}({_shape(graph, arc.target)})"
        for arc in graph.children(node)
    ]
    return ",".join(rendered)


@dataclass(frozen=True)
class FormProfile:
    """Everything the experience store keys and ranks a form by.

    ``fingerprint`` is a SHA-256 over the canonical serialization of
    the other structural fields; two profiles compare equal exactly
    when their graphs are structurally indistinguishable to the
    learner.  ``labels`` and ``features`` survive serialization so
    *similarity* can be computed against stored records without
    rebuilding their graphs.
    """

    fingerprint: str
    #: Root predicate (the query form's relation, or the root node's
    #: name for synthetic graphs).
    predicate: str
    arity: int
    #: The form's adornment (binding) pattern over ``{b, f}``.
    pattern: str
    #: The rule-dependency skeleton (see :func:`_shape`).
    shape: str
    #: Sorted multiset of arc structural labels.
    labels: Tuple[str, ...]
    #: Coarse structural statistics: (arcs, retrievals, reductions,
    #: depth, max branching, blockable reductions, total cost).
    features: Tuple[float, ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "fingerprint": self.fingerprint,
            "predicate": self.predicate,
            "arity": self.arity,
            "pattern": self.pattern,
            "shape": self.shape,
            "labels": list(self.labels),
            "features": list(self.features),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FormProfile":
        return cls(
            fingerprint=str(payload["fingerprint"]),
            predicate=str(payload["predicate"]),
            arity=int(payload["arity"]),
            pattern=str(payload["pattern"]),
            shape=str(payload["shape"]),
            labels=tuple(str(label) for label in payload["labels"]),
            features=tuple(float(x) for x in payload["features"]),
        )


def _features(graph: InferenceGraph) -> Tuple[float, ...]:
    arcs = graph.arcs()
    retrievals = graph.retrieval_arcs()
    reductions = [a for a in arcs if a.kind.value == "reduction"]
    depth = max((len(graph.ancestors(a)) + 1 for a in arcs), default=0)
    branching = max(
        (len(graph.children(node)) for node in graph.nodes()), default=0
    )
    blockable_reductions = sum(1 for a in reductions if a.blockable)
    return (
        float(len(arcs)),
        float(len(retrievals)),
        float(len(reductions)),
        float(depth),
        float(branching),
        float(blockable_reductions),
        float(graph.total_cost),
    )


def form_profile(
    graph: InferenceGraph, form: Optional[QueryForm] = None
) -> FormProfile:
    """Profile a compiled form (``form=None`` for synthetic graphs)."""
    if form is not None:
        predicate, arity, pattern = form.predicate, form.arity, form.pattern
    else:
        predicate = graph.root.name
        arity = 0
        pattern = ""
    shape = _shape(graph, graph.root)
    labels = tuple(sorted(_arc_label(arc) for arc in graph.arcs()))
    features = _features(graph)
    canonical = json.dumps(
        {
            "predicate": predicate,
            "arity": arity,
            "pattern": pattern,
            "shape": shape,
            "labels": list(labels),
            "features": list(features),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    fingerprint = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    return FormProfile(
        fingerprint=fingerprint,
        predicate=predicate,
        arity=arity,
        pattern=pattern,
        shape=shape,
        labels=labels,
        features=features,
    )


def form_fingerprint(
    graph: InferenceGraph, form: Optional[QueryForm] = None
) -> str:
    """Shorthand for ``form_profile(graph, form).fingerprint``."""
    return form_profile(graph, form).fingerprint


def _dice(left: Tuple[str, ...], right: Tuple[str, ...]) -> float:
    """Sørensen–Dice coefficient over two sorted label multisets."""
    if not left and not right:
        return 1.0
    overlap = 0
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i] == right[j]:
            overlap += 1
            i += 1
            j += 1
        elif left[i] < right[j]:
            i += 1
        else:
            j += 1
    return 2.0 * overlap / (len(left) + len(right))


def _feature_closeness(
    left: Tuple[float, ...], right: Tuple[float, ...]
) -> float:
    """Mean per-feature min/max ratio (1.0 when identical)."""
    if len(left) != len(right) or not left:
        return 0.0
    total = 0.0
    for x, y in zip(left, right):
        lo, hi = min(x, y), max(x, y)
        total += 1.0 if hi == 0.0 else (0.0 if lo < 0.0 else lo / hi)
    return total / len(left)


def similarity(
    left: FormProfile,
    right: FormProfile,
    pattern_weight: float = DEFAULT_PATTERN_WEIGHT,
    similarity_weight: float = DEFAULT_SIMILARITY_WEIGHT,
) -> float:
    """The blended structural similarity of two profiles in [0, 1].

    The *pattern* component is 1.0 on an exact skeleton match
    (identical shape and adornment) and degrades to the Dice overlap
    of the arc-label multisets otherwise; the *feature* component is
    the closeness of the coarse structural statistics.  The blend is
    querytorque's ``0.7 * pattern + 0.3 * similarity`` by default.
    """
    if left.fingerprint == right.fingerprint:
        return 1.0
    if left.shape == right.shape and left.pattern == right.pattern:
        pattern_component = 1.0
    else:
        pattern_component = _dice(left.labels, right.labels)
        if left.pattern != right.pattern:
            pattern_component *= 0.9
    feature_component = _feature_closeness(left.features, right.features)
    total = pattern_weight + similarity_weight
    if total <= 0.0:
        return 0.0
    return (
        pattern_weight * pattern_component
        + similarity_weight * feature_component
    ) / total

"""Cross-session experience: fingerprint forms, store settled
outcomes, warm-start new learners from their nearest structural
neighbours — as priors only (Theorem 1's per-run schedule is never
touched)."""

from .fingerprint import (
    FormProfile,
    form_fingerprint,
    form_profile,
    similarity,
)
from .store import (
    EXPERIENCE_FORMAT,
    EXPERIENCE_VERSION,
    ExperienceRecord,
    ExperienceStore,
    Neighbour,
    migrate_experience_payload,
)
from .warmstart import (
    WarmStart,
    neighbour_summary,
    pao_aiming,
    record_from_learner,
    warm_start,
)

__all__ = [
    "EXPERIENCE_FORMAT",
    "EXPERIENCE_VERSION",
    "ExperienceRecord",
    "ExperienceStore",
    "FormProfile",
    "Neighbour",
    "WarmStart",
    "form_fingerprint",
    "form_profile",
    "migrate_experience_payload",
    "neighbour_summary",
    "pao_aiming",
    "record_from_learner",
    "similarity",
    "warm_start",
]

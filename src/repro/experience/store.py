"""Persistent cross-session experience store for settled strategy outcomes.

The store is the knowledge layer the ROADMAP calls "a database that
becomes smarter every time": at session close each form's learner
contributes one :class:`ExperienceRecord` — *which* strategy it
settled on, under *which* drift regime (epoch), with *how much*
evidence — keyed by the form's structural fingerprint.  A later
session facing a structurally similar form ranks these records by
blended similarity and warm-starts its learner from the best match.

Records are priors only.  Nothing in here feeds the Theorem 1
schedule: the store hands a fresh learner its *initial* strategy and
nothing else, so every per-run guarantee (and the byte-determinism
contract when the store is disabled) is untouched.

Persistence mirrors the PIB checkpoint discipline in
:mod:`repro.persistence`: a versioned JSON payload with a SHA-256
checksum, written via temp-file + fsync + ``os.replace`` with a
``.bak`` rotation, loaded with backup fallback, and *never* raising on
open — a corrupt store degrades to an empty one (flagged via
``recovered``) rather than taking the session down.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import CheckpointError
from ..persistence import backup_path, payload_checksum
from .fingerprint import (
    DEFAULT_PATTERN_WEIGHT,
    DEFAULT_SIMILARITY_WEIGHT,
    FormProfile,
    similarity,
)

__all__ = [
    "EXPERIENCE_FORMAT",
    "EXPERIENCE_VERSION",
    "ExperienceRecord",
    "ExperienceStore",
    "Neighbour",
    "migrate_experience_payload",
]

EXPERIENCE_FORMAT = "repro-experience"
EXPERIENCE_VERSION = 1


@dataclass(frozen=True)
class ExperienceRecord:
    """One settled ``(form, regime, strategy, Δ̃, samples)`` outcome.

    ``retrieval_ranks`` stores the winning strategy *positionally*:
    the i-th entry is the declaration-order index of the retrieval arc
    visited i-th.  Positions — unlike generated arc names — survive a
    graph rebuild and transfer to structural neighbours whose arcs
    have different names but the same skeleton.  ``retrieval_names``
    keeps the concrete names for exact-fingerprint matches and for
    human inspection.
    """

    fingerprint: str
    form: str
    #: Drift epoch of the contributing learner; a regime reset (epoch
    #: bump) versions the experience, and higher regimes supersede
    #: lower ones for the same fingerprint.
    regime: int
    retrieval_names: Tuple[str, ...]
    retrieval_ranks: Tuple[int, ...]
    #: Accumulated estimated gain over the contributing run's climbs.
    delta_tilde: float
    #: Contexts the contributing learner processed (evidence weight).
    sample_count: int
    profile: FormProfile

    def __post_init__(self) -> None:
        if self.regime < 0:
            raise ValueError("regime must be >= 0")
        if self.sample_count < 0:
            raise ValueError("sample_count must be >= 0")
        if sorted(self.retrieval_ranks) != list(
            range(len(self.retrieval_ranks))
        ):
            raise ValueError(
                "retrieval_ranks must be a permutation of 0..n-1"
            )
        if len(self.retrieval_names) != len(self.retrieval_ranks):
            raise ValueError(
                "retrieval_names and retrieval_ranks must align"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "fingerprint": self.fingerprint,
            "form": self.form,
            "regime": self.regime,
            "retrieval_names": list(self.retrieval_names),
            "retrieval_ranks": list(self.retrieval_ranks),
            "delta_tilde": self.delta_tilde,
            "sample_count": self.sample_count,
            "profile": self.profile.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ExperienceRecord":
        return cls(
            fingerprint=str(payload["fingerprint"]),
            form=str(payload["form"]),
            regime=int(payload["regime"]),
            retrieval_names=tuple(
                str(n) for n in payload["retrieval_names"]
            ),
            retrieval_ranks=tuple(
                int(r) for r in payload["retrieval_ranks"]
            ),
            delta_tilde=float(payload["delta_tilde"]),
            sample_count=int(payload["sample_count"]),
            profile=FormProfile.from_dict(payload["profile"]),
        )


@dataclass(frozen=True)
class Neighbour:
    """A ranked store hit: the record plus its blended similarity."""

    record: ExperienceRecord
    score: float

    @property
    def exact(self) -> bool:
        return self.score >= 1.0

    @property
    def distance(self) -> float:
        return max(0.0, 1.0 - self.score)


def migrate_experience_payload(
    payload: Dict[str, object],
) -> Dict[str, object]:
    """Upgrade an older on-disk experience payload to the current
    version.  v1 is current, so this is the migration *stub* the
    format contract requires: known versions pass through, anything
    else raises :class:`~repro.errors.CheckpointError` rather than
    being misread."""
    if payload.get("format") != EXPERIENCE_FORMAT:
        raise CheckpointError(
            f"not an experience store (format={payload.get('format')!r})"
        )
    version = payload.get("version")
    if version == EXPERIENCE_VERSION:
        return payload
    raise CheckpointError(
        f"unsupported experience store version {version!r} "
        f"(this build reads <= {EXPERIENCE_VERSION})"
    )


def _supersedes(new: ExperienceRecord, old: ExperienceRecord) -> bool:
    """Whether ``new`` replaces ``old`` for the same fingerprint.

    Later drift regimes always win — a regime reset obsoletes what was
    learned under the old cost distribution — and within a regime more
    evidence wins.
    """
    if new.regime != old.regime:
        return new.regime > old.regime
    return new.sample_count >= old.sample_count


class ExperienceStore:
    """In-memory record set with crash-safe JSON persistence.

    ``path=None`` gives a memory-only store (useful for tests and the
    verify profile).  :meth:`open` never raises: a missing file is an
    empty store, a torn/corrupt file falls back to its ``.bak``, and
    if both are unusable the store starts empty with ``recovered``
    set so callers can surface the incident.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        records: Optional[Dict[str, ExperienceRecord]] = None,
        recovered: bool = False,
    ) -> None:
        self.path = path
        self._records: Dict[str, ExperienceRecord] = dict(records or {})
        #: True when :meth:`open` had to discard a corrupt store.
        self.recovered = recovered
        #: Records contributed since the last :meth:`save`.
        self.pending_writes = 0

    # ------------------------------------------------------------------
    # Record set
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> List[ExperienceRecord]:
        """All records, ordered by fingerprint (hash-seed stable)."""
        return [
            self._records[key] for key in sorted(self._records)
        ]

    def get(self, fingerprint: str) -> Optional[ExperienceRecord]:
        return self._records.get(fingerprint)

    def add(self, record: ExperienceRecord) -> bool:
        """Insert ``record``; returns True if it (re)placed the entry.

        For an existing fingerprint the supersession rule applies:
        higher regime wins, then greater-or-equal evidence.
        """
        current = self._records.get(record.fingerprint)
        if current == record:
            return False
        if current is not None and not _supersedes(record, current):
            return False
        self._records[record.fingerprint] = record
        self.pending_writes += 1
        return True

    def nearest(
        self,
        profile: FormProfile,
        k: int = 3,
        floor: float = 0.0,
        pattern_weight: float = DEFAULT_PATTERN_WEIGHT,
        similarity_weight: float = DEFAULT_SIMILARITY_WEIGHT,
    ) -> List[Neighbour]:
        """The ``k`` best records for ``profile`` above ``floor``.

        Ordering is ``(-score, fingerprint)`` — fully determined by
        the record set, never by dict iteration order — so rankings
        are identical across processes and ``PYTHONHASHSEED`` values.
        """
        scored = [
            Neighbour(
                record=record,
                score=similarity(
                    profile,
                    record.profile,
                    pattern_weight=pattern_weight,
                    similarity_weight=similarity_weight,
                ),
            )
            for record in self._records.values()
        ]
        eligible = [n for n in scored if n.score >= floor]
        eligible.sort(key=lambda n: (-n.score, n.record.fingerprint))
        return eligible[: max(0, k)]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "format": EXPERIENCE_FORMAT,
            "version": EXPERIENCE_VERSION,
            "records": [record.to_dict() for record in self.records()],
        }
        payload["checksum"] = payload_checksum(payload)
        return payload

    @classmethod
    def from_payload(
        cls,
        payload: Dict[str, object],
        path: Optional[str] = None,
    ) -> "ExperienceStore":
        payload = migrate_experience_payload(payload)
        records: Dict[str, ExperienceRecord] = {}
        for raw in payload.get("records", []):
            record = ExperienceRecord.from_dict(raw)
            records[record.fingerprint] = record
        return cls(path=path, records=records)

    def save(self, path: Optional[str] = None) -> Optional[str]:
        """Atomically persist the store (same contract as PIB saves).

        Returns the path written, or ``None`` for a memory-only store.
        """
        target = path or self.path
        if target is None:
            self.pending_writes = 0
            return None
        directory = os.path.dirname(os.path.abspath(target))
        os.makedirs(directory, exist_ok=True)
        payload = self.to_payload()
        tmp_path = target + ".tmp"
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        if os.path.exists(target):
            os.replace(target, backup_path(target))
        os.replace(tmp_path, target)
        try:
            dir_fd = os.open(directory, os.O_RDONLY)
        except OSError:
            self.pending_writes = 0
            return target  # e.g. Windows: directories are not fsyncable
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
        self.pending_writes = 0
        return target

    @staticmethod
    def _load_payload(path: str) -> Dict[str, object]:
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError as error:
            raise CheckpointError(
                "experience store not found", path
            ) from error
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as error:
            raise CheckpointError(
                f"experience store is not readable JSON: {error}", path
            ) from error
        if not isinstance(payload, dict):
            raise CheckpointError(
                "experience store is not a JSON object", path
            )
        recorded = payload.get("checksum")
        if recorded is not None and recorded != payload_checksum(payload):
            raise CheckpointError(
                "experience store checksum mismatch", path
            )
        return payload

    @classmethod
    def open(cls, path: Optional[str]) -> "ExperienceStore":
        """Open ``path``, falling back to ``.bak``, then to empty.

        Warm-starting is an optimisation, so an unreadable store must
        never abort a session: both-files-corrupt degrades to an empty
        store with ``recovered=True`` (the next :meth:`save` rewrites
        a clean file).
        """
        if path is None:
            return cls(path=None)
        if not os.path.exists(path) and not os.path.exists(
            backup_path(path)
        ):
            return cls(path=path)
        try:
            return cls.from_payload(cls._load_payload(path), path=path)
        except CheckpointError:
            pass
        try:
            return cls.from_payload(
                cls._load_payload(backup_path(path)), path=path
            )
        except CheckpointError:
            return cls(path=path, recovered=True)

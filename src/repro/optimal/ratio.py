"""Block statistics for the ratio-merge optimizer behind ``Υ_AOT``.

The optimal satisficing order of independent alternatives follows the
classic Simon–Kadane ratio rule: between two independent blocks ``A``
and ``B``,

    cost(A then B) = E[A] + (1 − P_A)·E[B]
    cost(B then A) = E[B] + (1 − P_B)·E[A]

so ``A`` should precede ``B`` iff ``P_A / E[A] > P_B / E[B]``, where
``E`` is the block's expected *charged* cost (execution stops inside
the block at the first success) and ``P`` its probability of producing
a success, both conditioned on the block being entered.

A :class:`Block` here is an ancestor-closed, connected set of arcs of a
tree-shaped inference graph, kept in a legal execution order.  Blocks
are what the merge algorithm of :mod:`repro.optimal.upsilon`
concatenates; this module computes their ``(E, P)`` statistics under
independent arc success probabilities, handling internal blockable
arcs (a blocked reduction silently prunes the block arcs below it).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from ..graphs.inference_graph import Arc, ArcKind, InferenceGraph

__all__ = ["Block", "block_statistics"]


def block_statistics(
    graph: InferenceGraph, arcs: Sequence[Arc], probs: Mapping[str, float]
) -> Tuple[float, float]:
    """``(E, P)`` of executing ``arcs`` in order, given the block is entered.

    ``arcs`` must be ancestor-closed up to the block's entry node (the
    source of its first arc): every arc's in-block ancestors appear
    earlier in the sequence.  The computation mirrors
    :func:`repro.strategies.expected_cost.attempt_probabilities`,
    restricted to the block:

    * an arc is attempted iff its in-block ancestors are unblocked and
      no earlier in-block retrieval had a fully unblocked in-block
      path;
    * ``E`` charges each arc its cost times its attempt probability;
    * ``P`` sums, over the block's retrievals, the (disjoint) events
      "attempted and unblocked".
    """
    member = {arc.name for arc in arcs}
    position = {arc.name: index for index, arc in enumerate(arcs)}

    def probability(arc: Arc) -> float:
        return probs[arc.name] if arc.blockable else 1.0

    # Path products within the block, memoized bottom-up over ancestors.
    reach: Dict[str, float] = {}
    for arc in arcs:
        parent = graph.parent_arc(arc)
        if parent is None or parent.name not in member:
            reach[arc.name] = 1.0
        else:
            reach[arc.name] = reach[parent.name] * probability(parent)

    expected = 0.0
    success = 0.0
    # Retrievals earlier in the block, with their unblocked-path
    # probabilities *relative to the conditioning arc's ancestors*.
    earlier_retrievals: List[Arc] = []

    def no_success_before(arc: Arc) -> float:
        """Pr[no earlier in-block retrieval succeeded | anc(arc) unblocked].

        Correlation through shared ancestors is handled by grouping the
        earlier retrievals by the deepest ancestor they share with
        ``arc`` — given the conditioning, the groups are independent,
        and within a group retrievals sharing deeper structure are
        handled recursively by the tree factor.
        """
        forced = set()
        current = graph.parent_arc(arc)
        while current is not None and current.name in member:
            forced.add(current.name)
            current = graph.parent_arc(current)

        def factor(node_name: str) -> float:
            value = 1.0
            for child in graph.children(graph.node(node_name)):
                if child.name not in member:
                    continue
                p = 1.0 if child.name in forced else probability(child)
                if child.kind is ArcKind.RETRIEVAL:
                    if child.name in before:
                        value *= 1.0 - p
                else:
                    inner = factor(child.target.name)
                    if inner < 1.0:
                        value *= (1.0 - p) + p * inner
            return value

        before = {r.name for r in earlier_retrievals}
        entry = arcs[0].source.name
        return factor(entry)

    for arc in arcs:
        attempt = reach[arc.name] * no_success_before(arc)
        expected += arc.expected_attempt_cost(probability(arc)) * attempt
        if arc.kind is ArcKind.RETRIEVAL:
            success += attempt * probability(arc)
            earlier_retrievals.append(arc)

    return expected, success


class Block:
    """A mergeable unit of the ``Υ_AOT`` algorithm.

    Carries its arc sequence and cached ``(E, P)`` statistics; the
    *ratio* ``P/E`` drives the merge order.  ``E`` is always positive
    (arc costs are positive and the first arc is attempted with
    probability 1 given entry).
    """

    __slots__ = ("graph", "arcs", "expected_cost", "success_probability")

    def __init__(
        self,
        graph: InferenceGraph,
        arcs: Sequence[Arc],
        probs: Mapping[str, float],
    ):
        if not arcs:
            raise ValueError("a block needs at least one arc")
        self.graph = graph
        self.arcs: List[Arc] = list(arcs)
        self.expected_cost, self.success_probability = block_statistics(
            graph, self.arcs, probs
        )

    @property
    def ratio(self) -> float:
        """The Simon–Kadane ordering key ``P/E`` (larger goes earlier)."""
        return self.success_probability / self.expected_cost

    @property
    def top_arc(self) -> Arc:
        """The block's entry arc (its first in execution order)."""
        return self.arcs[0]

    def merged_with(self, child: "Block", probs: Mapping[str, float]) -> "Block":
        """A new block running ``self`` then ``child``.

        ``child``'s entry arc must hang below one of ``self``'s arcs so
        the concatenation stays ancestor-closed.
        """
        parent_arc = self.graph.parent_arc(child.top_arc)
        if parent_arc is None or parent_arc.name not in {
            arc.name for arc in self.arcs
        }:
            raise ValueError(
                f"block at {child.top_arc.name!r} does not hang below the "
                "target block"
            )
        return Block(self.graph, self.arcs + child.arcs, probs)

    def __repr__(self) -> str:
        names = " ".join(arc.name for arc in self.arcs)
        return (
            f"Block⟨{names}⟩(E={self.expected_cost:.4g}, "
            f"P={self.success_probability:.4g})"
        )

"""``Υ̃``: a polynomial-time near-optimal ordering heuristic.

Section 4 notes that "there are polynomial time ``Υ̃_G`` functions that
can produce near optimal strategies for some classes G for which
``Υ_G`` is intractable" ([GO91, Appendix B]).  This module provides the
natural member of that family: order the retrievals greedily by their
*path ratio*

    q(r) / c(r),   q(r) = Π_{a ∈ Π(r) ∪ {r}} p(a),
                   c(r) = Σ_{a ∈ Π(r) ∪ {r}} f(a),

i.e. the probability the whole root path to ``r`` is unblocked per unit
of path cost, ignoring prefix sharing between paths.  On trees this
coincides with ``Υ_AOT`` whenever paths do not share arcs (e.g. the
two-path ``G_A``) and stays within a small factor elsewhere; it runs in
``O(n log n)``.
"""

from __future__ import annotations

from typing import List, Mapping, Tuple

from ..graphs.inference_graph import Arc, InferenceGraph
from ..strategies.strategy import Strategy

__all__ = ["upsilon_greedy", "path_ratio"]


def path_ratio(
    graph: InferenceGraph, retrieval: Arc, probs: Mapping[str, float]
) -> float:
    """The greedy ordering key of one retrieval's root path."""
    probability = 1.0
    cost = 0.0
    for arc in graph.ancestors(retrieval) + [retrieval]:
        if arc.blockable:
            probability *= probs[arc.name]
        cost += arc.cost
    return probability / cost


def upsilon_greedy(graph: InferenceGraph, probs: Mapping[str, float]) -> Strategy:
    """Near-optimal strategy by descending path ratio (deterministic ties)."""
    declaration = {arc.name: index for index, arc in enumerate(graph.arcs())}
    ranked: List[Tuple[float, int, Arc]] = sorted(
        (
            (-path_ratio(graph, retrieval, probs),
             declaration[retrieval.name],
             retrieval)
            for retrieval in graph.retrieval_arcs()
        ),
    )
    return Strategy.from_retrieval_order(graph, [arc for _, _, arc in ranked])

"""Optimal-strategy algorithms: ``Υ_AOT``, brute force, ``Υ̃``, [Smi89].

Section 4's ``Υ_G`` functions: the exact ratio-merge optimizer for
tree-shaped graphs, the brute-force ground truth for small graphs (the
general problem is NP-hard, [Gre91]), a polynomial approximation, and
the fact-distribution heuristic baseline of [Smi89].
"""

from .ratio import Block, block_statistics
from .upsilon import upsilon_aot, upsilon_ot
from .brute_force import (
    optimal_strategy_brute_force,
    optimal_strategy_explicit,
    path_structured_suffices,
)
from .approximate import path_ratio, upsilon_greedy
from .smith import smith_estimates, smith_strategy

__all__ = [
    "Block",
    "block_statistics",
    "upsilon_aot",
    "upsilon_ot",
    "optimal_strategy_brute_force",
    "optimal_strategy_explicit",
    "path_structured_suffices",
    "path_ratio",
    "upsilon_greedy",
    "smith_estimates",
    "smith_strategy",
]

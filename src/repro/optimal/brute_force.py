"""Brute-force optimal strategies: ground truth for small graphs.

Finding the optimal strategy of a *general* inference graph is NP-hard
([Gre91]); on the small graphs used for validation we can simply try
everything.  :func:`optimal_strategy_brute_force` enumerates the
path-structured strategies (one per retrieval permutation), which is
sufficient: delaying an arc until just before the first retrieval
below it weakly decreases the probability the arc is ever paid for, so
some optimal strategy is always path-structured
(:func:`path_structured_suffices` verifies this claim exhaustively on
a given graph by also scanning every legal arc sequence).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Tuple

from ..graphs.contexts import Context
from ..strategies.enumeration import (
    all_legal_strategies,
    all_path_structured_strategies,
)
from ..strategies.expected_cost import expected_cost_exact, expected_cost_explicit
from ..strategies.strategy import Strategy
from ..graphs.inference_graph import InferenceGraph

__all__ = [
    "optimal_strategy_brute_force",
    "optimal_strategy_explicit",
    "path_structured_suffices",
]


def optimal_strategy_brute_force(
    graph: InferenceGraph,
    probs: Mapping[str, float],
    max_retrievals: int = 8,
) -> Tuple[Strategy, float]:
    """``(Θ_opt, C[Θ_opt])`` by scanning all path-structured strategies."""
    best: Optional[Tuple[float, Strategy]] = None
    for strategy in all_path_structured_strategies(graph, max_retrievals):
        cost = expected_cost_exact(strategy, probs)
        if best is None or cost < best[0] - 1e-12:
            best = (cost, strategy)
    assert best is not None  # graphs always have at least one retrieval
    return best[1], best[0]


def optimal_strategy_explicit(
    graph: InferenceGraph,
    weighted_contexts: Iterable[Tuple[float, Context]],
    max_retrievals: int = 8,
) -> Tuple[Strategy, float]:
    """Brute-force optimum for an explicit (possibly correlated)
    distribution — the setting PIB tolerates but ``Υ`` does not."""
    weighted = list(weighted_contexts)
    best: Optional[Tuple[float, Strategy]] = None
    for strategy in all_path_structured_strategies(graph, max_retrievals):
        cost = expected_cost_explicit(strategy, weighted)
        if best is None or cost < best[0] - 1e-12:
            best = (cost, strategy)
    assert best is not None
    return best[1], best[0]


def path_structured_suffices(
    graph: InferenceGraph,
    probs: Mapping[str, float],
    limit: int = 100_000,
    tolerance: float = 1e-9,
) -> bool:
    """Check, exhaustively, that no legal arc sequence beats the best
    path-structured strategy on this graph and distribution.

    Used by the test suite to validate the restriction
    :func:`optimal_strategy_brute_force` and ``Υ_AOT`` rely on.
    """
    _, best_path_cost = optimal_strategy_brute_force(graph, probs)
    for strategy in all_legal_strategies(graph, limit=limit):
        if expected_cost_exact(strategy, probs) < best_path_cost - tolerance:
            return False
    return True

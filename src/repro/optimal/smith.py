"""The [Smi89] fact-distribution heuristic the paper argues against.

Section 2: "[Smi89] presents one way of approximating [the success
probabilities], based on the (questionable) assumption that these
probabilities are correlated with the distribution of facts in the
database."  Given 2,000 ``prof`` facts and 500 ``grad`` facts, the
heuristic deems a ``prof`` lookup 4× as likely to succeed as a ``grad``
lookup — regardless of what users actually ask — and therefore picks
the prof-first strategy ``Θ₁`` on ``G_A``.

We reproduce it faithfully so the benchmarks can show where it goes
wrong (the paper's "minors-only" workload: no queried individual is a
professor, so the grad-first ``Θ₂`` is clearly superior while the
heuristic still insists on ``Θ₁``).
"""

from __future__ import annotations

from typing import Dict

from ..errors import GraphError
from ..datalog.database import Database
from ..graphs.inference_graph import ArcKind, InferenceGraph
from ..strategies.strategy import Strategy
from .upsilon import upsilon_aot

__all__ = ["smith_estimates", "smith_strategy"]


def smith_estimates(
    graph: InferenceGraph, database: Database
) -> Dict[str, float]:
    """Per-experiment success "probabilities" from relation fact counts.

    A retrieval arc on relation ``r`` gets estimate
    ``count(r) / max_count``, where ``max_count`` is the largest fact
    count among the graph's retrieval relations — so relative odds
    match the heuristic's fact-count ratios and the best-stocked
    relation is treated as (near-)certain.  Blockable reduction arcs,
    which the heuristic has no opinion about, get probability 1.
    """
    counts: Dict[str, int] = {}
    for arc in graph.retrieval_arcs():
        if arc.goal is None:
            raise GraphError(
                f"retrieval arc {arc.name!r} has no goal pattern; the "
                "fact-count heuristic needs to know its relation"
            )
        counts[arc.name] = database.count(
            arc.goal.predicate, arc.goal.arity
        )
    largest = max(counts.values(), default=0)
    estimates: Dict[str, float] = {}
    for arc in graph.experiments():
        if arc.kind is ArcKind.RETRIEVAL:
            estimates[arc.name] = (
                counts[arc.name] / largest if largest else 0.0
            )
        else:
            estimates[arc.name] = 1.0
    return estimates


def smith_strategy(graph: InferenceGraph, database: Database) -> Strategy:
    """The strategy the fact-count heuristic recommends: ``Υ_AOT`` run
    on the fact-count pseudo-probabilities."""
    return upsilon_aot(graph, smith_estimates(graph, database))

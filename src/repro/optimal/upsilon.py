"""``Υ_AOT``: the optimal strategy for a tree-shaped inference graph.

Section 4 assumes "algorithms ``Υ_G(G, p)`` that take a graph G … and a
vector of the success probabilities of the relevant retrievals p … and
produce the optimal strategy for that graph", citing [Smi89] for the
simple disjunctive tree case and [GO91] for approximations.  The
general problem is NP-hard [Gre91]; for trees the classical
precedence-constrained ratio-merge algorithm (Simon–Kadane chains,
Horn/Garey merging under out-tree precedence) is exact:

1. every arc starts as its own :class:`~repro.optimal.ratio.Block`;
2. repeatedly take the block with the *globally maximal* ratio
   ``P/E``;

   * if its entry arc's parent block has already been emitted (or it
     has no parent), emit it — nothing can any longer be scheduled
     before it, and by the interchange argument nothing pending should
     be;
   * otherwise append it to its parent block (a maximal-ratio block
     belongs immediately after its predecessor), and recompute the
     composite's statistics;
3. the emitted arc order is the optimal strategy.

Merging is justified because a composite's ratio is a mediant of its
parts — it lies between them — so the pending maximum never grows and
step 2's commitment is safe.  Exactness is property-tested against
brute-force enumeration on randomized graphs (with and without
blockable internal arcs).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import DistributionError
from ..graphs.inference_graph import Arc, InferenceGraph
from ..strategies.strategy import Strategy
from .ratio import Block

__all__ = ["upsilon_aot", "upsilon_ot"]


def _validate_probs(graph: InferenceGraph, probs: Mapping[str, float]) -> None:
    for arc in graph.experiments():
        if arc.name not in probs:
            raise DistributionError(
                f"probability vector is missing experiment {arc.name!r}"
            )
        p = probs[arc.name]
        if not 0.0 <= p <= 1.0:
            raise DistributionError(f"p({arc.name}) = {p} is not in [0, 1]")


def upsilon_aot(graph: InferenceGraph, probs: Mapping[str, float]) -> Strategy:
    """The minimum-expected-cost strategy of ``graph`` under ``probs``.

    ``probs`` maps every blockable arc name to its success probability;
    the probabilities are treated as independent (footnote 8: the
    ``Υ_G`` functions all assume independence).

    Runs in ``O(n²)`` block-statistic recomputations, ``O(n³)`` arc
    work overall — comfortably polynomial, as Section 4's efficiency
    discussion requires.
    """
    _validate_probs(graph, probs)
    arcs = graph.arcs()
    blocks: Dict[str, Block] = {
        arc.name: Block(graph, [arc], probs) for arc in arcs
    }
    # block id -> id of the block containing its parent arc (None = root).
    owner: Dict[str, str] = {arc.name: arc.name for arc in arcs}
    declaration = {arc.name: index for index, arc in enumerate(arcs)}
    emitted: List[Arc] = []
    emitted_blocks: set = set()

    def parent_block_id(block_id: str) -> Optional[str]:
        parent_arc = graph.parent_arc(blocks[block_id].top_arc)
        if parent_arc is None:
            return None
        root = owner[parent_arc.name]
        # Path-compress through merges.
        while owner[root] != root:
            root = owner[root]
        owner[parent_arc.name] = root
        return root

    def sort_key(block_id: str) -> Tuple[float, int]:
        block = blocks[block_id]
        return (-block.ratio, declaration[block.top_arc.name])

    pending = set(blocks)
    while pending:
        best = min(pending, key=sort_key)
        parent = parent_block_id(best)
        if parent is None or parent in emitted_blocks:
            emitted.extend(blocks[best].arcs)
            emitted_blocks.add(best)
            pending.discard(best)
        else:
            merged = blocks[parent].merged_with(blocks[best], probs)
            blocks[parent] = merged
            owner[best] = parent
            for arc in blocks[best].arcs:
                owner[arc.name] = parent
            pending.discard(best)
            del blocks[best]

    return Strategy(graph, emitted)


def upsilon_ot(graph: InferenceGraph, probs: Mapping[str, float]) -> Strategy:
    """[Smi89]'s ``Υ_OT`` for *simple disjunctive* tree graphs.

    Identical machinery, restricted to graphs whose only experiments
    are the retrievals themselves; raises
    :class:`DistributionError` when handed a graph with blockable
    reductions so callers notice they need the full ``Υ_AOT``.
    """
    if not graph.is_simple_disjunctive():
        raise DistributionError(
            "upsilon_ot handles simple disjunctive graphs only; "
            "use upsilon_aot for graphs with blockable reductions"
        )
    return upsilon_aot(graph, probs)

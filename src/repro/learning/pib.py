"""The anytime PIB algorithm (Figure 3, Theorem 1).

PIB monitors a query processor as it solves contexts drawn from the
(unknown, stationary) distribution.  For every neighbour
``Θ' ∈ T(Θ_j)`` of the current strategy it accumulates the
conservative under-estimates ``Δ̃[Θ_j, Θ', S]``; after each context (or
each batch of ``test_every`` contexts) it applies Equation 6's
sequential Chernoff test,

    Δ̃[Θ_j, Θ', S] ≥ Λ[Θ_j, Θ'] · sqrt(|S|/2 · ln(i²π²/(6δ))),

where ``i`` counts every comparison ever made, so that the union over
all neighbours *and* all re-tests of the false-positive probability
telescopes below ``δ`` (Theorem 1: the chance that *any* climb ever
taken is not a true improvement is at most ``δ``).

When a neighbour passes, PIB climbs — the query processor switches
strategies mid-stream — and statistics restart for the new
neighbourhood (Figure 3's ``L1``).  The process is *anytime*: it never
needs to stop, and the longer it runs the better (with probability
``1 − δ``) its current strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..errors import LearningError
from ..graphs.contexts import Context
from ..graphs.inference_graph import InferenceGraph
from ..observability.recorder import NULL_RECORDER, Recorder
from ..strategies.execution import ExecutionResult, execute
from ..strategies.strategy import Strategy
from ..strategies.transformations import (
    Transformation,
    all_sibling_swaps,
    neighbours,
)
from .chernoff import pib_sequential_threshold
from .statistics import DeltaAccumulator, RetrievalStatistics

__all__ = ["ClimbRecord", "PIB"]

#: Test-only fault injection: when True, :meth:`PIB._maybe_climb`
#: accepts a neighbour exactly when its evidence FAILS Equation 6 (the
#: inequality is flipped) — the canonical "climbs on insufficient
#: evidence" bug class Theorem 1 exists to prevent.  The verify
#: subsystem's PIB contract oracle must catch this
#: (``tests/test_verify_oracles.py``); never set it outside tests.
FLIP_EQ6_FOR_TESTING = False


@dataclass(frozen=True)
class ClimbRecord:
    """One hill-climbing step taken by PIB."""

    step: int                  # 1 for Θ₀→Θ₁, 2 for Θ₁→Θ₂, …
    context_number: int        # how many contexts had been processed
    transformation: str        # the operator that fired
    samples: int               # |S| backing the decision
    estimated_gain: float      # Δ̃[Θ_j, Θ_{j+1}, S] at the climb
    threshold: float           # Equation 6's right side at the climb
    from_arcs: tuple
    to_arcs: tuple


class PIB:
    """Anytime strategy improvement by probabilistic hill-climbing.

    Parameters
    ----------
    graph:
        The inference graph being searched.
    delta:
        Overall mistake budget: Theorem 1 bounds the probability of
        *ever* climbing to a worse strategy by ``delta``.
    initial_strategy:
        Starting point ``Θ₀`` (default: depth-first left-to-right).
    transformations:
        The operator set ``T`` (default: every sibling swap).
    test_every:
        Run Equation 6 after every ``k``-th context only; Theorem 1 is
        insensitive to the test frequency (Section 3.2's first closing
        comment).
    recorder:
        Observability hook (null by default): receives one
        ``learner_sample`` event per monitored run (with the Δ̃ each
        neighbour accumulated), one ``margin`` event per Equation 6
        evaluation, and one ``climb`` event per strategy switch.
        Recording never feeds back into decisions.
    """

    def __init__(
        self,
        graph: InferenceGraph,
        delta: float = 0.05,
        initial_strategy: Optional[Strategy] = None,
        transformations: Optional[Sequence[Transformation]] = None,
        test_every: int = 1,
        recorder: Recorder = NULL_RECORDER,
    ):
        if not 0.0 < delta < 1.0:
            raise LearningError(f"delta must be in (0, 1), got {delta}")
        if test_every < 1:
            raise LearningError("test_every must be at least 1")
        self.graph = graph
        self.delta = delta
        self.test_every = test_every
        self.recorder = recorder
        self.strategy = initial_strategy or Strategy.depth_first(graph)
        self.transformations: List[Transformation] = list(
            transformations if transformations is not None
            else all_sibling_swaps(graph)
        )
        #: Figure 3's ``i``: total number of candidate comparisons made.
        self.total_tests = 0
        #: Contexts processed over the whole run (across climbs).
        self.contexts_processed = 0
        self.history: List[ClimbRecord] = []
        #: The light per-retrieval counters of Section 5.1 (kept for
        #: inspection and for seeding PAO-style estimates).
        self.retrieval_statistics = RetrievalStatistics(graph)
        self._accumulators: List[DeltaAccumulator] = []
        self._since_last_test = 0
        self._rebuild_neighbourhood()

    def _rebuild_neighbourhood(self) -> None:
        """Figure 3's ``L1``: fresh sample set for the current strategy."""
        self._accumulators = [
            DeltaAccumulator(
                transformation,
                candidate,
                transformation.chernoff_range(self.graph),
            )
            for transformation, candidate in neighbours(
                self.strategy, self.transformations
            )
        ]
        self._since_last_test = 0

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def process(self, context: Context) -> ExecutionResult:
        """Answer one context with the current strategy; maybe climb.

        This is the unobtrusive monitoring loop: the caller gets the
        execution result (its answer and cost) exactly as if no learner
        were attached.
        """
        result = execute(self.strategy, context, recorder=self.recorder)
        self.record(result)
        return result

    def record(self, result: ExecutionResult) -> None:
        """Learn from an externally executed run of the current strategy.

        This is :meth:`process` minus the execution — the hook the
        resilient execution layer uses: it runs the strategy itself
        (through retries, breakers, and deadlines) and hands PIB the
        *settled* :class:`ExecutionResult`, so the Δ̃ accumulators only
        ever see the stationary context distribution.  The result must
        come from a run of ``self.strategy``; feeding a stale result
        recorded before a climb would corrupt the accumulators.
        """
        if result.strategy is not self.strategy and tuple(
            result.strategy.arc_names()
        ) != tuple(self.strategy.arc_names()):
            raise LearningError(
                "recorded result was not produced by the current strategy"
            )
        self.contexts_processed += 1
        self.retrieval_statistics.record(result)
        if self.recorder.enabled:
            deltas = {
                accumulator.transformation.name: accumulator.update(result)
                for accumulator in self._accumulators
            }
            self.recorder.learner_sample(
                self.contexts_processed, result.cost, deltas
            )
        else:
            for accumulator in self._accumulators:
                accumulator.update(result)
        self.total_tests += len(self._accumulators)
        self._since_last_test += 1
        if self._accumulators and self._since_last_test >= self.test_every:
            self._since_last_test = 0
            self._maybe_climb()

    def run(
        self,
        oracle: Callable[[], Context],
        contexts: int,
    ) -> Strategy:
        """Process ``contexts`` oracle draws; return the final strategy."""
        for _ in range(contexts):
            self.process(oracle())
        return self.strategy

    # ------------------------------------------------------------------
    # Climbing
    # ------------------------------------------------------------------

    def _maybe_climb(self) -> None:
        best: Optional[DeltaAccumulator] = None
        best_margin = 0.0
        best_threshold = 0.0
        for accumulator in self._accumulators:
            threshold = pib_sequential_threshold(
                accumulator.samples,
                self.total_tests,
                self.delta,
                accumulator.value_range,
            )
            margin = accumulator.total - threshold
            if self.recorder.enabled:
                self.recorder.chernoff_margin(
                    accumulator.transformation.name,
                    accumulator.samples,
                    accumulator.total,
                    threshold,
                )
            accepts = (
                margin < 0.0 if FLIP_EQ6_FOR_TESTING else margin >= 0.0
            )
            if accepts and (best is None or margin > best_margin):
                best = accumulator
                best_margin = margin
                best_threshold = threshold
        if best is None:
            return
        self.history.append(
            ClimbRecord(
                step=len(self.history) + 1,
                context_number=self.contexts_processed,
                transformation=best.transformation.name,
                samples=best.samples,
                estimated_gain=best.total,
                threshold=best_threshold,
                from_arcs=self.strategy.arc_names(),
                to_arcs=best.candidate.arc_names(),
            )
        )
        if self.recorder.enabled:
            self.recorder.climb(self.history[-1])
        self.strategy = best.candidate
        self._rebuild_neighbourhood()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def climbs(self) -> int:
        """How many hill-climbing steps have been taken."""
        return len(self.history)

    def neighbourhood_report(self) -> List[dict]:
        """Current ``Δ̃`` totals and thresholds, one row per neighbour."""
        rows = []
        for accumulator in self._accumulators:
            threshold = (
                pib_sequential_threshold(
                    accumulator.samples,
                    max(self.total_tests, 1),
                    self.delta,
                    accumulator.value_range,
                )
                if accumulator.samples
                else float("inf")
            )
            rows.append(
                {
                    "transformation": accumulator.transformation.name,
                    "samples": accumulator.samples,
                    "delta_tilde_sum": accumulator.total,
                    "threshold": threshold,
                }
            )
        return rows

"""PIB-style hill-climbing over and-or hypergraph *policies* (Note 4).

The paper's strategies order the arcs of a simple inference graph; on
the hypergraph extension the corresponding object is a
:class:`~repro.graphs.hypergraph.Policy` — an ordering of each goal's
alternatives.  :class:`PolicyPIB` climbs that space with the same
sequential Chernoff discipline as :class:`repro.learning.pib.PIB`:

* the operator set swaps two alternatives of one goal (the hypergraph
  analogue of a sibling swap);
* per context, each neighbour's cost is evaluated exactly (hypergraph
  contexts carry all retrieval statuses, so this is the
  full-information [CG91] setting — evaluating a candidate is a cheap
  simulation, not extra database work);
* a climb fires only when Equation 6's threshold clears, so with
  probability ≥ 1 − δ every climb over the whole run is a true
  improvement.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import LearningError
from ..graphs.hypergraph import AndOrGraph, HyperContext, Policy, evaluate
from .chernoff import pib_sequential_threshold

__all__ = ["PolicySwap", "all_policy_swaps", "PolicyPIB"]


@dataclass(frozen=True)
class PolicySwap:
    """Swap the positions of two alternatives at one goal."""

    goal: str
    first: str
    second: str

    @property
    def name(self) -> str:
        return f"policy-swap({self.goal}:{self.first},{self.second})"

    def apply(self, policy: Policy) -> Policy:
        order = [arc.name for arc in policy.alternatives(self.goal)]
        try:
            i, j = order.index(self.first), order.index(self.second)
        except ValueError as error:
            raise LearningError(
                f"{self.name}: alternative missing at goal {self.goal!r}"
            ) from error
        order[i], order[j] = order[j], order[i]
        return policy.with_order(self.goal, order)


def all_policy_swaps(graph: AndOrGraph) -> List[PolicySwap]:
    """Every unordered pair of alternatives at every goal."""
    swaps: List[PolicySwap] = []
    for goal, alternatives in graph.alternatives.items():
        names = [arc.name for arc in alternatives]
        for first, second in itertools.combinations(sorted(names), 2):
            swaps.append(PolicySwap(goal, first, second))
    return swaps


class _PolicyAccumulator:
    __slots__ = ("swap", "policy", "total", "samples")

    def __init__(self, swap: PolicySwap, policy: Policy):
        self.swap = swap
        self.policy = policy
        self.total = 0.0
        self.samples = 0


class PolicyPIB:
    """Anytime policy improvement for and-or graphs.

    Mirrors :class:`repro.learning.pib.PIB`: feed contexts through
    :meth:`process` (the returned
    :class:`~repro.graphs.hypergraph.EvalResult` is the query answer);
    the learner climbs when confident and :attr:`policy` always holds
    the current best.
    """

    def __init__(
        self,
        graph: AndOrGraph,
        delta: float = 0.05,
        initial_policy: Optional[Policy] = None,
        swaps: Optional[Sequence[PolicySwap]] = None,
        test_every: int = 1,
    ):
        if not 0.0 < delta < 1.0:
            raise LearningError(f"delta must be in (0, 1), got {delta}")
        self.graph = graph
        self.delta = delta
        self.test_every = max(1, test_every)
        self.policy = initial_policy or Policy(graph)
        self.swaps: List[PolicySwap] = list(
            swaps if swaps is not None else all_policy_swaps(graph)
        )
        #: Δ ranges over ±(total arc cost): each arc is charged at most
        #: once per evaluation (goal results are memoized).
        self.value_range = 2.0 * sum(arc.cost for arc in graph.arcs())
        self.total_tests = 0
        self.contexts_processed = 0
        self.history: List[Tuple[int, str]] = []
        self._accumulators: List[_PolicyAccumulator] = []
        self._since_last_test = 0
        self._rebuild()

    def _rebuild(self) -> None:
        self._accumulators = [
            _PolicyAccumulator(swap, swap.apply(self.policy))
            for swap in self.swaps
        ]
        self._since_last_test = 0

    def process(self, context: HyperContext):
        """Answer one context with the current policy; maybe climb."""
        result = evaluate(self.policy, context)
        self.contexts_processed += 1
        for accumulator in self._accumulators:
            candidate_cost = evaluate(accumulator.policy, context).cost
            accumulator.total += result.cost - candidate_cost
            accumulator.samples += 1
        self.total_tests += len(self._accumulators)
        self._since_last_test += 1
        if self._accumulators and self._since_last_test >= self.test_every:
            self._since_last_test = 0
            self._maybe_climb()
        return result

    def run(self, oracle: Callable[[], HyperContext], contexts: int) -> Policy:
        """Process ``contexts`` oracle draws; return the final policy."""
        for _ in range(contexts):
            self.process(oracle())
        return self.policy

    def _maybe_climb(self) -> None:
        best: Optional[_PolicyAccumulator] = None
        best_margin = 0.0
        for accumulator in self._accumulators:
            threshold = pib_sequential_threshold(
                accumulator.samples,
                self.total_tests,
                self.delta,
                self.value_range,
            )
            margin = accumulator.total - threshold
            if margin >= 0.0 and (best is None or margin > best_margin):
                best = accumulator
                best_margin = margin
        if best is None:
            return
        self.history.append((self.contexts_processed, best.swap.name))
        self.policy = best.policy
        self._rebuild()

    @property
    def climbs(self) -> int:
        return len(self.history)

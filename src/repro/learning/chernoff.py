"""Chernoff/Hoeffding machinery: Equations 1–3, 5–8 of the paper.

Everything statistical in PIB and PAO reduces to the additive Chernoff
bound (Equation 1): for i.i.d. samples with range ``Λ`` and mean ``μ``,

    Pr[Y_n > μ + β] ≤ exp(−2n(β/Λ)²),

which holds for essentially arbitrary distributions (footnote 5).  This
module packages the bound and every sample-size / threshold formula the
paper derives from it.
"""

from __future__ import annotations

import math

__all__ = [
    "chernoff_tail",
    "confidence_radius",
    "samples_for_radius",
    "pib_sum_threshold",
    "sequential_confidence",
    "pib_sequential_threshold",
    "pao_sample_size",
    "aiming_sample_size",
]


def _check_positive(**values: float) -> None:
    for name, value in values.items():
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")


def chernoff_tail(n: int, beta: float, value_range: float) -> float:
    """Equation 1: ``Pr[Y_n deviates from μ by > β] ≤ exp(−2n(β/Λ)²)``."""
    _check_positive(n=n, value_range=value_range)
    if beta < 0:
        raise ValueError(f"beta must be non-negative, got {beta}")
    return math.exp(-2.0 * n * (beta / value_range) ** 2)


def confidence_radius(n: int, delta: float, value_range: float) -> float:
    """The ``β`` making the one-sided tail exactly ``δ``:
    ``β = Λ·sqrt(ln(1/δ) / (2n))``."""
    _check_positive(n=n, delta=delta, value_range=value_range)
    return value_range * math.sqrt(math.log(1.0 / delta) / (2.0 * n))


def samples_for_radius(epsilon: float, delta: float, value_range: float) -> int:
    """Samples needed for a one-sided radius of ``ε`` at confidence
    ``1 − δ``: ``⌈(Λ/ε)²·ln(1/δ)/2⌉``."""
    _check_positive(epsilon=epsilon, delta=delta, value_range=value_range)
    return math.ceil((value_range / epsilon) ** 2 * math.log(1.0 / delta) / 2.0)


def pib_sum_threshold(n: int, delta: float, value_range: float) -> float:
    """Equation 2's acceptance threshold on the *sum* of differences.

    ``Δ[Θ, Θ', S] > Λ·sqrt(n/2 · ln(1/δ))`` certifies, with confidence
    ``1 − δ``, that ``D[Θ, Θ'] > 0`` — the new strategy is strictly
    better.
    """
    _check_positive(n=n, delta=delta, value_range=value_range)
    return value_range * math.sqrt(n / 2.0 * math.log(1.0 / delta))


def sequential_confidence(test_index: int, delta: float) -> float:
    """The per-test confidence ``δ_i = δ·6/(π²·i²)`` of Section 3.2.

    The schedule's total false-positive mass telescopes to ``δ``:
    ``Σ_i δ·6/(π²i²) = δ``.
    """
    _check_positive(test_index=test_index, delta=delta)
    return delta * 6.0 / (math.pi ** 2 * test_index ** 2)


def pib_sequential_threshold(
    n: int, total_tests: int, delta: float, value_range: float
) -> float:
    """Equation 6's threshold: ``Λ·sqrt(|S|/2 · ln(i²π²/(6δ)))``.

    ``total_tests`` is Figure 3's running counter ``i`` — the number of
    (strategy, neighbour) comparisons performed so far, which both the
    union bound over ``k = |T(Θ)|`` neighbours and the sequential-test
    schedule fold into.
    """
    _check_positive(n=n, total_tests=total_tests, delta=delta,
                    value_range=value_range)
    inner = math.log(total_tests ** 2 * math.pi ** 2 / (6.0 * delta))
    return value_range * math.sqrt(n / 2.0 * max(inner, 0.0))


def pao_sample_size(
    n_experiments: int, f_not: float, epsilon: float, delta: float
) -> int:
    """Equation 7: ``m(d_i) = ⌈2·(n·F¬[d_i]/ε)²·ln(2n/δ)⌉``.

    An experiment with ``F¬ = 0`` (every other arc lies on its own
    paths — e.g. a single-retrieval graph) needs no samples at all:
    mis-estimating it cannot change any ordering decision.
    """
    _check_positive(n_experiments=n_experiments, epsilon=epsilon, delta=delta)
    if f_not < 0:
        raise ValueError(f"f_not must be non-negative, got {f_not}")
    if f_not == 0.0:
        return 0
    return math.ceil(
        2.0
        * (n_experiments * f_not / epsilon) ** 2
        * math.log(2.0 * n_experiments / delta)
    )


def aiming_sample_size(
    n_experiments: int, f_not: float, epsilon: float, delta: float
) -> int:
    """Equation 8: the attempts-to-reach budget of Theorem 3,

        m'(e_i) = ⌈2·(sqrt(2ε/(n·F¬[e_i]) + 1) − 1)^−2 · ln(4n/δ)⌉.

    Its leading term as ``n`` grows matches Equation 7 with
    ``ln(4n/δ)`` in place of ``ln(2n/δ)`` (footnote 11).
    """
    _check_positive(n_experiments=n_experiments, epsilon=epsilon, delta=delta)
    if f_not < 0:
        raise ValueError(f"f_not must be non-negative, got {f_not}")
    if f_not == 0.0:
        return 0
    shrink = math.sqrt(2.0 * epsilon / (n_experiments * f_not) + 1.0) - 1.0
    return math.ceil(
        2.0 * shrink ** -2 * math.log(4.0 * n_experiments / delta)
    )

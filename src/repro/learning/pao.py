"""PAO: probably approximately optimal strategies (Section 4).

PAO's pipeline has three stages:

1. **Budgeting** — compute, per experiment, how many samples suffice:
   Theorem 2's ``m(d_i)`` (Equation 7) when every experiment is a
   retrieval the adaptive processor can always reach, or Theorem 3's
   attempts-to-reach budget ``m'(e_i)`` (Equation 8) when arcs may be
   unreachable in some contexts (the *aiming* variant).
2. **Sampling** — run the adaptive query processor ``QP^A``
   (Section 4.1) over oracle-drawn contexts until every counter is
   satisfied, producing the frequency vector ``p̂``.
3. **Optimizing** — hand ``⟨G, p̂⟩`` to ``Υ_AOT`` and return
   ``Θ_pao = Υ_AOT(G, p̂)``.

Theorems 2 and 3 then guarantee
``Pr[C[Θ_pao] ≤ C[Θ_opt] + ε] ≥ 1 − δ``; the benchmark
``benchmarks/bench_theorem2_pao.py`` measures exactly that frequency.

The Equation 7/8 budgets are worst-case and grow as ``(n·F¬/ε)²``; the
``sample_scale`` knob lets benchmarks and applications trade guarantee
slack for wall-clock (documented deviation — scaling below 1 voids the
theorem but is useful for exploring how conservative the bound is,
which ``bench_theorem2_pao.py`` does).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..errors import LearningError, SampleBudgetExceeded
from ..graphs.contexts import Context
from ..graphs.inference_graph import InferenceGraph
from ..observability.recorder import NULL_RECORDER, Recorder
from ..strategies.adaptive import AdaptiveQueryProcessor
from ..strategies.strategy import Strategy
from .chernoff import aiming_sample_size, pao_sample_size

__all__ = ["PAOResult", "sample_requirements", "pao"]


@dataclass
class PAOResult:
    """Everything the PAO run produced.

    ``estimates`` is the frequency vector ``p̂`` handed to ``Υ``;
    ``requirements`` the per-experiment budgets; ``contexts_used`` how
    many oracle draws the adaptive processor consumed; ``reached`` and
    ``attempts`` the per-experiment counts of Theorem 3 (``k(e_i)`` and
    the attempts-to-reach).
    """

    strategy: Strategy
    estimates: Dict[str, float]
    requirements: Dict[str, int]
    contexts_used: int
    reached: Dict[str, int]
    attempts: Dict[str, int]


def sample_requirements(
    graph: InferenceGraph,
    epsilon: float,
    delta: float,
    aiming: bool = False,
    sample_scale: float = 1.0,
) -> Dict[str, int]:
    """Per-experiment sample budgets: Equation 7, or Equation 8 when
    ``aiming``."""
    if epsilon <= 0:
        raise LearningError(f"epsilon must be positive, got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise LearningError(f"delta must be in (0, 1), got {delta}")
    if sample_scale <= 0:
        raise LearningError(f"sample_scale must be positive, got {sample_scale}")
    experiments = graph.experiments()
    size = aiming_sample_size if aiming else pao_sample_size
    budgets: Dict[str, int] = {}
    for arc in experiments:
        raw = size(len(experiments), graph.f_not(arc), epsilon, delta)
        budgets[arc.name] = math.ceil(raw * sample_scale)
    return budgets


def pao(
    graph: InferenceGraph,
    epsilon: float,
    delta: float,
    oracle: Callable[[], Context],
    aiming: bool = False,
    upsilon: Optional[Callable[[InferenceGraph, Dict[str, float]], Strategy]] = None,
    max_contexts: Optional[int] = None,
    sample_scale: float = 1.0,
    recorder: Recorder = NULL_RECORDER,
) -> PAOResult:
    """Run the full PAO pipeline and return ``Θ_pao`` with its evidence.

    ``oracle`` draws contexts from the stationary distribution (for a
    deployed system: the stream of user queries).  The plain variant
    (Theorem 2) requires a graph whose only experiments are retrievals
    — when reductions can block, some retrievals may be unreachable and
    the fixed per-retrieval quota unattainable, which is precisely why
    Theorem 3 exists; pass ``aiming=True`` for such graphs.

    ``max_contexts`` bounds the sampling phase;
    :class:`SampleBudgetExceeded` reports the outstanding counters when
    the bound is hit.
    """
    if not aiming and not graph.is_simple_disjunctive():
        raise LearningError(
            "plain PAO (Theorem 2) requires every experiment to be a "
            "retrieval; use aiming=True (Theorem 3) for graphs with "
            "blockable reductions"
        )
    if upsilon is None:
        from ..optimal.upsilon import upsilon_aot as upsilon  # late: avoid cycle

    requirements = sample_requirements(
        graph, epsilon, delta, aiming=aiming, sample_scale=sample_scale
    )
    if recorder.enabled:
        recorder.pao_budget(requirements)
    processor = AdaptiveQueryProcessor(
        graph, requirements, count="attempts" if aiming else "reached"
    )
    while not processor.done():
        if max_contexts is not None and processor.contexts_processed >= max_contexts:
            outstanding = {
                name: count
                for name, count in processor.counters().items()
                if count > 0
            }
            raise SampleBudgetExceeded(
                f"PAO sampling exceeded {max_contexts} contexts with "
                f"counters outstanding: {outstanding}"
            )
        processor.process(oracle())

    estimates = processor.frequency_estimates(fallback=0.5)
    if recorder.enabled:
        recorder.pao_complete(processor.contexts_processed, estimates)
    strategy = upsilon(graph, estimates)
    return PAOResult(
        strategy=strategy,
        estimates=estimates,
        requirements=requirements,
        contexts_used=processor.contexts_processed,
        reached=dict(processor.reached),
        attempts=dict(processor.attempts),
    )

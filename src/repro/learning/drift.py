"""Drift-aware learning: change detection, epochs, and safe rollback.

Theorem 1 (PIB) and Theorems 2–3 (PAO) are proved under an *unknown
but stationary* context distribution (§2.1).  A deployment whose query
mix shifts silently invalidates every Chernoff guarantee: the Δ̃ sums
mix evidence from different regimes, and the system can stay pinned to
a strategy that is now arbitrarily bad.  This module makes the
learners degrade *gracefully instead of wrongly*:

* :class:`AdaptiveWindowDetector` — an ADWIN-style adaptive window
  over a bounded stream with a Hoeffding split test.  Every split test
  spends confidence from the same ``δ_i = δ·6/(π²·i²)`` schedule PIB's
  sequential test uses (:func:`~repro.learning.chernoff.sequential_confidence`),
  so under stationarity the probability of *ever* alarming is at most
  the configured ``δ`` — the false-alarm analogue of Theorem 1.
* :class:`PageHinkleyDetector` — the classic cumulative-deviation test,
  kept as the cheap O(1)-memory alternative; its threshold reuses
  Equation 2's sum bound (:func:`~repro.learning.chernoff.pib_sum_threshold`)
  at confidence ``δ/n²`` but is calibrated rather than anytime-valid
  (documented deviation).
* :class:`DriftAwarePIB` — PIB plus the **epoch protocol**: detectors
  watch per-query settled costs and per-arc settled success outcomes;
  on a confirmed alarm the learner snapshots the current strategy as
  *last-known-good*, resets every Δ̃ accumulator and the
  sequential-test index ``i`` (restarting the ``δ_i`` schedule so
  Theorem 1 holds *per-epoch*), and keeps a standing rollback
  candidate: if post-drift climbing leaves the learner on a strategy
  the new regime makes statistically worse than the last-known-good
  one, the same Equation 6 test that justifies climbs justifies the
  roll back.
* :class:`PAORevalidationMonitor` — watches settled per-arc outcomes
  after a PAO run and flags when the ``p̂`` behind ``Θ_pao`` has gone
  stale, so the Equation 7 sample budget can be re-drawn.

Resilience interplay: detectors must only ever see **settled**
outcomes (the fault-free-equivalent view of
:class:`~repro.strategies.execution.ResilientExecutionResult`).  A
breaker-open storm changes what a *billed* run looks like but not the
settled observations, so infrastructure trouble cannot masquerade as
distribution drift.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import LearningError
from ..graphs.contexts import Context
from ..graphs.inference_graph import InferenceGraph
from ..observability.recorder import NULL_RECORDER, Recorder
from ..strategies.execution import ExecutionResult
from ..strategies.strategy import Strategy
from ..strategies.transformations import Transformation
from .chernoff import pib_sum_threshold, sequential_confidence
from .pib import PIB
from .statistics import DeltaAccumulator, WindowedRetrievalStatistics

__all__ = [
    "ROLLBACK_NAME",
    "AdaptiveWindowDetector",
    "PageHinkleyDetector",
    "DriftAlarm",
    "DriftConfig",
    "RollbackTransformation",
    "DriftAwarePIB",
    "PAORevalidationMonitor",
    "make_detector",
]

#: The transformation name rollback steps carry in ``ClimbRecord``s.
ROLLBACK_NAME = "rollback"


# ----------------------------------------------------------------------
# Change detectors
# ----------------------------------------------------------------------

class AdaptiveWindowDetector:
    """ADWIN-style drift detection with a Hoeffding split test.

    The detector keeps a window of the most recent values (bounded by
    ``max_window``) and, every ``check_every`` updates, tests a
    geometric family of suffix splits: the window ``W = W₀ · W₁`` is
    declared drifted when the sub-window means differ by more than

        ε_cut = Λ · sqrt( ln(4/δ_i) / (2·m) ),   1/m = 1/|W₀| + 1/|W₁|,

    the two-sided two-window Hoeffding radius at confidence ``δ_i``.
    Each performed split test consumes the next term of the
    ``δ_i = δ·6/(π²·i²)`` schedule (shared with PIB's sequential test),
    so the union over *all tests ever made* bounds the stationary
    false-alarm probability by ``δ`` — for any stream of values in a
    range of width ``value_range``, by the same footnote-5 generality
    as Equation 1.

    On an alarm the pre-split (stale) half of the window is dropped, so
    the surviving window describes the new regime.
    """

    def __init__(
        self,
        value_range: float,
        delta: float = 0.05,
        max_window: int = 400,
        check_every: int = 8,
        min_side: int = 20,
    ):
        if value_range <= 0:
            raise LearningError(
                f"value_range must be positive, got {value_range}"
            )
        if not 0.0 < delta < 1.0:
            raise LearningError(f"delta must be in (0, 1), got {delta}")
        if max_window < 2 * min_side:
            raise LearningError(
                "max_window must hold two min_side sub-windows "
                f"({max_window} < {2 * min_side})"
            )
        if check_every < 1 or min_side < 1:
            raise LearningError("check_every and min_side must be >= 1")
        self.value_range = value_range
        self.delta = delta
        self.max_window = max_window
        self.check_every = check_every
        self.min_side = min_side
        #: Split tests performed over the detector's lifetime — the
        #: index ``i`` of the confidence schedule.  Deliberately *not*
        #: cleared by :meth:`reset`: the δ-budget is spent once.
        self.tests_performed = 0
        self.alarms = 0
        self.samples = 0
        self._window: List[float] = []
        self._since_check = 0

    def update(self, value: float) -> bool:
        """Fold one value in; ``True`` when a drift alarm fires."""
        self.samples += 1
        self._window.append(float(value))
        if len(self._window) > self.max_window:
            del self._window[0]
        self._since_check += 1
        if self._since_check < self.check_every:
            return False
        self._since_check = 0
        return self._check_splits()

    def _check_splits(self) -> bool:
        window = self._window
        total = len(window)
        if total < 2 * self.min_side:
            return False
        suffix = self.min_side
        while suffix <= total - self.min_side:
            n_old = total - suffix
            n_new = suffix
            mean_old = math.fsum(window[:n_old]) / n_old
            mean_new = math.fsum(window[n_old:]) / n_new
            self.tests_performed += 1
            local = sequential_confidence(self.tests_performed, self.delta)
            harmonic = (n_old * n_new) / (n_old + n_new)
            cut = self.value_range * math.sqrt(
                math.log(4.0 / local) / (2.0 * harmonic)
            )
            if abs(mean_new - mean_old) > cut:
                self.alarms += 1
                # Keep only the new-regime suffix.
                del self._window[:n_old]
                return True
            suffix *= 2
        return False

    def mean(self) -> float:
        """Mean of the current (post-shrink) window; 0.0 when empty."""
        if not self._window:
            return 0.0
        return math.fsum(self._window) / len(self._window)

    def reset(self) -> None:
        """Drop the window (epoch boundary); the test index survives."""
        self._window.clear()
        self._since_check = 0


class PageHinkleyDetector:
    """Two-sided Page–Hinkley test over a bounded stream.

    Tracks the cumulative deviation of each value from the running
    mean, in both directions, and alarms when either random walk rises
    more than a threshold above its running minimum.  The threshold at
    ``n`` samples reuses Equation 2's sum bound with the confidence
    split over horizons, ``λ_n = Λ·sqrt(n/2 · ln(n²/δ))`` — the
    ``n²`` keeps the walk's excursion statistic (a maximum over
    segment sums, not one fixed sum) from alarming spuriously as the
    horizon grows.  Unlike :class:`AdaptiveWindowDetector` the bound
    is calibrated, not proved — PH is kept as the cheap O(1)-memory
    alternative, so treat ``delta`` as a tuning rate, not an anytime
    budget (documented deviation).  ``tolerance`` is the classic PH
    dead-band: drifts smaller than it are ignored.
    """

    def __init__(
        self,
        value_range: float,
        delta: float = 0.05,
        tolerance: float = 0.0,
        min_samples: int = 30,
    ):
        if value_range <= 0:
            raise LearningError(
                f"value_range must be positive, got {value_range}"
            )
        if not 0.0 < delta < 1.0:
            raise LearningError(f"delta must be in (0, 1), got {delta}")
        if tolerance < 0:
            raise LearningError(
                f"tolerance must be non-negative, got {tolerance}"
            )
        if min_samples < 2:
            raise LearningError("min_samples must be at least 2")
        self.value_range = value_range
        self.delta = delta
        self.tolerance = tolerance
        self.min_samples = min_samples
        self.alarms = 0
        self.reset()
        self.samples = 0  # lifetime, not cleared by reset()

    def update(self, value: float) -> bool:
        value = float(value)
        self.samples += 1
        self._n += 1
        self._mean += (value - self._mean) / self._n
        deviation = value - self._mean
        self._up += deviation - self.tolerance
        self._down += -deviation - self.tolerance
        self._min_up = min(self._min_up, self._up)
        self._min_down = min(self._min_down, self._down)
        if self._n < self.min_samples:
            return False
        threshold = pib_sum_threshold(
            self._n, self.delta / (self._n * self._n), self.value_range
        )
        if (self._up - self._min_up > threshold
                or self._down - self._min_down > threshold):
            self.alarms += 1
            samples = self.samples
            self.reset()
            self.samples = samples
            return True
        return False

    def mean(self) -> float:
        """The running mean of the current segment."""
        return self._mean

    def reset(self) -> None:
        """Restart the test (epoch boundary or post-alarm)."""
        self._n = 0
        self._mean = 0.0
        self._up = 0.0
        self._down = 0.0
        self._min_up = 0.0
        self._min_down = 0.0


def make_detector(kind: str, value_range: float, config: "DriftConfig"):
    """Build one detector of ``config``'s flavour for a given range."""
    if kind == "window":
        return AdaptiveWindowDetector(
            value_range,
            delta=config.delta,
            max_window=config.max_window,
            check_every=config.check_every,
            min_side=config.min_side,
        )
    if kind == "page-hinkley":
        return PageHinkleyDetector(
            value_range,
            delta=config.delta,
            tolerance=config.tolerance * value_range,
            min_samples=config.min_side,
        )
    raise LearningError(
        f"unknown detector kind {kind!r} (use 'window' or 'page-hinkley')"
    )


# ----------------------------------------------------------------------
# Drift-aware PIB: epochs, last-known-good, rollback
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DriftAlarm:
    """One confirmed drift alarm and the epoch it opened."""

    epoch: int               # the epoch the alarm *started* (1-based)
    context_number: int      # contexts_processed when it fired
    sources: Tuple[str, ...]  # e.g. ("cost", "arc:Dp")


@dataclass(frozen=True)
class DriftConfig:
    """Tuning for :class:`DriftAwarePIB`'s detectors and epoch protocol.

    ``delta`` is each detector's false-alarm budget (the property the
    false-alarm tests measure); ``detector`` picks the flavour
    (``"window"`` is the default and the one with the anytime ``δ``
    bound).  ``cooldown`` suppresses alarms for the first contexts of
    a fresh epoch, so one regime change cannot trigger a reset storm
    while the detectors' windows still straddle the boundary.
    """

    delta: float = 0.05
    detector: str = "window"
    max_window: int = 400
    check_every: int = 8
    min_side: int = 20
    tolerance: float = 0.0      # PH dead-band, as a fraction of the range
    cooldown: int = 50
    monitor_costs: bool = True
    monitor_arcs: bool = True
    frequency_window: int = 200

    def __post_init__(self) -> None:
        if not 0.0 < self.delta < 1.0:
            raise LearningError(
                f"drift delta must be in (0, 1), got {self.delta}"
            )
        if self.detector not in ("window", "page-hinkley"):
            raise LearningError(
                f"unknown detector kind {self.detector!r}"
            )
        if self.cooldown < 0:
            raise LearningError("cooldown must be non-negative")
        if not (self.monitor_costs or self.monitor_arcs):
            raise LearningError(
                "drift config must monitor costs, arcs, or both"
            )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (the v2 checkpoint's ``drift.config``)."""
        return {
            "delta": self.delta,
            "detector": self.detector,
            "max_window": self.max_window,
            "check_every": self.check_every,
            "min_side": self.min_side,
            "tolerance": self.tolerance,
            "cooldown": self.cooldown,
            "monitor_costs": self.monitor_costs,
            "monitor_arcs": self.monitor_arcs,
            "frequency_window": self.frequency_window,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "DriftConfig":
        known = {f: payload[f] for f in (
            "delta", "detector", "max_window", "check_every", "min_side",
            "tolerance", "cooldown", "monitor_costs", "monitor_arcs",
            "frequency_window",
        ) if f in payload}
        return cls(**known)


class RollbackTransformation(Transformation):
    """The pseudo-operator behind the standing rollback candidate.

    It maps *any* strategy to the epoch's last-known-good one, so the
    ordinary Equation 6 machinery — a :class:`DeltaAccumulator` plus
    the sequential threshold — decides the roll back with exactly the
    statistical force of a climb: rolling back requires confident
    evidence that the last-known-good strategy beats the current one
    *in the current regime*.
    """

    def __init__(self, target: Strategy):
        self.target = target
        self.name = ROLLBACK_NAME

    def apply(self, strategy: Strategy) -> Strategy:
        return self.target

    # chernoff_range: the base class's sound 2·Σ_a max(f, f_blocked) —
    # the two strategies may differ everywhere, so no tighter Λ exists.


class DriftAwarePIB(PIB):
    """PIB under a possibly-drifting context distribution.

    Behaviour is *identical* to :class:`~repro.learning.pib.PIB` until
    a detector confirms drift (the no-drift no-op guarantee: same
    climbs, same strategies, same Equation 6 tests, in the same order).
    On a confirmed alarm the epoch protocol runs:

    1. the current strategy is snapshotted as **last-known-good** — it
       was, with probability ``1 − δ``, the best strategy found for the
       old regime;
    2. every Δ̃ accumulator is discarded and the sequential-test index
       ``i`` restarts, so within the new epoch the ``δ_i = δ·6/(π²i²)``
       schedule telescopes to ``δ`` again — Theorem 1 holds *per
       epoch* (the cross-epoch union is forfeited; see DESIGN.md);
    3. detectors and the windowed frequency estimates reset to the new
       regime;
    4. while the post-drift strategy differs from last-known-good, a
       standing rollback candidate rides in the neighbourhood: if the
       new regime makes the current strategy statistically worse, the
       learner rolls back (recorded as a ``rollback`` step in
       ``history`` and counted separately).

    ``drift`` configures the detectors (a default
    :class:`DriftConfig` when omitted); all other parameters are
    PIB's.  Feed :meth:`record` **settled** results only — under the
    resilience layer that is
    ``ResilientExecutionResult.settled_result()`` — so breaker-open
    storms and retry noise never register as drift.
    """

    def __init__(
        self,
        graph: InferenceGraph,
        delta: float = 0.05,
        initial_strategy: Optional[Strategy] = None,
        transformations: Optional[Sequence[Transformation]] = None,
        test_every: int = 1,
        recorder: Recorder = NULL_RECORDER,
        drift: Optional[DriftConfig] = None,
    ):
        self.drift_config = drift if drift is not None else DriftConfig()
        super().__init__(
            graph,
            delta=delta,
            initial_strategy=initial_strategy,
            transformations=transformations,
            test_every=test_every,
            recorder=recorder,
        )
        config = self.drift_config
        self.retrieval_statistics = WindowedRetrievalStatistics(
            graph, window=config.frequency_window
        )
        #: Epoch counter: 0 until the first confirmed drift.
        self.epoch = 0
        self.rollbacks = 0
        self.drift_alarms: List[DriftAlarm] = []
        self.last_known_good: Optional[Strategy] = None
        self._epoch_started_at = 0
        self._cost_detector = (
            make_detector(config.detector, graph.total_cost, config)
            if config.monitor_costs else None
        )
        self._arc_detectors: Dict[str, object] = (
            {
                arc.name: make_detector(config.detector, 1.0, config)
                for arc in graph.experiments()
            }
            if config.monitor_arcs else {}
        )

    # -- monitoring ----------------------------------------------------

    def record(self, result: ExecutionResult) -> None:
        super().record(result)
        sources = self._detect(result)
        if sources:
            self._begin_epoch(sources)

    def _detect(self, result: ExecutionResult) -> List[str]:
        """Feed one settled result to every detector; alarm sources."""
        sources: List[str] = []
        if self._cost_detector is not None:
            if self._cost_detector.update(result.cost):
                sources.append("cost")
        for name, unblocked in result.observations.items():
            detector = self._arc_detectors.get(name)
            if detector is not None and detector.update(1.0 if unblocked
                                                        else 0.0):
                sources.append(f"arc:{name}")
        if not sources:
            return []
        epoch_age = self.contexts_processed - self._epoch_started_at
        if self.epoch > 0 and epoch_age < self.drift_config.cooldown:
            return []  # alarm storm damping right after a reset
        return sources

    # -- epoch protocol ------------------------------------------------

    def _begin_epoch(self, sources: Sequence[str]) -> None:
        """A confirmed drift alarm: snapshot, reset, re-arm."""
        self.epoch += 1
        alarm = DriftAlarm(
            epoch=self.epoch,
            context_number=self.contexts_processed,
            sources=tuple(sources),
        )
        self.drift_alarms.append(alarm)
        self.last_known_good = self.strategy
        self._epoch_started_at = self.contexts_processed
        # Restart the sequential-test schedule: within the new epoch
        # the δ_i series telescopes to δ afresh (Theorem 1 per-epoch).
        self.total_tests = 0
        if self._cost_detector is not None:
            self._cost_detector.reset()
        for detector in self._arc_detectors.values():
            detector.reset()
        self.retrieval_statistics.reset_window()
        self._rebuild_neighbourhood()
        if self.recorder.enabled:
            self.recorder.drift_alarm(
                alarm.epoch, alarm.context_number, list(alarm.sources)
            )
            self.recorder.epoch_reset(
                alarm.epoch,
                alarm.context_number,
                list(self.strategy.arc_names()),
            )

    def _rebuild_neighbourhood(self) -> None:
        super()._rebuild_neighbourhood()
        # During PIB.__init__ the drift attributes do not exist yet.
        target = getattr(self, "last_known_good", None)
        if target is None:
            return
        if tuple(target.arc_names()) == tuple(self.strategy.arc_names()):
            return
        transformation = RollbackTransformation(target)
        self._accumulators.append(
            DeltaAccumulator(
                transformation,
                target,
                transformation.chernoff_range(self.graph),
            )
        )

    def _maybe_climb(self) -> None:
        steps_before = len(self.history)
        super()._maybe_climb()
        if len(self.history) == steps_before:
            return
        record = self.history[-1]
        if record.transformation == ROLLBACK_NAME:
            self.rollbacks += 1
            if self.recorder.enabled:
                self.recorder.rollback(
                    self.epoch,
                    record.context_number,
                    list(record.from_arcs),
                    list(record.to_arcs),
                )

    # -- introspection -------------------------------------------------

    def drift_report(self) -> Dict[str, object]:
        """JSON-ready drift status (mirrored into ``System.report()``)."""
        return {
            "epoch": self.epoch,
            "alarms": [
                {
                    "epoch": alarm.epoch,
                    "context_number": alarm.context_number,
                    "sources": list(alarm.sources),
                }
                for alarm in self.drift_alarms
            ],
            "rollbacks": self.rollbacks,
            "last_known_good": (
                list(self.last_known_good.arc_names())
                if self.last_known_good is not None else None
            ),
        }


# ----------------------------------------------------------------------
# PAO revalidation
# ----------------------------------------------------------------------

class PAORevalidationMonitor:
    """Flags when a PAO strategy's ``p̂`` estimates have gone stale.

    PAO is a one-shot learner: it spends its Equation 7/8 sample
    budget, fixes ``p̂``, and hands ``Υ_AOT`` a strategy that is
    ``ε``-optimal *for that distribution*.  This monitor watches the
    settled outcomes of the deployed strategy's retrievals with one
    drift detector per experiment arc (each running at ``δ/n`` so the
    union over arcs stays within ``delta``) and reports staleness as
    soon as any arc's success frequency drifts.  :meth:`revalidate`
    then re-draws the whole budget via a fresh
    :func:`~repro.learning.pao.pao` run and re-arms the monitor.
    """

    def __init__(
        self,
        graph: InferenceGraph,
        delta: float = 0.05,
        config: Optional[DriftConfig] = None,
        recorder: Recorder = NULL_RECORDER,
    ):
        if not 0.0 < delta < 1.0:
            raise LearningError(f"delta must be in (0, 1), got {delta}")
        self.graph = graph
        self.delta = delta
        self.recorder = recorder
        base = config if config is not None else DriftConfig()
        experiments = graph.experiments()
        per_arc = delta / max(len(experiments), 1)
        shared = base.to_dict()
        shared["delta"] = per_arc
        self.config = DriftConfig.from_dict(shared)
        self._detectors: Dict[str, object] = {
            arc.name: make_detector(self.config.detector, 1.0, self.config)
            for arc in experiments
        }
        self.stale_arcs: List[str] = []
        self.observations = 0

    @property
    def stale(self) -> bool:
        """True once any arc's frequency has drifted since (re)arming."""
        return bool(self.stale_arcs)

    def observe(self, arc_name: str, unblocked: bool) -> bool:
        """Fold one settled outcome in; True when this call went stale."""
        detector = self._detectors.get(arc_name)
        if detector is None:
            raise LearningError(f"unknown experiment arc {arc_name!r}")
        self.observations += 1
        if detector.update(1.0 if unblocked else 0.0):
            if arc_name not in self.stale_arcs:
                self.stale_arcs.append(arc_name)
            if self.recorder.enabled:
                self.recorder.drift_alarm(
                    0, self.observations, [f"pao:{arc_name}"]
                )
            return True
        return False

    def record(self, result: ExecutionResult) -> None:
        """Fold every settled observation of one run in."""
        for name, unblocked in result.observations.items():
            if name in self._detectors:
                self.observe(name, unblocked)

    def rearm(self) -> None:
        """Forget drift state (after a revalidation)."""
        self.stale_arcs.clear()
        for detector in self._detectors.values():
            detector.reset()

    def revalidate(
        self,
        epsilon: float,
        delta: float,
        oracle: Callable[[], Context],
        **pao_kwargs,
    ):
        """Re-draw the Equation 7/8 budget on the current distribution.

        Runs :func:`~repro.learning.pao.pao` afresh (all keyword
        arguments pass through), re-arms the detectors, and returns the
        new :class:`~repro.learning.pao.PAOResult` — whose guarantee
        now refers to the post-drift distribution.
        """
        from .pao import pao  # local import: pao is a sibling consumer

        result = pao(self.graph, epsilon, delta, oracle,
                     recorder=self.recorder, **pao_kwargs)
        self.rearm()
        return result

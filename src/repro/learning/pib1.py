"""PIB₁: the one-shot "smart filter" of Section 3.1.

PIB₁ guards a *single proposed transformation*: an overall optimizer
(the paper names DedGin*) proposes interchanging two sibling arcs
``r₁, r₂``; PIB₁ watches the current query processor solve contexts,
maintains three counters — the sample count ``m``, how often a success
was found under ``r₁`` (``k_p``), and how often under ``r₂`` but not
under ``r₁`` (``k_g``) — and permits the switch only when Equation 3
holds:

    k_g·f*(r₁) − k_p·f*(r₂)  ≥  (f*(r₁) + f*(r₂)) · sqrt(m/2 · ln(1/δ)),

which certifies ``C[Θ'] < C[Θ]`` with confidence ``1 − δ``.

Two observation routes are provided: :meth:`PIB1.observe` consumes a
monitored :class:`ExecutionResult` (deriving the counters from the
trace), and :meth:`PIB1.record_counts` takes the counters directly
(for replaying the paper's arithmetic).  The decision is one-shot —
Section 3.2's sequential schedule exists precisely because re-testing
with the same ``δ`` is unsound — so :meth:`decide` may be called once.
"""

from __future__ import annotations

from typing import Optional

from ..errors import LearningError
from ..graphs.inference_graph import InferenceGraph
from ..strategies.execution import ExecutionResult
from ..strategies.strategy import Strategy
from .chernoff import pib_sum_threshold

__all__ = ["PIB1"]


class PIB1:
    """One-shot statistical filter for a proposed sibling interchange.

    ``first`` is the arc the current strategy tries earlier (``r₁``,
    e.g. ``R_p`` in ``Θ₁``), ``second`` the later sibling (``r₂``).
    """

    def __init__(
        self,
        graph: InferenceGraph,
        strategy: Strategy,
        first: str,
        second: str,
        delta: float,
    ):
        if not 0.0 < delta < 1.0:
            raise LearningError(f"delta must be in (0, 1), got {delta}")
        arc_first = graph.arc(first)
        arc_second = graph.arc(second)
        if arc_first.source is not arc_second.source:
            raise LearningError(
                f"{first!r} and {second!r} must descend from a common node"
            )
        if strategy.position(first) > strategy.position(second):
            raise LearningError(
                f"{first!r} must precede {second!r} in the monitored strategy"
            )
        self.graph = graph
        self.strategy = strategy
        self.first = arc_first
        self.second = arc_second
        self.delta = delta
        self._first_subtree = {
            arc.name for arc in graph.subtree_arcs(arc_first)
        }
        self._second_subtree = {
            arc.name for arc in graph.subtree_arcs(arc_second)
        }
        # Section 3.1's three counters.
        self.m = 0
        self.k_p = 0
        self.k_g = 0
        self._decided = False

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def observe(self, result: ExecutionResult) -> None:
        """Update the counters from one monitored run of the strategy."""
        if result.strategy is not self.strategy:
            raise LearningError("PIB1 must observe runs of its own strategy")
        self.m += 1
        if result.succeeded and result.success_arc is not None:
            name = result.success_arc.name
            if name in self._first_subtree:
                self.k_p += 1
            elif name in self._second_subtree:
                self.k_g += 1

    def record_counts(self, m: int, k_p: int, k_g: int) -> None:
        """Load counters directly (e.g. to replay the paper's numbers)."""
        if min(m, k_p, k_g) < 0 or k_p + k_g > m:
            raise LearningError("inconsistent counters")
        self.m = m
        self.k_p = k_p
        self.k_g = k_g

    # ------------------------------------------------------------------
    # Decision
    # ------------------------------------------------------------------

    @property
    def estimated_gain(self) -> float:
        """The Δ̃ sum of Equation 3's left side:
        ``k_g·f*(r₁) − k_p·f*(r₂)``."""
        return (
            self.k_g * self.graph.f_star(self.first)
            - self.k_p * self.graph.f_star(self.second)
        )

    @property
    def threshold(self) -> float:
        """Equation 3's right side for the current sample count."""
        if self.m == 0:
            return float("inf")
        value_range = self.graph.f_star(self.first) + self.graph.f_star(
            self.second
        )
        return pib_sum_threshold(self.m, self.delta, value_range)

    def would_accept(self) -> bool:
        """Whether Equation 3 currently holds (non-committal peek)."""
        return self.m > 0 and self.estimated_gain >= self.threshold

    def decide(self) -> Optional[Strategy]:
        """One-shot decision: the swapped strategy if accepted, else ``None``.

        Raises on a second call — re-testing at the same ``δ`` is
        statistically unsound; use :class:`repro.learning.pib.PIB` for
        sequential testing.
        """
        if self._decided:
            raise LearningError(
                "PIB1 is a one-shot test; use PIB for sequential decisions"
            )
        self._decided = True
        if self.would_accept():
            return self.strategy.with_swap(self.first.name, self.second.name)
        return None

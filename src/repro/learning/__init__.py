"""The paper's learning algorithms: PIB₁, PIB, PALO, and PAO.

Plus their statistical underpinnings: Chernoff bounds and sample-size
formulas (Equations 1–3, 5–8), the light statistics collectors of
Section 5.1, and Lemma 1's sensitivity analysis.
"""

from .chernoff import (
    aiming_sample_size,
    chernoff_tail,
    confidence_radius,
    pao_sample_size,
    pib_sequential_threshold,
    pib_sum_threshold,
    samples_for_radius,
    sequential_confidence,
)
from .statistics import (
    DecayedDeltaAccumulator,
    DeltaAccumulator,
    RetrievalStatistics,
    WindowedRetrievalStatistics,
    delta_tilde,
)
from .pib1 import PIB1
from .pib import PIB, ClimbRecord
from .drift import (
    AdaptiveWindowDetector,
    DriftAlarm,
    DriftAwarePIB,
    DriftConfig,
    PageHinkleyDetector,
    PAORevalidationMonitor,
    RollbackTransformation,
    make_detector,
)
from .palo import PALO
from .pao import PAOResult, pao, sample_requirements
from .policy import PolicyPIB, PolicySwap, all_policy_swaps
from .sensitivity import excess_cost, lemma1_bound, sensitivity_report

__all__ = [
    "aiming_sample_size",
    "chernoff_tail",
    "confidence_radius",
    "pao_sample_size",
    "pib_sequential_threshold",
    "pib_sum_threshold",
    "samples_for_radius",
    "sequential_confidence",
    "DecayedDeltaAccumulator",
    "DeltaAccumulator",
    "RetrievalStatistics",
    "WindowedRetrievalStatistics",
    "delta_tilde",
    "PIB1",
    "PIB",
    "ClimbRecord",
    "AdaptiveWindowDetector",
    "DriftAlarm",
    "DriftAwarePIB",
    "DriftConfig",
    "PageHinkleyDetector",
    "PAORevalidationMonitor",
    "RollbackTransformation",
    "make_detector",
    "PALO",
    "PAOResult",
    "pao",
    "sample_requirements",
    "PolicyPIB",
    "PolicySwap",
    "all_policy_swaps",
    "excess_cost",
    "lemma1_bound",
    "sensitivity_report",
]

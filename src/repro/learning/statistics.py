"""Statistics collectors: the counters PIB and PAO maintain.

Section 5.1 stresses how light the bookkeeping is: "recording (at most)
the number of times a query processor attempts each database retrieval
and how often that retrieval succeeds … one or two counters per
retrieval".  :class:`RetrievalStatistics` is that pair of counters;
:class:`DeltaAccumulator` is the per-candidate running sum of the
conservative difference estimates ``Δ̃`` that PIB compares against the
Equation 6 threshold.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict

from ..graphs.inference_graph import InferenceGraph
from ..strategies.execution import ExecutionResult, pessimistic_cost
from ..strategies.strategy import Strategy
from ..strategies.transformations import Transformation

__all__ = [
    "RetrievalStatistics",
    "WindowedRetrievalStatistics",
    "DeltaAccumulator",
    "DecayedDeltaAccumulator",
    "delta_tilde",
]


class RetrievalStatistics:
    """Per-experiment (attempts, successes) counters.

    ``frequency(arc, fallback)`` returns the empirical success rate,
    or ``fallback`` for never-attempted arcs (Theorem 3 uses 0.5).
    """

    def __init__(self, graph: InferenceGraph):
        self.graph = graph
        self.attempts: Dict[str, int] = {
            arc.name: 0 for arc in graph.experiments()
        }
        self.successes: Dict[str, int] = {
            arc.name: 0 for arc in graph.experiments()
        }

    def record(self, result: ExecutionResult) -> None:
        """Fold one run's observations into the counters."""
        for name, unblocked in result.observations.items():
            self.attempts[name] += 1
            if unblocked:
                self.successes[name] += 1

    def frequency(self, arc_name: str, fallback: float = 0.5) -> float:
        attempts = self.attempts[arc_name]
        if attempts == 0:
            return fallback
        return self.successes[arc_name] / attempts

    def frequencies(self, fallback: float = 0.5) -> Dict[str, float]:
        """The full ``p̂`` vector."""
        return {name: self.frequency(name, fallback) for name in self.attempts}

    def total_attempts(self) -> int:
        return sum(self.attempts.values())


def delta_tilde(
    result: ExecutionResult, candidate: Strategy
) -> float:
    """The conservative under-estimate ``Δ̃[Θ, Θ', I]`` of Section 3.

    ``result`` is the monitored run of the *current* strategy on ``I``;
    the candidate's cost is evaluated against the pessimistic
    completion of the run's observations (unexplored retrievals
    blocked, unexplored reductions traversable), which can only
    over-state it.  Hence the returned value never exceeds the true
    ``Δ = c(Θ, I) − c(Θ', I)``.
    """
    return result.cost - pessimistic_cost(candidate, result.partial_context())


@dataclass
class DeltaAccumulator:
    """Running ``Δ̃[Θ, Θ', S]`` for one candidate transformation.

    ``value_range`` caches ``Λ[Θ, Θ']``, the Chernoff range of the
    per-sample differences.
    """

    transformation: Transformation
    candidate: Strategy
    value_range: float
    total: float = 0.0
    samples: int = 0

    def update(self, result: ExecutionResult) -> float:
        """Add one run's ``Δ̃`` and return it."""
        estimate = delta_tilde(result, self.candidate)
        self.total += estimate
        self.samples += 1
        return estimate

    @property
    def mean(self) -> float:
        return self.total / self.samples if self.samples else 0.0


class WindowedRetrievalStatistics(RetrievalStatistics):
    """Per-arc counters whose *frequencies* track a sliding window.

    The stationarity assumption behind Theorems 1–3 makes lifetime
    counters sufficient; under a drifting workload they average over
    regimes and go stale.  This variant keeps the lifetime ``attempts``
    / ``successes`` dicts (persistence and Section 5.1's bookkeeping
    story are unchanged) but answers :meth:`frequency` from only the
    most recent ``window`` observations per arc — the current-regime
    ``p̂`` the drift layer and a PAO revalidation want.
    """

    def __init__(self, graph: InferenceGraph, window: int = 200):
        super().__init__(graph)
        if window < 1:
            raise ValueError(f"window must be at least 1, got {window}")
        self.window = window
        self._recent: Dict[str, Deque[bool]] = {
            name: deque(maxlen=window) for name in self.attempts
        }

    def record(self, result: ExecutionResult) -> None:
        super().record(result)
        for name, unblocked in result.observations.items():
            self._recent[name].append(unblocked)

    def frequency(self, arc_name: str, fallback: float = 0.5) -> float:
        recent = self._recent[arc_name]
        if not recent:
            return fallback
        return sum(recent) / len(recent)

    def window_size(self, arc_name: str) -> int:
        """How many observations currently back ``frequency(arc_name)``."""
        return len(self._recent[arc_name])

    def reset_window(self) -> None:
        """Forget the windows (epoch boundary); lifetime counters stay."""
        for recent in self._recent.values():
            recent.clear()


@dataclass
class DecayedDeltaAccumulator(DeltaAccumulator):
    """A ``Δ̃`` accumulator with exponential forgetting.

    Each new sample first multiplies the running ``total`` (and the
    *effective* sample count) by ``decay``, so evidence from ``k``
    samples ago carries weight ``decay**k`` — estimates track the
    current regime instead of averaging over every regime ever seen.

    The decayed sum is **not** admissible in Equation 6: the Chernoff
    bound's ``n`` must count i.i.d. samples at full weight, so
    :class:`~repro.learning.drift.DriftAwarePIB` keeps plain
    per-epoch accumulators for its climb decisions and uses this class
    only where a regime-local *estimate* (not a guarantee) is wanted.
    ``samples`` stays the integer count of updates; ``effective_samples``
    is the decayed mass ``Σ decay**k``.
    """

    decay: float = 0.98
    effective_samples: float = field(default=0.0)

    def __post_init__(self) -> None:
        if not 0.0 < self.decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {self.decay}")

    def update(self, result: ExecutionResult) -> float:
        estimate = delta_tilde(result, self.candidate)
        self.total = self.total * self.decay + estimate
        self.effective_samples = self.effective_samples * self.decay + 1.0
        self.samples += 1
        return estimate

    @property
    def mean(self) -> float:
        """The exponentially-weighted mean ``Δ̃`` per sample."""
        if self.effective_samples <= 0.0:
            return 0.0
        return self.total / self.effective_samples

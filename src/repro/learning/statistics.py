"""Statistics collectors: the counters PIB and PAO maintain.

Section 5.1 stresses how light the bookkeeping is: "recording (at most)
the number of times a query processor attempts each database retrieval
and how often that retrieval succeeds … one or two counters per
retrieval".  :class:`RetrievalStatistics` is that pair of counters;
:class:`DeltaAccumulator` is the per-candidate running sum of the
conservative difference estimates ``Δ̃`` that PIB compares against the
Equation 6 threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..graphs.inference_graph import InferenceGraph
from ..strategies.execution import ExecutionResult, execute, pessimistic_cost
from ..strategies.strategy import Strategy
from ..strategies.transformations import Transformation

__all__ = ["RetrievalStatistics", "DeltaAccumulator", "delta_tilde"]


class RetrievalStatistics:
    """Per-experiment (attempts, successes) counters.

    ``frequency(arc, fallback)`` returns the empirical success rate,
    or ``fallback`` for never-attempted arcs (Theorem 3 uses 0.5).
    """

    def __init__(self, graph: InferenceGraph):
        self.graph = graph
        self.attempts: Dict[str, int] = {
            arc.name: 0 for arc in graph.experiments()
        }
        self.successes: Dict[str, int] = {
            arc.name: 0 for arc in graph.experiments()
        }

    def record(self, result: ExecutionResult) -> None:
        """Fold one run's observations into the counters."""
        for name, unblocked in result.observations.items():
            self.attempts[name] += 1
            if unblocked:
                self.successes[name] += 1

    def frequency(self, arc_name: str, fallback: float = 0.5) -> float:
        attempts = self.attempts[arc_name]
        if attempts == 0:
            return fallback
        return self.successes[arc_name] / attempts

    def frequencies(self, fallback: float = 0.5) -> Dict[str, float]:
        """The full ``p̂`` vector."""
        return {name: self.frequency(name, fallback) for name in self.attempts}

    def total_attempts(self) -> int:
        return sum(self.attempts.values())


def delta_tilde(
    result: ExecutionResult, candidate: Strategy
) -> float:
    """The conservative under-estimate ``Δ̃[Θ, Θ', I]`` of Section 3.

    ``result`` is the monitored run of the *current* strategy on ``I``;
    the candidate's cost is evaluated against the pessimistic
    completion of the run's observations (unexplored retrievals
    blocked, unexplored reductions traversable), which can only
    over-state it.  Hence the returned value never exceeds the true
    ``Δ = c(Θ, I) − c(Θ', I)``.
    """
    return result.cost - pessimistic_cost(candidate, result.partial_context())


@dataclass
class DeltaAccumulator:
    """Running ``Δ̃[Θ, Θ', S]`` for one candidate transformation.

    ``value_range`` caches ``Λ[Θ, Θ']``, the Chernoff range of the
    per-sample differences.
    """

    transformation: Transformation
    candidate: Strategy
    value_range: float
    total: float = 0.0
    samples: int = 0

    def update(self, result: ExecutionResult) -> float:
        """Add one run's ``Δ̃`` and return it."""
        estimate = delta_tilde(result, self.candidate)
        self.total += estimate
        self.samples += 1
        return estimate

    @property
    def mean(self) -> float:
        return self.total / self.samples if self.samples else 0.0

"""Lemma 1's sensitivity analysis of ``Υ_AOT``.

Lemma 1 bounds how much expected cost is lost by optimizing against an
estimated probability vector ``p̂`` instead of the truth ``P``:

    C_P[Θ_p̂] − C_P[Θ_P]  ≤  2·Σ_i F¬[e_i] · ρ(e_i) · |p_i − p̂_i|,

where ``ρ(e_i)`` (Definition 2) is the best-case probability of
reaching experiment ``e_i`` under ``P``.  This module computes both
sides so the ``bench_lemma1_sensitivity`` benchmark (and the property
tests) can confirm the bound empirically on randomized instances.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

from ..graphs.inference_graph import InferenceGraph
from ..strategies.expected_cost import expected_cost_exact, reach_probability
from ..strategies.strategy import Strategy

__all__ = ["lemma1_bound", "excess_cost", "sensitivity_report"]


def lemma1_bound(
    graph: InferenceGraph,
    p_true: Mapping[str, float],
    p_estimate: Mapping[str, float],
) -> float:
    """The right-hand side of Lemma 1."""
    total = 0.0
    for arc in graph.experiments():
        total += (
            graph.f_not(arc)
            * reach_probability(graph, arc, p_true)
            * abs(p_true[arc.name] - p_estimate[arc.name])
        )
    return 2.0 * total


def excess_cost(
    graph: InferenceGraph,
    p_true: Mapping[str, float],
    p_estimate: Mapping[str, float],
    upsilon: Optional[Callable[[InferenceGraph, Mapping[str, float]], Strategy]] = None,
) -> float:
    """The left-hand side: ``C_P[Θ_p̂] − C_P[Θ_P]``.

    Both strategies are produced by ``upsilon`` (default ``Υ_AOT``) and
    evaluated under the *true* distribution.
    """
    if upsilon is None:
        from ..optimal.upsilon import upsilon_aot as upsilon

    theta_estimate = upsilon(graph, p_estimate)
    theta_true = upsilon(graph, p_true)
    return expected_cost_exact(theta_estimate, p_true) - expected_cost_exact(
        theta_true, p_true
    )


def sensitivity_report(
    graph: InferenceGraph,
    p_true: Mapping[str, float],
    p_estimate: Mapping[str, float],
) -> Dict[str, float]:
    """Both sides of Lemma 1 plus the per-experiment contributions."""
    report: Dict[str, float] = {
        "excess_cost": excess_cost(graph, p_true, p_estimate),
        "lemma1_bound": lemma1_bound(graph, p_true, p_estimate),
    }
    for arc in graph.experiments():
        report[f"term[{arc.name}]"] = (
            2.0
            * graph.f_not(arc)
            * reach_probability(graph, arc, p_true)
            * abs(p_true[arc.name] - p_estimate[arc.name])
        )
    return report

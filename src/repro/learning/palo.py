"""PALO: probably approximately locally optimal hill-climbing [CG91].

Section 3.2's third closing comment relates PIB to PALO: "While PIB
will continue collecting samples and potentially moving to new
strategies indefinitely, PALO will stop when it reaches an ε-local
optimum — a ``Θ_m`` with ``∀Θ ∈ T(Θ_m): C[Θ] ≥ C[Θ_m] − ε``."

Certifying the *stop* condition needs an upper confidence bound on each
``D[Θ, Θ'] = C[Θ] − C[Θ']``, which PIB's one-sided under-estimates
``Δ̃`` cannot give.  PALO therefore observes the exact per-context
differences ``Δ_i = c(Θ, I_i) − c(Θ', I_i)`` — which requires evaluating
the neighbour on the *full* context, the [CG91] setting where the
sampled utilities are unbiased.  (In a deployed query processor this
corresponds to replaying the query against the neighbour strategy;
benchmark-wise it costs one extra simulated execution per neighbour.)

Both the climb and the stop test reuse the sequential Chernoff
schedule, so with probability ``1 − δ`` every climb is a true
improvement *and* the returned strategy is a true ε-local optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..errors import LearningError, SampleBudgetExceeded
from ..graphs.contexts import Context
from ..graphs.inference_graph import InferenceGraph
from ..strategies.execution import ExecutionResult, execute
from ..strategies.strategy import Strategy
from ..strategies.transformations import (
    Transformation,
    all_sibling_swaps,
    neighbours,
)
from .chernoff import confidence_radius, sequential_confidence
from .pib import ClimbRecord

__all__ = ["PALO"]


@dataclass
class _ExactAccumulator:
    """Running sum of the exact differences for one neighbour."""

    transformation: Transformation
    candidate: Strategy
    value_range: float
    total: float = 0.0
    samples: int = 0

    @property
    def mean(self) -> float:
        return self.total / self.samples if self.samples else 0.0


class PALO:
    """Hill-climb until an ε-local optimum can be certified.

    Usage mirrors :class:`repro.learning.pib.PIB`: feed contexts to
    :meth:`process` until :attr:`converged` is true (or call
    :meth:`run`).
    """

    def __init__(
        self,
        graph: InferenceGraph,
        epsilon: float,
        delta: float = 0.05,
        initial_strategy: Optional[Strategy] = None,
        transformations: Optional[Sequence[Transformation]] = None,
        test_every: int = 1,
    ):
        if epsilon <= 0:
            raise LearningError(f"epsilon must be positive, got {epsilon}")
        if not 0.0 < delta < 1.0:
            raise LearningError(f"delta must be in (0, 1), got {delta}")
        self.graph = graph
        self.epsilon = epsilon
        self.delta = delta
        self.test_every = max(1, test_every)
        self.strategy = initial_strategy or Strategy.depth_first(graph)
        self.transformations: List[Transformation] = list(
            transformations if transformations is not None
            else all_sibling_swaps(graph)
        )
        self.total_tests = 0
        self.contexts_processed = 0
        self.history: List[ClimbRecord] = []
        self.converged = False
        self._accumulators: List[_ExactAccumulator] = []
        self._since_last_test = 0
        self._rebuild_neighbourhood()

    def _rebuild_neighbourhood(self) -> None:
        self._accumulators = [
            _ExactAccumulator(
                transformation,
                candidate,
                transformation.chernoff_range(self.graph),
            )
            for transformation, candidate in neighbours(
                self.strategy, self.transformations
            )
        ]
        self._since_last_test = 0
        if not self._accumulators:
            self.converged = True  # no neighbours: trivially locally optimal

    # ------------------------------------------------------------------

    def process(self, context: Context) -> ExecutionResult:
        """Answer one context; update statistics; maybe climb or stop."""
        if self.converged:
            raise LearningError("PALO has converged; no further samples needed")
        result = execute(self.strategy, context)
        self.contexts_processed += 1
        for accumulator in self._accumulators:
            accumulator.total += result.cost - execute(
                accumulator.candidate, context
            ).cost
            accumulator.samples += 1
        # One climb test and one stop test per neighbour.
        self.total_tests += 2 * len(self._accumulators)
        self._since_last_test += 1
        if self._since_last_test >= self.test_every:
            self._since_last_test = 0
            self._climb_or_stop()
        return result

    def run(
        self,
        oracle: Callable[[], Context],
        max_contexts: int,
    ) -> Strategy:
        """Feed oracle draws until convergence; raise if the budget ends
        first."""
        for _ in range(max_contexts):
            self.process(oracle())
            if self.converged:
                return self.strategy
        raise SampleBudgetExceeded(
            f"PALO did not certify an {self.epsilon}-local optimum within "
            f"{max_contexts} contexts"
        )

    # ------------------------------------------------------------------

    def _radius(self, accumulator: _ExactAccumulator) -> float:
        delta_i = sequential_confidence(self.total_tests, self.delta)
        return confidence_radius(
            accumulator.samples, delta_i, accumulator.value_range
        )

    def _climb_or_stop(self) -> None:
        best: Optional[_ExactAccumulator] = None
        best_margin = 0.0
        all_below_epsilon = True
        for accumulator in self._accumulators:
            radius = self._radius(accumulator)
            # Climb when the lower confidence bound on D is positive.
            margin = accumulator.mean - radius
            if margin > 0.0 and (best is None or margin > best_margin):
                best = accumulator
                best_margin = margin
            # The stop test needs *every* upper bound under ε.
            if accumulator.mean + radius > self.epsilon:
                all_below_epsilon = False
        if best is not None:
            self.history.append(
                ClimbRecord(
                    step=len(self.history) + 1,
                    context_number=self.contexts_processed,
                    transformation=best.transformation.name,
                    samples=best.samples,
                    estimated_gain=best.total,
                    threshold=best.samples * self._radius(best),
                    from_arcs=self.strategy.arc_names(),
                    to_arcs=best.candidate.arc_names(),
                )
            )
            self.strategy = best.candidate
            self._rebuild_neighbourhood()
            return
        if all_below_epsilon:
            self.converged = True

"""The shared argparse ↔ typed-config bridge.

Every CLI flag family used to be parsed by a hand-rolled
``_<family>_from_args`` helper inside ``cli.py``; each one is now a
declarative :class:`FlagAdapter`: the flag declarations and the
builder that folds a parsed namespace into the family's typed config
live together, and every subcommand builds its configs the same way —
``ADAPTER.install(parser)`` at parser-construction time,
``ADAPTER.build(args)`` at dispatch time.

An adapter's builder returns the family's config dataclass (or
``None`` when the family's flags are all at their "off" defaults, for
families whose absence means a byte-identical legacy path).  Builders
contain no policy of their own — validation lives in the config
dataclasses' ``__post_init__``.
"""

from __future__ import annotations

import argparse
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from .serving.config import (
    SHED_POLICIES,
    AdmissionConfig,
    CacheConfig,
    ExperienceConfig,
    SessionConfig,
)
from .storage.config import STORE_BACKENDS, StoreConfig
from .strategies.engines import ENGINE_NAMES

__all__ = [
    "FlagAdapter",
    "ADMISSION_FLAGS",
    "CACHE_FLAGS",
    "EXPERIENCE_FLAGS",
    "SESSION_FLAGS",
    "STORE_FLAGS",
]


class FlagAdapter:
    """One flag family: declarations plus the namespace→config fold.

    ``flags`` is a sequence of ``(flag, add_argument_kwargs)`` pairs;
    ``build`` takes the parsed :class:`argparse.Namespace` and returns
    the family's typed config.  Missing attributes (an adapter whose
    flags were never installed on this subcommand) read as each flag's
    declared ``default``, so a builder can be shared across
    subcommands that install different subsets.
    """

    def __init__(
        self,
        name: str,
        flags: Sequence[Tuple[str, Dict[str, Any]]],
        build: Callable[["FlagAdapter", argparse.Namespace], Any],
    ) -> None:
        self.name = name
        self.flags = tuple((flag, dict(kwargs)) for flag, kwargs in flags)
        self._build = build
        self._defaults = {
            self.dest(flag): kwargs.get(
                "default", False if kwargs.get("action") else None
            )
            for flag, kwargs in self.flags
        }

    @staticmethod
    def dest(flag: str) -> str:
        """argparse's attribute name for a ``--flag-name``."""
        return flag.lstrip("-").replace("-", "_")

    def install(self, parser: argparse.ArgumentParser) -> None:
        """Declare every flag of the family on ``parser``."""
        for flag, kwargs in self.flags:
            parser.add_argument(flag, **kwargs)

    def get(self, args: argparse.Namespace, flag: str) -> Any:
        """The parsed value of one flag (its default when the flag was
        not installed on this subcommand's parser)."""
        return getattr(args, self.dest(flag), self._defaults[self.dest(flag)])

    def build(self, args: argparse.Namespace) -> Any:
        """Fold the namespace into the family's typed config."""
        return self._build(self, args)


# ----------------------------------------------------------------------
# Experience (cross-session warm-start)
# ----------------------------------------------------------------------


def _build_experience(
    adapter: FlagAdapter, args: argparse.Namespace
) -> Optional[ExperienceConfig]:
    enabled = adapter.get(args, "--experience")
    path = adapter.get(args, "--experience-path")
    if not enabled and path is None:
        return None
    return ExperienceConfig(
        path=path,
        enabled=True,
        neighbour_k=adapter.get(args, "--experience-neighbours"),
    )


EXPERIENCE_FLAGS = FlagAdapter(
    "experience",
    [
        ("--experience", dict(
            action="store_true",
            help="warm-start each form's learner from the cross-session "
                 "experience store (priors only; Theorem 1 untouched)",
        )),
        ("--experience-path", dict(
            default=None,
            help="JSON experience-store file (implies --experience; "
                 "omit for a memory-only store)",
        )),
        ("--experience-neighbours", dict(
            type=int, default=3,
            help="structural neighbours considered per form",
        )),
    ],
    _build_experience,
)


# ----------------------------------------------------------------------
# Session (learning knobs)
# ----------------------------------------------------------------------


def _build_session(
    adapter: FlagAdapter, args: argparse.Namespace
) -> SessionConfig:
    config = SessionConfig.from_options(
        delta=adapter.get(args, "--delta"),
        max_depth=adapter.get(args, "--max-depth"),
        retries=adapter.get(args, "--retries"),
        deadline=adapter.get(args, "--deadline"),
        checkpoint_dir=adapter.get(args, "--checkpoint-dir"),
        checkpoint_every=adapter.get(args, "--checkpoint-every"),
        drift=adapter.get(args, "--drift"),
        drift_delta=adapter.get(args, "--drift-delta"),
        drift_detector=adapter.get(args, "--drift-detector"),
        engine=adapter.get(args, "--engine"),
    )
    experience = EXPERIENCE_FLAGS.build(args)
    if experience is not None:
        config = config.with_overrides(experience=experience)
    return config


SESSION_FLAGS = FlagAdapter(
    "session",
    [
        ("--delta", dict(
            type=float, default=0.05,
            help="PIB mistake budget (Theorem 1)",
        )),
        ("--max-depth", dict(type=int, default=None)),
        ("--engine", dict(
            default="topdown", choices=ENGINE_NAMES,
            help="fallback evaluation engine for unlearnable forms "
                 "(topdown SLD, bottomup fixpoint, or qsqn nets)",
        )),
        ("--retries", dict(
            type=int, default=0,
            help="retry faulted retrievals up to N attempts "
                 "(enables the resilience layer)",
        )),
        ("--deadline", dict(
            type=float, default=None,
            help="per-query cost budget; over-budget queries degrade "
                 "to the SLD fallback",
        )),
        ("--checkpoint-dir", dict(
            default=None,
            help="directory for crash-safe per-form PIB checkpoints "
                 "(resumes automatically)",
        )),
        ("--checkpoint-every", dict(
            type=int, default=25,
            help="checkpoint each form every N queries",
        )),
        ("--drift", dict(
            action="store_true",
            help="drift-aware learning: detect distribution shifts and "
                 "restart the guarantee per epoch",
        )),
        ("--drift-delta", dict(
            type=float, default=0.05,
            help="detector false-alarm budget",
        )),
        ("--drift-detector", dict(
            default="window", choices=("window", "page-hinkley"),
            help="change detector (adaptive window or Page-Hinkley)",
        )),
    ],
    _build_session,
)


# ----------------------------------------------------------------------
# Cache (two-tier serving cache)
# ----------------------------------------------------------------------


def _build_cache(
    adapter: FlagAdapter, args: argparse.Namespace
) -> CacheConfig:
    base = (
        CacheConfig.default_enabled()
        if adapter.get(args, "--cache")
        else CacheConfig()
    )
    answers = adapter.get(args, "--cache-answers")
    subgoals = adapter.get(args, "--cache-subgoals")
    return CacheConfig(
        answer_capacity=(
            answers if answers is not None else base.answer_capacity
        ),
        subgoal_capacity=(
            subgoals if subgoals is not None else base.subgoal_capacity
        ),
    )


CACHE_FLAGS = FlagAdapter(
    "cache",
    [
        ("--cache", dict(
            action="store_true",
            help="enable both cache tiers at default capacities",
        )),
        ("--cache-answers", dict(
            type=int, default=None,
            help="ground-answer cache capacity (0 disables)",
        )),
        ("--cache-subgoals", dict(
            type=int, default=None,
            help="subgoal memo capacity (0 disables)",
        )),
    ],
    _build_cache,
)


# ----------------------------------------------------------------------
# Admission (overload protection)
# ----------------------------------------------------------------------


def _build_admission(
    adapter: FlagAdapter, args: argparse.Namespace
) -> Optional[AdmissionConfig]:
    queue_cap = adapter.get(args, "--queue-cap")
    tenants = adapter.get(args, "--tenants")
    quota = adapter.get(args, "--quota")
    deadline = adapter.get(args, "--request-deadline")
    wanted = (
        queue_cap is not None or tenants > 0 or quota > 0
        or deadline is not None
    )
    if not wanted:
        return None
    return AdmissionConfig(
        queue_capacity=queue_cap if queue_cap is not None else 64,
        tenant_rate=quota,
        shed_policy=adapter.get(args, "--shed-policy"),
        deadline=deadline,
    )


ADMISSION_FLAGS = FlagAdapter(
    "admission",
    [
        ("--tenants", dict(
            type=int, default=0,
            help="model N synthetic tenants (round-robin over the "
                 "stream); implies admission control",
        )),
        ("--quota", dict(
            type=float, default=0.0,
            help="per-tenant token-bucket rate "
                 "(tokens per arrival; 0 = unlimited)",
        )),
        ("--queue-cap", dict(
            type=int, default=None,
            help="per-form admission queue capacity "
                 "(setting it enables admission control)",
        )),
        ("--shed-policy", dict(
            default="reject-newest", choices=SHED_POLICIES,
            help="who loses under overload",
        )),
        ("--request-deadline", dict(
            type=float, default=None,
            help="per-request latency budget in cost units "
                 "(queue wait + service on the form clock)",
        )),
    ],
    _build_admission,
)


# ----------------------------------------------------------------------
# Store (fact-storage backend)
# ----------------------------------------------------------------------


def _build_store(
    adapter: FlagAdapter, args: argparse.Namespace
) -> StoreConfig:
    return StoreConfig(
        backend=adapter.get(args, "--store"),
        shards=adapter.get(args, "--store-shards"),
        seed=adapter.get(args, "--store-seed"),
        fault_rate=adapter.get(args, "--store-fault-rate"),
        timeout_rate=adapter.get(args, "--store-timeout-rate"),
        replicas=adapter.get(args, "--store-replicas"),
    )


STORE_FLAGS = FlagAdapter(
    "store",
    [
        ("--store", dict(
            default="memory", choices=STORE_BACKENDS,
            help="fact-storage backend for --facts",
        )),
        ("--store-shards", dict(
            type=int, default=3,
            help="shard count for --store federated",
        )),
        ("--store-seed", dict(
            type=int, default=0,
            help="fault-plan seed for --store federated",
        )),
        ("--store-fault-rate", dict(
            type=float, default=0.0,
            help="per-shard fault rate for --store federated",
        )),
        ("--store-timeout-rate", dict(
            type=float, default=0.0,
            help="per-shard timeout rate for --store federated",
        )),
        ("--store-replicas", dict(
            action="store_true",
            help="give every federated shard a clean replica for "
                 "hedged reads",
        )),
    ],
    _build_store,
)

"""Saving and restoring learned state as JSON.

The paper's guarantees rest on a *stationary* context distribution
(assumption [3], Section 5.1) — which makes everything the learners
accumulate durable across sessions: per-retrieval counters, the
``Δ̃`` sums per candidate transformation, the sequential-test counter
``i`` (which must keep growing across restarts or the δ-budget
accounting breaks), and the current strategy.

Formats are plain JSON — no pickling, so state files are inspectable
and safe to load.  Graphs themselves are *not* serialized: state is
restored against a freshly built graph, and every arc/transformation
reference is validated against it.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from typing import Dict, Optional

from .errors import CheckpointError, LearningError
from .graphs.inference_graph import InferenceGraph
from .learning.drift import DriftAlarm, DriftAwarePIB, DriftConfig
from .learning.pib import ClimbRecord, PIB
from .strategies.strategy import Strategy
from .strategies.transformations import (
    PathPromotion,
    SiblingSwap,
    Transformation,
)

__all__ = [
    "strategy_to_dict",
    "strategy_from_dict",
    "transformation_from_name",
    "pib_to_dict",
    "pib_from_dict",
    "migrate_payload",
    "save_pib",
    "load_pib",
    "backup_path",
    "payload_checksum",
]

_SWAP_RE = re.compile(r"^swap\(([^,()]+),([^,()]+)\)$")
_PROMOTE_RE = re.compile(r"^promote\(([^()]+)\)$")

#: v1: the PR 1 format (plain PIB state, no drift key).
#: v2: adds the nullable ``drift`` key carrying the epoch protocol's
#: state for :class:`~repro.learning.drift.DriftAwarePIB` checkpoints;
#: v1 files load through :func:`migrate_payload`.
_FORMAT_VERSION = 2

#: Payload keys :func:`pib_from_dict` indexes; validated up front so a
#: truncated or hand-edited file fails with one clear error instead of
#: a raw ``KeyError`` deep in the restore.
_REQUIRED_KEYS = (
    "version",
    "delta",
    "test_every",
    "total_tests",
    "contexts_processed",
    "strategy",
    "transformations",
    "retrieval_statistics",
    "accumulators",
    "history",
    "drift",
)


def strategy_to_dict(strategy: Strategy) -> Dict[str, object]:
    """A JSON-ready description of a strategy (arc names in order)."""
    return {"arcs": list(strategy.arc_names())}


def strategy_from_dict(
    graph: InferenceGraph, payload: Dict[str, object]
) -> Strategy:
    """Rebuild a strategy against ``graph``; legality is re-validated."""
    arcs = payload.get("arcs")
    if not isinstance(arcs, list):
        raise LearningError("strategy payload needs an 'arcs' list")
    return Strategy(graph, [str(name) for name in arcs])


def transformation_from_name(name: str) -> Transformation:
    """Reconstruct a transformation from its display name.

    Supports the two built-in operator families (``swap(a,b)`` and
    ``promote(r)``); custom transformation classes need their own
    persistence.
    """
    swap = _SWAP_RE.match(name)
    if swap:
        return SiblingSwap(swap.group(1), swap.group(2))
    promotion = _PROMOTE_RE.match(name)
    if promotion:
        return PathPromotion(promotion.group(1))
    raise LearningError(f"unknown transformation name {name!r}")


def _drift_to_dict(pib: PIB) -> Optional[Dict[str, object]]:
    """The v2 ``drift`` key: epoch state for drift-aware learners.

    ``None`` for vanilla PIB.  Detector windows are deliberately *not*
    serialized: they refill within ``max_window`` samples of a restart,
    whereas the epoch counter, alarm log, and last-known-good strategy
    are irrecoverable and must survive.
    """
    if not isinstance(pib, DriftAwarePIB):
        return None
    return {
        "config": pib.drift_config.to_dict(),
        "epoch": pib.epoch,
        "rollbacks": pib.rollbacks,
        "epoch_started_at": pib._epoch_started_at,
        "alarms": [
            {
                "epoch": alarm.epoch,
                "context_number": alarm.context_number,
                "sources": list(alarm.sources),
            }
            for alarm in pib.drift_alarms
        ],
        "last_known_good": (
            strategy_to_dict(pib.last_known_good)
            if pib.last_known_good is not None else None
        ),
    }


def pib_to_dict(pib: PIB) -> Dict[str, object]:
    """Serialize a PIB learner's full resumable state."""
    return {
        "version": _FORMAT_VERSION,
        "drift": _drift_to_dict(pib),
        "delta": pib.delta,
        "test_every": pib.test_every,
        "total_tests": pib.total_tests,
        "contexts_processed": pib.contexts_processed,
        "strategy": strategy_to_dict(pib.strategy),
        "transformations": [t.name for t in pib.transformations],
        "retrieval_statistics": {
            "attempts": dict(pib.retrieval_statistics.attempts),
            "successes": dict(pib.retrieval_statistics.successes),
        },
        "accumulators": [
            {
                "transformation": accumulator.transformation.name,
                "total": accumulator.total,
                "samples": accumulator.samples,
            }
            for accumulator in pib._accumulators
        ],
        "history": [
            {
                "step": record.step,
                "context_number": record.context_number,
                "transformation": record.transformation,
                "samples": record.samples,
                "estimated_gain": record.estimated_gain,
                "threshold": record.threshold,
                "from_arcs": list(record.from_arcs),
                "to_arcs": list(record.to_arcs),
            }
            for record in pib.history
        ],
    }


def migrate_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """Upgrade an older-format payload to the current version.

    v1 → v2: the ``drift`` key did not exist (v1 predates the drift
    layer), so the migrated learner is a vanilla PIB — exactly what the
    v1 file described.  Migration never mutates its input; unknown or
    future versions raise :class:`~repro.errors.CheckpointError` (a
    newer build's file is not something this one can safely guess at).
    """
    if not isinstance(payload, dict):
        raise CheckpointError(
            f"PIB state payload must be an object, got {type(payload).__name__}"
        )
    version = payload.get("version")
    if version == _FORMAT_VERSION:
        return payload
    if version == 1:
        upgraded = dict(payload)
        upgraded["version"] = 2
        upgraded["drift"] = None
        return upgraded
    raise CheckpointError(
        f"unsupported PIB state version {version!r} "
        f"(this build reads versions 1..{_FORMAT_VERSION})"
    )


def pib_from_dict(
    graph: InferenceGraph,
    payload: Dict[str, object],
    drift: Optional[DriftConfig] = None,
) -> PIB:
    """Rebuild a PIB learner on ``graph`` from :func:`pib_to_dict` output.

    The restored learner continues exactly where the saved one stopped:
    same strategy, same ``Δ̃`` sums, same sequential-test counter — so
    Theorem 1's budget keeps holding across the save/load boundary.

    Older format versions are upgraded via :func:`migrate_payload`
    first.  ``drift`` requests a
    :class:`~repro.learning.drift.DriftAwarePIB` with that config even
    when the checkpoint has no drift state (e.g. a migrated v1 file in
    a system that has since turned drift awareness on) — the learned
    strategy and statistics carry over, the epoch protocol starts
    fresh.  When the checkpoint itself carries drift state, it wins.
    """
    payload = migrate_payload(payload)
    missing = [key for key in _REQUIRED_KEYS if key not in payload]
    if missing:
        raise CheckpointError(
            "PIB state payload is missing required keys: "
            + ", ".join(missing)
        )
    try:
        return _pib_from_validated(graph, payload, drift)
    except LearningError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        raise CheckpointError(
            f"malformed PIB state payload: {error!r}"
        ) from error


def _pib_from_validated(
    graph: InferenceGraph,
    payload: Dict[str, object],
    drift: Optional[DriftConfig] = None,
) -> PIB:
    transformations = [
        transformation_from_name(str(name))
        for name in payload["transformations"]
    ]
    drift_state = payload["drift"]
    if drift_state is not None:
        config = DriftConfig.from_dict(drift_state.get("config", {}))
    elif drift is not None:
        config = drift
    else:
        config = None

    if config is None:
        pib = PIB(
            graph,
            delta=float(payload["delta"]),
            initial_strategy=strategy_from_dict(graph, payload["strategy"]),
            transformations=transformations,
            test_every=int(payload["test_every"]),
        )
    else:
        pib = DriftAwarePIB(
            graph,
            delta=float(payload["delta"]),
            initial_strategy=strategy_from_dict(graph, payload["strategy"]),
            transformations=transformations,
            test_every=int(payload["test_every"]),
            drift=config,
        )
        if drift_state is not None:
            pib.epoch = int(drift_state["epoch"])
            pib.rollbacks = int(drift_state["rollbacks"])
            pib._epoch_started_at = int(drift_state["epoch_started_at"])
            pib.drift_alarms = [
                DriftAlarm(
                    epoch=int(alarm["epoch"]),
                    context_number=int(alarm["context_number"]),
                    sources=tuple(str(s) for s in alarm["sources"]),
                )
                for alarm in drift_state["alarms"]
            ]
            saved_good = drift_state["last_known_good"]
            if saved_good is not None:
                pib.last_known_good = strategy_from_dict(graph, saved_good)
            # Re-derive the neighbourhood now that last-known-good is
            # known: a differing snapshot re-adds the standing rollback
            # candidate, whose saved Δ̃ evidence is mapped back below.
            pib._rebuild_neighbourhood()
    pib.total_tests = int(payload["total_tests"])
    pib.contexts_processed = int(payload["contexts_processed"])

    stats = payload["retrieval_statistics"]
    for name, value in stats["attempts"].items():
        if name not in pib.retrieval_statistics.attempts:
            raise LearningError(f"saved counters name unknown arc {name!r}")
        pib.retrieval_statistics.attempts[name] = int(value)
    for name, value in stats["successes"].items():
        pib.retrieval_statistics.successes[name] = int(value)

    saved_accumulators = {
        str(item["transformation"]): item for item in payload["accumulators"]
    }
    for accumulator in pib._accumulators:
        saved = saved_accumulators.pop(accumulator.transformation.name, None)
        if saved is not None:
            accumulator.total = float(saved["total"])
            accumulator.samples = int(saved["samples"])
    if saved_accumulators:
        raise LearningError(
            "saved state has accumulators for unknown transformations: "
            + ", ".join(sorted(saved_accumulators))
        )

    pib.history = [
        ClimbRecord(
            step=int(item["step"]),
            context_number=int(item["context_number"]),
            transformation=str(item["transformation"]),
            samples=int(item["samples"]),
            estimated_gain=float(item["estimated_gain"]),
            threshold=float(item["threshold"]),
            from_arcs=tuple(item["from_arcs"]),
            to_arcs=tuple(item["to_arcs"]),
        )
        for item in payload["history"]
    ]
    return pib


def payload_checksum(payload: Dict[str, object]) -> str:
    """SHA-256 over the canonical JSON of ``payload`` sans checksum.

    Canonical form (sorted keys, tight separators) makes the digest a
    pure function of the *state*, independent of how the file was
    pretty-printed — so a byte-level comparison of two checkpoints can
    use the checksum alone.
    """
    body = {key: value for key, value in payload.items() if key != "checksum"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def backup_path(path: str) -> str:
    """Where :func:`save_pib` parks the previous good checkpoint."""
    return path + ".bak"


def save_pib(pib: PIB, path: str) -> None:
    """Atomically write a learner's state to ``path`` as JSON.

    Crash-safety contract (exercised in ``tests/test_crash_recovery``):
    the state is written to a temporary sibling, flushed and fsynced,
    and only then swapped in with :func:`os.replace`; the previously
    good checkpoint is first swapped to ``path + ".bak"``.  A crash at
    *any* step leaves either the old checkpoint, the backup, or both
    intact — never a world with only a torn file: the checkpoint and
    its backup are untouched until the temp write has fully synced, a
    write that dies mid-stream (full disk, kill) removes its own torn
    temp file, and the directory is fsynced after the renames so the
    swap itself survives power loss.  Payloads carry a SHA-256
    ``checksum`` so :func:`load_pib` detects torn or edited files and
    falls back to the backup.
    """
    payload = pib_to_dict(pib)
    payload["checksum"] = payload_checksum(payload)
    tmp_path = path + ".tmp"
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
    except BaseException:
        # The write died mid-stream: the real checkpoint and its
        # backup were never touched, so just clear the torn temp file
        # (a later recovery scan must never mistake it for state).
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    if os.path.exists(path):
        os.replace(path, backup_path(path))
    os.replace(tmp_path, path)
    directory = os.path.dirname(os.path.abspath(path))
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # e.g. Windows: directories are not fsyncable
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def _load_payload(path: str) -> Dict[str, object]:
    """One file's payload, checksum-verified; :class:`CheckpointError`
    on any missing/torn/corrupt condition."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError as error:
        raise CheckpointError("checkpoint file not found", path) from error
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as error:
        raise CheckpointError(
            f"checkpoint is not readable JSON: {error}", path
        ) from error
    if not isinstance(payload, dict):
        raise CheckpointError("checkpoint is not a JSON object", path)
    recorded = payload.get("checksum")
    if recorded is not None and recorded != payload_checksum(payload):
        raise CheckpointError("checkpoint checksum mismatch", path)
    return payload


def load_pib(
    graph: InferenceGraph,
    path: str,
    drift: Optional[DriftConfig] = None,
) -> PIB:
    """Restore a learner saved by :func:`save_pib` against ``graph``.

    Recovery order: ``path`` itself, then — if ``path`` is missing,
    torn, or fails its checksum — the ``path + ".bak"`` backup that
    :func:`save_pib` keeps.  Only when both are unusable does the
    :class:`~repro.errors.CheckpointError` propagate, describing both
    failures.  Older format versions (v1) upgrade transparently via
    :func:`migrate_payload`; ``drift`` is forwarded to
    :func:`pib_from_dict` for callers that want a drift-aware learner
    regardless of what the checkpoint recorded.
    """
    try:
        return pib_from_dict(graph, _load_payload(path), drift)
    except CheckpointError as primary:
        fallback = backup_path(path)
        if not os.path.exists(fallback):
            raise
        try:
            return pib_from_dict(graph, _load_payload(fallback), drift)
        except CheckpointError as secondary:
            raise CheckpointError(
                f"checkpoint and backup both unusable: {primary}; {secondary}",
                path,
            ) from secondary

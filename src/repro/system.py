"""The integrated self-optimizing query processor (Figure 4).

Figure 4 of the paper sketches the overall architecture: queries flow
through the query processor, PIB watches the executions, and every so
often it tells the processor to switch strategies.  This module wires
the whole stack together behind one call:

    >>> qp = SelfOptimizingQueryProcessor(rule_base)
    >>> answer = qp.query(parse_query("instructor(manolis)"), database)

Per *query form* (``instructor^(b)``, ``age^(bf)``, …) the processor
lazily compiles an inference graph, attaches a PIB learner, and
executes incoming queries by walking the graph in the current
strategy's order against a :class:`LazyDatalogContext` — so the
database sees exactly the retrievals the strategy attempts, monitored
or not (Section 5.1's unobtrusiveness).  Successful runs return the
binding produced by the winning retrieval.

Queries whose form cannot be compiled to a (disjunctive, acyclic)
inference graph fall back to the plain SLD engine; learning simply
does not apply to them, matching the paper's scope.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from .datalog.database import Database
from .experience.fingerprint import FormProfile, form_profile
from .experience.store import ExperienceStore
from .experience.warmstart import (
    WarmStart,
    record_from_learner,
    warm_start,
)
from .datalog.rules import QueryForm, RuleBase
from .datalog.terms import Atom, Substitution
from .errors import (
    CheckpointError,
    GraphError,
    RecursionLimitError,
    ResilienceError,
)
from .graphs.builder import build_inference_graph
from .graphs.contexts import (
    LazyDatalogContext,
    MemoizedDatalogContext,
    _instantiate,
)
from .graphs.inference_graph import InferenceGraph
from .learning.drift import DriftAwarePIB
from .learning.pib import ClimbRecord, PIB
from .observability.recorder import NULL_RECORDER, Recorder
from .persistence import load_pib, save_pib
from .serving.config import SessionConfig
from .storage.interface import COMPLETE, Completeness
from .strategies.engines import make_engine
from .strategies.execution import execute, execute_resilient
from .strategies.strategy import Strategy
from .strategies.transformations import all_sibling_swaps

__all__ = ["SystemAnswer", "FormState", "SelfOptimizingQueryProcessor"]

#: Sentinel distinguishing "keyword not passed" from any real value,
#: so the deprecation shim only fires on explicit legacy usage.
_UNSET = object()


@dataclass(frozen=True)
class SystemAnswer:
    """The processor's reply to one query.

    ``cost`` is the charged strategy-execution cost (the paper's
    ``c(Θ, I)``); ``learned`` is true when this query came through a
    compiled, PIB-monitored graph (as opposed to the SLD fallback);
    ``climbed`` reports whether answering this very query triggered a
    strategy switch.
    """

    proved: bool
    substitution: Substitution
    cost: float
    learned: bool
    climbed: bool = False
    #: True when the resilience layer had to deviate from the learned
    #: path (deadline expiry, fault escape): the answer came from the
    #: SLD fallback, and ``incident`` says why.
    degraded: bool = False
    incident: Optional[str] = None
    #: True when the serving layer answered from its ground-answer
    #: cache: no strategy ran, no cost was charged, no PIB sample.
    cached: bool = False
    #: Whether the answer reflects the whole fact base.  A *partial*
    #: verdict (federated backend, shards dark past their retry/hedge
    #: budget) carries the missing shard names: the bindings are a
    #: sound subset of the complete answer set, but a "no" is not
    #: trustworthy, and the learner saw no sample from this run.
    completeness: Completeness = COMPLETE


@dataclass
class FormState:
    """Everything the processor keeps per query form."""

    form: QueryForm
    graph: InferenceGraph
    learner: PIB
    queries: int = 0
    #: Path of this form's checkpoint file (``None``: checkpointing off).
    checkpoint_path: Optional[str] = None
    #: Whether the learner was restored from a checkpoint at creation.
    restored: bool = False
    checkpoints_written: int = 0
    incidents: List[str] = field(default_factory=list)
    #: Structural profile of the form's graph (set only when the
    #: experience subsystem is enabled).
    profile: Optional[FormProfile] = None
    #: The prior this form's learner was started from, if any.
    warmstart: Optional[WarmStart] = None


class SelfOptimizingQueryProcessor:
    """A query processor that gets faster on the forms it is asked.

    Configuration arrives as ``config=`` (a
    :class:`~repro.serving.config.SessionConfig`); the individual
    keywords below are a deprecated spelling of the same fields and
    emit :class:`DeprecationWarning` (mixing them with ``config=`` is a
    :class:`TypeError`).  ``recorder`` stays a first-class keyword: it
    is an observer wired across objects, not a session setting.

    Field meanings mirror :class:`repro.learning.pib.PIB`; ``delta`` is
    the *per-form* mistake budget (each form's learner runs its own
    Theorem 1 guarantee).  ``max_depth`` bounds graph unfolding for
    recursive rule bases and the SLD fallback's recursion depth.

    ``resilience`` (a :class:`~repro.resilience.policy.ResiliencePolicy`)
    routes learned-path executions through
    :func:`~repro.strategies.execution.execute_resilient`: transient
    retrieval faults are retried (and billed), persistently down arcs
    are shed by circuit breakers, and a query that raises or blows its
    deadline degrades gracefully to the SLD fallback — returning a
    *degraded* :class:`SystemAnswer` instead of raising, with the
    incident recorded in :meth:`report`.

    ``checkpoint_dir`` turns on crash-safe learner checkpoints: every
    ``checkpoint_every`` queries (and after every climb) each form's
    PIB state is atomically written to
    ``<checkpoint_dir>/<predicate>_<pattern>.json``; a new processor
    pointed at the same directory resumes each learner exactly where
    it stopped — same Δ̃ sums, same sequential-test counter, same
    strategy — so Theorem 1's δ-budget accounting survives restarts.

    ``drift`` (a :class:`~repro.learning.drift.DriftConfig`) switches
    every form's learner to a
    :class:`~repro.learning.drift.DriftAwarePIB`: per-arc success
    frequencies and per-query costs are watched by online change
    detectors, and a confirmed alarm opens a new learning epoch —
    evidence reset, δ-schedule restarted, last-known-good strategy kept
    as a statistically-guarded rollback candidate.  On a stationary
    workload the drift-aware processor behaves identically to the
    vanilla one (up to false alarms, bounded by the detector's δ).
    Checkpoints written with or without drift interoperate: ``load_pib``
    upgrades either kind to the configured mode.

    ``recorder`` (any :class:`~repro.observability.recorder.Recorder`,
    typically a :class:`~repro.observability.tracer.Tracer`) observes
    the whole stack: it is threaded into every learner and strategy
    execution, bound to the resilience policy's breaker board, and its
    metrics snapshot — when it has one — appears under
    :meth:`report`'s ``"metrics"`` key.  Recording is strictly one-way;
    the processor's answers, costs, and climbs are identical with and
    without it.
    """

    def __init__(
        self,
        rule_base: RuleBase,
        delta: Any = _UNSET,
        transformations_factory: Any = _UNSET,
        test_every: Any = _UNSET,
        max_depth: Any = _UNSET,
        resilience: Any = _UNSET,
        checkpoint_dir: Any = _UNSET,
        checkpoint_every: Any = _UNSET,
        recorder: Optional[Recorder] = None,
        drift: Any = _UNSET,
        experience: Any = _UNSET,
        *,
        config: Optional[SessionConfig] = None,
    ):
        legacy = {
            name: value
            for name, value in (
                ("delta", delta),
                ("transformations_factory", transformations_factory),
                ("test_every", test_every),
                ("max_depth", max_depth),
                ("resilience", resilience),
                ("checkpoint_dir", checkpoint_dir),
                ("checkpoint_every", checkpoint_every),
                ("drift", drift),
                ("experience", experience),
            )
            if value is not _UNSET
        }
        if legacy:
            if config is not None:
                raise TypeError(
                    "pass configuration either as config=SessionConfig(...) "
                    "or as legacy keywords, not both "
                    f"(got both config= and {sorted(legacy)})"
                )
            warnings.warn(
                "passing "
                + ", ".join(f"{name}=" for name in sorted(legacy))
                + " directly to SelfOptimizingQueryProcessor is deprecated; "
                "use config=SessionConfig(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            config = SessionConfig(**legacy)
        elif config is None:
            config = SessionConfig()
        self.config = config
        self.rule_base = rule_base
        self.delta = config.delta
        self.test_every = config.test_every
        self.max_depth = config.max_depth
        self.resilience = config.resilience
        self.checkpoint_dir = config.checkpoint_dir
        self.checkpoint_every = config.checkpoint_every
        self.drift = config.drift
        self.experience = config.experience
        #: The open cross-session store (``None``: experience off — no
        #: store is ever opened and behaviour is byte-identical to a
        #: build without the subsystem).
        self.experience_store: Optional[ExperienceStore] = None
        self.experience_writes = 0
        if self.experience is not None and self.experience.enabled:
            self.experience_store = ExperienceStore.open(
                self.experience.path
            )
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        if (
            self.experience_store is not None
            and self.experience_store.recovered
            and self.recorder.enabled
        ):
            self.recorder.incident(
                "experience store unreadable (and backup); starting empty"
            )
        if self.resilience is not None and self.recorder.enabled:
            self.resilience.bind_recorder(self.recorder)
        self._transformations_factory = (
            config.transformations_factory or all_sibling_swaps
        )
        #: Seam for the serving layer: when a
        #: :class:`~repro.serving.cache.SubgoalMemo` is installed here,
        #: learned-path executions run against a
        #: :class:`MemoizedDatalogContext` that consults it before
        #: probing the database.  ``None`` (the default) keeps the
        #: plain lazy context, byte-identical to pre-serving behaviour.
        self.subgoal_memo = None
        self._states: Dict[QueryForm, FormState] = {}
        self._uncompilable: Dict[QueryForm, str] = {}
        #: The configured fallback engine (``config.engine``): answers
        #: every query whose form is not compiled/learnable.
        self.engine_name = config.engine
        self._fallback = make_engine(
            config.engine, rule_base, max_depth=self.max_depth or 64
        )

    # ------------------------------------------------------------------
    # Per-form state
    # ------------------------------------------------------------------

    def _checkpoint_path(self, form: QueryForm) -> Optional[str]:
        if self.checkpoint_dir is None:
            return None
        return os.path.join(
            self.checkpoint_dir, f"{form.predicate}_{form.pattern or 'p'}.json"
        )

    def _state_for(self, form: QueryForm) -> Optional[FormState]:
        if form in self._uncompilable:
            return None
        state = self._states.get(form)
        if state is None:
            try:
                graph = build_inference_graph(
                    self.rule_base, form, max_depth=self.max_depth
                )
            except (GraphError, RecursionLimitError) as reason:
                self._uncompilable[form] = str(reason)
                return None
            state = FormState(
                form=form,
                graph=graph,
                learner=None,  # filled in below
                checkpoint_path=self._checkpoint_path(form),
            )
            self._recover_or_init(state)
            self._states[form] = state
        return state

    def _recover_or_init(self, state: FormState) -> None:
        """Restore the form's learner from its checkpoint, else start
        fresh (recording why recovery failed, if it was attempted)."""
        path = state.checkpoint_path
        if path is not None and (
            os.path.exists(path) or os.path.exists(path + ".bak")
        ):
            try:
                state.learner = load_pib(state.graph, path, drift=self.drift)
                state.learner.recorder = self.recorder
                state.restored = True
                if self.recorder.enabled:
                    self.recorder.checkpoint_restored(path)
                return
            except CheckpointError as reason:
                self._note_incident(
                    state, f"checkpoint recovery failed: {reason}"
                )
        kwargs = dict(
            delta=self.delta,
            transformations=list(
                self._transformations_factory(state.graph)
            ),
            test_every=self.test_every,
            recorder=self.recorder,
        )
        warm = self._warm_start_for(state)
        if warm is not None:
            # Priors only: the neighbour's settled winner becomes Θ₀,
            # nothing else — Δ̃ accumulators, total_tests, and the
            # Theorem 1 δ-schedule start cold exactly as without it.
            kwargs["initial_strategy"] = warm.strategy
            state.warmstart = warm
            if self.recorder.enabled:
                self.recorder.warmstart(
                    str(state.form),
                    warm.source_form,
                    warm.distance,
                    warm.exact,
                )
        if self.drift is not None:
            state.learner = DriftAwarePIB(
                state.graph, drift=self.drift, **kwargs
            )
        else:
            state.learner = PIB(state.graph, **kwargs)

    def _profile_for(self, state: FormState) -> FormProfile:
        if state.profile is None:
            state.profile = form_profile(state.graph, state.form)
        return state.profile

    def _warm_start_for(self, state: FormState) -> Optional[WarmStart]:
        """The store's best prior for a *freshly initialised* learner.

        Checkpoint-restored learners never reach here: a checkpoint is
        this very form's own mid-run state and always outranks a
        neighbour's prior.
        """
        if self.experience_store is None:
            return None
        cfg = self.experience
        return warm_start(
            self.experience_store,
            self._profile_for(state),
            state.graph,
            k=cfg.neighbour_k,
            floor=cfg.similarity_floor,
            pattern_weight=cfg.pattern_weight,
            similarity_weight=cfg.similarity_weight,
        )

    def contribute_experience(self) -> int:
        """Distil every form's settled outcome into the store and save.

        Called at session close (see
        :meth:`repro.serving.session.QuerySession.close`).  Each form
        that processed at least one context contributes one record;
        the record's ``regime`` is the learner's current drift epoch,
        so a regime reset automatically versions what was learned
        under the old cost distribution (higher regimes supersede
        lower ones at insert).  Returns how many records were written.
        """
        if self.experience_store is None:
            return 0
        written = 0
        for state in self._states.values():
            regime = getattr(state.learner, "epoch", 0)
            record = record_from_learner(
                self._profile_for(state),
                str(state.form),
                state.learner,
                regime=regime,
            )
            if record is None:
                continue
            if self.experience_store.add(record):
                written += 1
                if self.recorder.enabled:
                    self.recorder.experience_write(
                        record.fingerprint, record.sample_count
                    )
        self.experience_store.save()
        self.experience_writes += written
        return written

    def _note_incident(self, state: FormState, description: str) -> None:
        state.incidents.append(description)
        if self.recorder.enabled:
            self.recorder.incident(description)

    def _maybe_checkpoint(self, state: FormState, climbed: bool) -> None:
        """Periodic + on-climb crash-safe checkpointing of PIB state."""
        if state.checkpoint_path is None:
            return
        if not climbed and state.queries % self.checkpoint_every != 0:
            return
        os.makedirs(os.path.dirname(state.checkpoint_path) or ".",
                    exist_ok=True)
        save_pib(state.learner, state.checkpoint_path)
        state.checkpoints_written += 1
        if self.recorder.enabled:
            self.recorder.checkpoint_saved(state.checkpoint_path)

    def checkpoint_now(self) -> int:
        """Force a checkpoint of every compiled form; returns how many."""
        written = 0
        for state in self._states.values():
            if state.checkpoint_path is not None:
                os.makedirs(
                    os.path.dirname(state.checkpoint_path) or ".",
                    exist_ok=True,
                )
                save_pib(state.learner, state.checkpoint_path)
                state.checkpoints_written += 1
                written += 1
                if self.recorder.enabled:
                    self.recorder.checkpoint_saved(state.checkpoint_path)
        return written

    def ensure_compiled(self, form: QueryForm) -> bool:
        """Compile the form's graph and learner now (idempotent).

        Returns whether the form is learnable; uncompilable forms keep
        using the SLD fallback.  The serving layer calls this under its
        admin lock so lazy compilation never races between workers.
        """
        return self._state_for(form) is not None

    def _make_context(self, graph, query, database):
        """The execution context for one learned-path run: memoized
        when the serving layer installed a subgoal memo, plain lazy
        otherwise."""
        if self.subgoal_memo is not None:
            return MemoizedDatalogContext(
                graph, query, database, memo=self.subgoal_memo
            )
        return LazyDatalogContext(graph, query, database)

    def strategy_for(self, form: QueryForm) -> Optional[Strategy]:
        """The current strategy for a form (``None`` if never compiled)."""
        state = self._states.get(form)
        return state.learner.strategy if state else None

    def climb_history(self, form: QueryForm) -> List[ClimbRecord]:
        """All strategy switches taken for this form."""
        state = self._states.get(form)
        return list(state.learner.history) if state else []

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------

    def query(self, query: Atom, database: Database) -> SystemAnswer:
        """Answer one query, learning from the execution as a side effect.

        When ``database`` speaks the probe-window protocol (the
        federated backend), the whole query is bracketed in one window:
        the collected :class:`~repro.storage.interface.Completeness`
        verdict and the billed remote latency are threaded onto the
        returned answer, and a partial run contributes **no** sample to
        the learner — Δ̃ must only accumulate over the stationary,
        fully-observed context distribution.
        """
        begin = getattr(database, "begin_probe_window", None)
        if begin is None:
            return self._query_inner(query, database)
        begin()
        try:
            answer = self._query_inner(query, database)
        finally:
            window = database.end_probe_window()
        return replace(
            answer,
            completeness=window.completeness,
            cost=answer.cost + window.billed_cost,
        )

    def _complete_so_far(self, database: Database) -> Completeness:
        """Peek at the current probe window (COMPLETE for plain stores)."""
        peek = getattr(database, "probe_window_missing", None)
        if peek is None:
            return COMPLETE
        return Completeness.missing(peek())

    def _query_inner(self, query: Atom, database: Database) -> SystemAnswer:
        form = QueryForm.of(query)
        state = self._state_for(form)
        if state is None:
            answer, incident = self._prove_fallback(query, database)
            if answer is None:
                return SystemAnswer(
                    proved=False,
                    substitution=Substitution(),
                    cost=0.0,
                    learned=False,
                    degraded=True,
                    incident=incident,
                )
            return SystemAnswer(
                proved=answer.proved,
                substitution=answer.substitution,
                cost=answer.trace.cost,
                learned=False,
                degraded=incident is not None,
                incident=incident,
            )

        state.queries += 1
        if self.resilience is not None:
            return self._query_resilient(state, query, database)
        climbs_before = state.learner.climbs
        context = self._make_context(state.graph, query, database)
        # `learner.process` is execute-then-record; running the two
        # halves here lets a partial run (dark shards) skip the record:
        # a censored cost is not a sample of c(Θ, I).
        result = execute(
            state.learner.strategy, context, recorder=state.learner.recorder
        )
        result.completeness = self._complete_so_far(database)
        if result.completeness.complete:
            state.learner.record(result)
        else:
            self._note_incident(
                state,
                f"partial execution: {result.completeness.describe()}",
            )
        climbed = state.learner.climbs > climbs_before
        substitution = Substitution()
        if result.succeeded and result.success_arc is not None:
            substitution = self._binding_for(
                state.graph, result.success_arc, query, database
            )
        self._maybe_checkpoint(state, climbed)
        return SystemAnswer(
            proved=result.succeeded,
            substitution=substitution,
            cost=result.cost,
            learned=True,
            climbed=climbed,
        )

    def _query_resilient(
        self, state: FormState, query: Atom, database: Database
    ) -> SystemAnswer:
        """The learned path under a :class:`ResiliencePolicy`.

        The strategy runs through :func:`execute_resilient`; every
        retry and backoff is billed to this query's ``cost``.  The
        learner is shown only the *settled* execution view.  When the
        learned path cannot deliver — the deadline expired, a fault
        escaped the retry layer, or faults masked a would-be answer —
        the processor degrades to the SLD fallback and reports the
        incident instead of raising.
        """
        climbs_before = state.learner.climbs
        context = self._make_context(state.graph, query, database)
        try:
            result = execute_resilient(
                state.learner.strategy, context, self.resilience,
                recorder=self.recorder,
            )
        except ResilienceError as fault:
            self._note_incident(state, f"learned path raised: {fault}")
            return self._degraded_answer(state, query, database, 0.0)

        if result.deadline_expired:
            # Censored run: do not feed it to PIB (a truncated cost is
            # not a sample of c(Θ, I)); answer via the fallback.
            self._note_incident(
                state, f"deadline expired after cost {result.cost:g}"
            )
            return self._degraded_answer(state, query, database, result.cost)

        result.completeness = self._complete_so_far(database)
        if result.completeness.complete:
            # Settled *and* complete: the only outcomes PIB trains on.
            state.learner.record(result.settled_result())
        else:
            self._note_incident(
                state,
                f"partial execution: {result.completeness.describe()}",
            )
        climbed = state.learner.climbs > climbs_before
        self._maybe_checkpoint(state, climbed)

        if not result.succeeded and result.degraded:
            # Faults (unsettled or shed arcs) may have hidden the
            # answer; a "no" is only trustworthy from a clean run.
            self._note_incident(
                state,
                "degraded no-answer: unsettled="
                f"{result.unsettled} shed={result.skipped_open}",
            )
            return self._degraded_answer(
                state, query, database, result.cost, climbed=climbed
            )

        substitution = Substitution()
        if result.succeeded and result.success_arc is not None:
            try:
                substitution = self._binding_for(
                    state.graph, result.success_arc, query, database
                )
            except ResilienceError:
                # Binding recovery re-probes the database, which may
                # itself fault; the proof already settled, so answer
                # "yes" without bindings rather than fail the query.
                self._note_incident(state, "binding recovery faulted")
        return SystemAnswer(
            proved=result.succeeded,
            substitution=substitution,
            cost=result.cost,
            learned=True,
            climbed=climbed,
        )

    def _prove_fallback(self, query: Atom, database: Database):
        """SLD-prove ``query``, retrying through transient faults.

        Returns ``(answer, incident)`` where ``answer`` is ``None``
        only when every attempt faulted (possible only against a
        faulty database under a resilience policy — without one,
        exceptions propagate unchanged).
        """
        if self.resilience is None:
            return self._fallback.prove(query, database), None
        attempts = self.resilience.retry.max_attempts
        last_fault = None
        for _ in range(attempts):
            try:
                return self._fallback.prove(query, database), None
            except ResilienceError as fault:
                last_fault = fault
                self.resilience.total_faults += 1
        return None, f"fallback faulted {attempts}x: {last_fault}"

    def _degraded_answer(
        self,
        state: FormState,
        query: Atom,
        database: Database,
        spent: float,
        climbed: bool = False,
    ) -> SystemAnswer:
        """Fall back to SLD, absorbing further faults; never raises."""
        incident = state.incidents[-1] if state.incidents else None
        answer, fallback_incident = self._prove_fallback(query, database)
        if answer is None:
            self._note_incident(state, fallback_incident)
            return SystemAnswer(
                proved=False,
                substitution=Substitution(),
                cost=spent,
                learned=False,
                climbed=climbed,
                degraded=True,
                incident=f"{incident}; {fallback_incident}",
            )
        return SystemAnswer(
            proved=answer.proved,
            substitution=answer.substitution,
            cost=spent + answer.trace.cost,
            learned=False,
            climbed=climbed,
            degraded=True,
            incident=incident,
        )

    @staticmethod
    def _binding_for(
        graph: InferenceGraph, success_arc, query: Atom, database: Database
    ) -> Substitution:
        """Recover the query-variable bindings behind a winning retrieval."""
        if success_arc.goal is None:
            return Substitution()
        pattern = _instantiate(success_arc.goal, query, graph.root.goal)
        for binding in database.retrieve(pattern):
            return binding.restrict(set(query.variables()))
        return Substitution()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def report(self) -> Dict[str, Dict[str, object]]:
        """Per-form learning status, keyed by the printed form.

        Under a resilience policy each form also reports its incident
        log (degradations, checkpoint-recovery failures) and its
        checkpoint activity; the policy-wide health counters live under
        the ``"resilience"`` key.
        """
        summary: Dict[str, Dict[str, object]] = {}
        for form, state in self._states.items():
            entry: Dict[str, object] = {
                "queries": state.queries,
                "climbs": state.learner.climbs,
                "strategy": " ".join(state.learner.strategy.arc_names()),
                "retrieval_frequencies":
                    state.learner.retrieval_statistics.frequencies(),
            }
            if isinstance(state.learner, DriftAwarePIB):
                entry["drift"] = state.learner.drift_report()
            if state.incidents:
                entry["incidents"] = list(state.incidents)
            if state.checkpoint_path is not None:
                entry["checkpoint"] = {
                    "path": state.checkpoint_path,
                    "restored": state.restored,
                    "written": state.checkpoints_written,
                }
            if state.warmstart is not None:
                entry["warmstart"] = {
                    "source": state.warmstart.source_form,
                    "similarity": state.warmstart.similarity,
                    "exact": state.warmstart.exact,
                }
            summary[str(form)] = entry
        for form, reason in self._uncompilable.items():
            summary[str(form)] = {"fallback": reason}
        if self.resilience is not None:
            summary["resilience"] = self.resilience.snapshot()
        if self.experience_store is not None:
            summary["experience"] = {
                "path": self.experience_store.path,
                "records": len(self.experience_store),
                "writes": self.experience_writes,
                "warmstarts": sum(
                    1
                    for state in self._states.values()
                    if state.warmstart is not None
                ),
                "recovered": self.experience_store.recovered,
            }
        if self.recorder.metrics is not None:
            summary["metrics"] = self.recorder.metrics.snapshot()
        return summary

"""The integrated self-optimizing query processor (Figure 4).

Figure 4 of the paper sketches the overall architecture: queries flow
through the query processor, PIB watches the executions, and every so
often it tells the processor to switch strategies.  This module wires
the whole stack together behind one call:

    >>> qp = SelfOptimizingQueryProcessor(rule_base)
    >>> answer = qp.query(parse_query("instructor(manolis)"), database)

Per *query form* (``instructor^(b)``, ``age^(bf)``, …) the processor
lazily compiles an inference graph, attaches a PIB learner, and
executes incoming queries by walking the graph in the current
strategy's order against a :class:`LazyDatalogContext` — so the
database sees exactly the retrievals the strategy attempts, monitored
or not (Section 5.1's unobtrusiveness).  Successful runs return the
binding produced by the winning retrieval.

Queries whose form cannot be compiled to a (disjunctive, acyclic)
inference graph fall back to the plain SLD engine; learning simply
does not apply to them, matching the paper's scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .datalog.database import Database
from .datalog.engine import TopDownEngine
from .datalog.rules import QueryForm, RuleBase
from .datalog.terms import Atom, Substitution
from .errors import GraphError, RecursionLimitError
from .graphs.builder import build_inference_graph
from .graphs.contexts import LazyDatalogContext, _instantiate
from .graphs.inference_graph import InferenceGraph
from .learning.pib import ClimbRecord, PIB
from .strategies.strategy import Strategy
from .strategies.transformations import Transformation, all_sibling_swaps

__all__ = ["SystemAnswer", "FormState", "SelfOptimizingQueryProcessor"]


@dataclass(frozen=True)
class SystemAnswer:
    """The processor's reply to one query.

    ``cost`` is the charged strategy-execution cost (the paper's
    ``c(Θ, I)``); ``learned`` is true when this query came through a
    compiled, PIB-monitored graph (as opposed to the SLD fallback);
    ``climbed`` reports whether answering this very query triggered a
    strategy switch.
    """

    proved: bool
    substitution: Substitution
    cost: float
    learned: bool
    climbed: bool = False


@dataclass
class FormState:
    """Everything the processor keeps per query form."""

    form: QueryForm
    graph: InferenceGraph
    learner: PIB
    queries: int = 0


class SelfOptimizingQueryProcessor:
    """A query processor that gets faster on the forms it is asked.

    Parameters mirror :class:`repro.learning.pib.PIB`; ``delta`` is the
    *per-form* mistake budget (each form's learner runs its own
    Theorem 1 guarantee).  ``max_depth`` bounds graph unfolding for
    recursive rule bases and the SLD fallback's recursion depth.
    """

    def __init__(
        self,
        rule_base: RuleBase,
        delta: float = 0.05,
        transformations_factory: Optional[
            Callable[[InferenceGraph], Sequence[Transformation]]
        ] = None,
        test_every: int = 1,
        max_depth: Optional[int] = None,
    ):
        self.rule_base = rule_base
        self.delta = delta
        self.test_every = test_every
        self.max_depth = max_depth
        self._transformations_factory = (
            transformations_factory or all_sibling_swaps
        )
        self._states: Dict[QueryForm, FormState] = {}
        self._uncompilable: Dict[QueryForm, str] = {}
        self._fallback = TopDownEngine(
            rule_base, max_depth=max_depth or 64
        )

    # ------------------------------------------------------------------
    # Per-form state
    # ------------------------------------------------------------------

    def _state_for(self, form: QueryForm) -> Optional[FormState]:
        if form in self._uncompilable:
            return None
        state = self._states.get(form)
        if state is None:
            try:
                graph = build_inference_graph(
                    self.rule_base, form, max_depth=self.max_depth
                )
            except (GraphError, RecursionLimitError) as reason:
                self._uncompilable[form] = str(reason)
                return None
            learner = PIB(
                graph,
                delta=self.delta,
                transformations=list(self._transformations_factory(graph)),
                test_every=self.test_every,
            )
            state = FormState(form=form, graph=graph, learner=learner)
            self._states[form] = state
        return state

    def strategy_for(self, form: QueryForm) -> Optional[Strategy]:
        """The current strategy for a form (``None`` if never compiled)."""
        state = self._states.get(form)
        return state.learner.strategy if state else None

    def climb_history(self, form: QueryForm) -> List[ClimbRecord]:
        """All strategy switches taken for this form."""
        state = self._states.get(form)
        return list(state.learner.history) if state else []

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------

    def query(self, query: Atom, database: Database) -> SystemAnswer:
        """Answer one query, learning from the execution as a side effect."""
        form = QueryForm.of(query)
        state = self._state_for(form)
        if state is None:
            answer = self._fallback.prove(query, database)
            return SystemAnswer(
                proved=answer.proved,
                substitution=answer.substitution,
                cost=answer.trace.cost,
                learned=False,
            )

        state.queries += 1
        climbs_before = state.learner.climbs
        context = LazyDatalogContext(state.graph, query, database)
        result = state.learner.process(context)
        substitution = Substitution()
        if result.succeeded and result.success_arc is not None:
            substitution = self._binding_for(
                state.graph, result.success_arc, query, database
            )
        return SystemAnswer(
            proved=result.succeeded,
            substitution=substitution,
            cost=result.cost,
            learned=True,
            climbed=state.learner.climbs > climbs_before,
        )

    @staticmethod
    def _binding_for(
        graph: InferenceGraph, success_arc, query: Atom, database: Database
    ) -> Substitution:
        """Recover the query-variable bindings behind a winning retrieval."""
        if success_arc.goal is None:
            return Substitution()
        pattern = _instantiate(success_arc.goal, query, graph.root.goal)
        for binding in database.retrieve(pattern):
            return binding.restrict(set(query.variables()))
        return Substitution()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def report(self) -> Dict[str, Dict[str, object]]:
        """Per-form learning status, keyed by the printed form."""
        summary: Dict[str, Dict[str, object]] = {}
        for form, state in self._states.items():
            summary[str(form)] = {
                "queries": state.queries,
                "climbs": state.learner.climbs,
                "strategy": " ".join(state.learner.strategy.arc_names()),
                "retrieval_frequencies":
                    state.learner.retrieval_statistics.frequencies(),
            }
        for form, reason in self._uncompilable.items():
            summary[str(form)] = {"fallback": reason}
        return summary

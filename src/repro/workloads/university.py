"""The paper's running example: Figure 1's university knowledge base.

Rule base::

    @Rp instructor(X) :- prof(X).
    @Rg instructor(X) :- grad(X).

with query form ``instructor^(b)``, inference graph ``G_A`` (arcs
``R_p D_p R_g D_g``), database ``DB_1 = {prof(russ), grad(manolis)}``,
and the two strategies ``Θ₁ = ⟨R_p D_p R_g D_g⟩`` (profs first) and
``Θ₂ = ⟨R_g D_g R_p D_p⟩`` (grads first).

**A note on the paper's Section 2 numbers.**  The printed text says
"60% of the queries are instructor(russ), 15% are instructor(manolis)"
— which, with ``prof(russ)`` in ``DB_1``, would make ``D_p`` succeed
60% of the time — yet computes ``C[Θ₁] = 2 + (1−0.15)·2 = 3.7`` and
``C[Θ₂] = 2 + (1−0.6)·2 = 2.8`` and prefers ``Θ₂``.  Those formulas
(and the preference, and Section 4's true vector ``p = ⟨0.2, 0.6⟩``
with grads likelier) correspond to ``p_p = 0.15, p_g = 0.60``, i.e. a
query mix of **15% russ / 60% manolis / 25% fred**; the two percentages
in the sentence are evidently transposed.  We expose both readings:
:func:`intended_query_mix` (reproduces every printed cost) and
:func:`printed_query_mix` (the sentence as written).
"""

from __future__ import annotations

import random
from typing import Dict, Mapping, Tuple

from ..datalog.database import Database
from ..datalog.parser import parse_atom, parse_program
from ..datalog.rules import QueryForm, RuleBase
from ..datalog.terms import Atom, Constant
from ..graphs.builder import build_inference_graph
from ..graphs.inference_graph import GraphBuilder, InferenceGraph
from ..strategies.strategy import Strategy
from .distributions import DatalogDistribution

__all__ = [
    "university_rule_base",
    "db1",
    "db2",
    "g_a",
    "g_a_from_rules",
    "theta_1",
    "theta_2",
    "intended_query_mix",
    "printed_query_mix",
    "minors_only_mix",
    "query_distribution",
    "intended_probabilities",
    "section4_probabilities",
    "section4_estimates",
]

_RULES_TEXT = """
@Rp instructor(X) :- prof(X).
@Rg instructor(X) :- grad(X).
"""


def university_rule_base() -> RuleBase:
    """Figure 1's two-rule rule base."""
    return parse_program(_RULES_TEXT)


def db1() -> Database:
    """``DB_1``: russ is a professor, manolis a graduate student."""
    return Database.from_program("prof(russ). grad(manolis).")


def db2(n_prof: int = 2000, n_grad: int = 500) -> Database:
    """``DB_2``: the fact counts of Section 2's [Smi89] example.

    2,000 ``prof`` facts and 500 ``grad`` facts (over synthetic
    individuals ``p0 …`` / ``g0 …``), so the fact-count heuristic deems
    a ``prof`` lookup 4× as likely to succeed.
    """
    database = Database()
    for index in range(n_prof):
        database.add(Atom("prof", [Constant(f"p{index}")]))
    for index in range(n_grad):
        database.add(Atom("grad", [Constant(f"g{index}")]))
    return database


def g_a() -> InferenceGraph:
    """``G_A`` with the paper's arc names, unit costs, goal patterns."""
    rule_base = university_rule_base()
    prototype = QueryForm("instructor", "b").prototype()
    builder = GraphBuilder("instructor", root_goal=prototype)
    builder.reduction(
        "Rp", "instructor", "prof",
        rule=rule_base.rule_named("Rp"), goal=parse_atom("prof(B0)"),
    )
    builder.retrieval("Dp", "prof", goal=parse_atom("prof(B0)"))
    builder.reduction(
        "Rg", "instructor", "grad",
        rule=rule_base.rule_named("Rg"), goal=parse_atom("grad(B0)"),
    )
    builder.retrieval("Dg", "grad", goal=parse_atom("grad(B0)"))
    return builder.build()


def g_a_from_rules() -> InferenceGraph:
    """``G_A`` compiled by the generic graph builder (same shape as
    :func:`g_a`, machine-generated names) — used to cross-check the
    compiler."""
    return build_inference_graph(
        university_rule_base(), QueryForm("instructor", "b")
    )


def theta_1(graph: InferenceGraph) -> Strategy:
    """``Θ₁ = ⟨R_p D_p R_g D_g⟩`` — try the prof rule first."""
    return Strategy(graph, ["Rp", "Dp", "Rg", "Dg"])


def theta_2(graph: InferenceGraph) -> Strategy:
    """``Θ₂ = ⟨R_g D_g R_p D_p⟩`` — try the grad rule first."""
    return Strategy(graph, ["Rg", "Dg", "Rp", "Dp"])


def intended_query_mix() -> Dict[str, float]:
    """The query mix matching every printed cost: 15% russ, 60%
    manolis, 25% fred (see the module docstring on the transposition)."""
    return {"russ": 0.15, "manolis": 0.60, "fred": 0.25}


def printed_query_mix() -> Dict[str, float]:
    """The sentence as printed: 60% russ, 15% manolis, 25% fred."""
    return {"russ": 0.60, "manolis": 0.15, "fred": 0.25}


def minors_only_mix(database: Database, rng_seed: int = 0) -> Dict[str, float]:
    """Section 2's counter-example workload: "the user may … only ask
    questions that deal with minors — none of the κᵢ appearing in
    instructor(κᵢ) queries will be professors".

    Uniform over the ``grad`` individuals of ``database`` — every query
    hits ``D_g`` and never ``D_p``, making ``Θ₂`` clearly superior no
    matter how many ``prof`` facts the database holds.
    """
    grads = [str(fact.args[0]) for fact in database.relation("grad", 1)]
    if not grads:
        raise ValueError("database holds no grad facts")
    weight = 1.0 / len(grads)
    return {name: weight for name in grads}


def query_distribution(
    graph: InferenceGraph,
    mix: Mapping[str, float],
    database: Database,
) -> DatalogDistribution:
    """Concrete ``⟨instructor(κ), DB⟩`` contexts with ``κ ~ mix``."""
    names = sorted(mix)
    weights = [mix[name] for name in names]
    total = sum(weights)
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"query mix weights sum to {total}, expected 1")

    def pair_sampler(rng: random.Random) -> Tuple[Atom, Database]:
        name = rng.choices(names, weights=weights)[0]
        return Atom("instructor", [Constant(name)]), database

    return DatalogDistribution(graph, pair_sampler)


def intended_probabilities() -> Dict[str, float]:
    """The success probabilities behind the printed costs:
    ``p_p = 0.15, p_g = 0.60`` → ``C[Θ₁] = 3.7, C[Θ₂] = 2.8``."""
    return {"Dp": 0.15, "Dg": 0.60}


def section4_probabilities() -> Dict[str, float]:
    """Section 4's true vector ``p = ⟨p_p, p_g⟩ = ⟨0.2, 0.6⟩``."""
    return {"Dp": 0.2, "Dg": 0.6}


def section4_estimates() -> Dict[str, float]:
    """Section 4's sampled frequencies ``p̂ = ⟨18/30, 10/20⟩`` (for
    which ``Υ_AOT`` returns ``Θ₁``)."""
    return {"Dp": 18 / 30, "Dg": 10 / 20}

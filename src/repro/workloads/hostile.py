"""Hostile workload generators: skew, storms, adversarial recursion.

The differential oracles are only as good as the worlds they run on,
and the layered acyclic generator in :mod:`repro.verify.worldgen` is
deliberately tame: no recursion, shallow negation, a uniform query
mix.  This module supplies the worlds that stress the engines where
they actually differ:

* **hot-key skew** — a query stream concentrated on one seeded hot
  query, the shape that separates tabling/caching engines from
  re-deriving ones;
* **mutation storms** — seeded add/remove schedules that bump the
  database generation on every step, busting any state keyed on
  ``Database.cache_key``;
* **deep recursion** — right-recursive transitive-closure chains long
  enough to exercise tabled termination while staying inside the SLD
  engine's depth budget (left recursion is excluded on purpose: the
  top-down engine's variant-ancestor check prunes it unsoundly, which
  is a known limitation, not a differential-test target);
* **same generation** — the classic tree-structured ``sg`` program,
  quadratically many derivable pairs from linearly many facts;
* **negation mix** — stratified programs with a negated literal in
  (almost) every rule, hammering the negation boundary of all three
  engines.

Every generator is a pure function of its seed: equal arguments yield
byte-identical programs, which is what lets ``verify --replay`` and
the shrinker treat these worlds like any other.  The program
generators share one return convention — ``(rules, facts, queries)``
as tuples of Datalog text lines — so :func:`repro.verify.worldgen.build_kb_world`
can consume them directly via ``WorldSpec.kb_shape``.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

__all__ = [
    "KB_SHAPES",
    "deep_recursion_program",
    "hot_key_stream",
    "mutation_storm",
    "negation_mix_program",
    "same_generation_program",
]

#: Knowledge-base shapes a :class:`~repro.verify.worldgen.WorldSpec`
#: can request ("layered" is worldgen's own generator).
KB_SHAPES = ("layered", "deep-recursion", "same-generation", "negation-mix")

_Program = Tuple[Tuple[str, ...], Tuple[str, ...], Tuple[str, ...]]


# ----------------------------------------------------------------------
# Hot-key skew
# ----------------------------------------------------------------------


def hot_key_stream(
    seed: int,
    items: Sequence[str],
    hot_fraction: float = 0.8,
    length: int = 0,
) -> Tuple[str, ...]:
    """A skewed stream over ``items``: one seeded hot key dominates.

    Exactly ``round(hot_fraction * length)`` positions carry the hot
    item; the rest are drawn uniformly from the other items (from all
    items when there is only one), then the whole stream is shuffled.
    The exact count is what makes the skew ratio assertable in tests.
    """
    if not items:
        return ()
    if not 0.0 < hot_fraction <= 1.0:
        raise ValueError(
            f"hot_fraction must be in (0, 1], got {hot_fraction}"
        )
    rng = random.Random((seed << 8) ^ 0x407)
    pool = list(items)
    total = length if length > 0 else max(2 * len(pool), 8)
    hot = pool[rng.randrange(len(pool))]
    cold_pool = [item for item in pool if item != hot] or [hot]
    n_hot = round(hot_fraction * total)
    stream = [hot] * n_hot + [
        cold_pool[rng.randrange(len(cold_pool))] for _ in range(total - n_hot)
    ]
    rng.shuffle(stream)
    return tuple(stream)


# ----------------------------------------------------------------------
# Cache-busting mutation storms
# ----------------------------------------------------------------------


def mutation_storm(
    seed: int, facts: Sequence[str], steps: int
) -> Tuple[Tuple[str, str], ...]:
    """A seeded schedule of ``("remove"|"add", fact_text)`` operations.

    Removals pick a random live fact; additions re-add a previously
    removed one, so the schedule never invents tuples the world's
    generator did not produce (the engines' *answers* may still change
    on every step — that is the point).  Every step emits exactly one
    operation (the cadence tests rely on ``len(ops) == steps``), and
    each one bumps the database generation when applied, invalidating
    anything keyed on ``Database.cache_key``.  Fact text is normalized
    (trailing period stripped) so it parses with ``parse_atom``.
    """
    if steps < 0:
        raise ValueError(f"steps must be non-negative, got {steps}")
    live = [line.strip().rstrip(".").strip() for line in facts]
    live = [line for line in live if line]
    if not live:
        return ()
    rng = random.Random((seed << 8) ^ 0x570B)
    removed: List[str] = []
    ops: List[Tuple[str, str]] = []
    for _ in range(steps):
        add = bool(removed) and (not live or rng.random() < 0.5)
        if add:
            fact = removed.pop(rng.randrange(len(removed)))
            live.append(fact)
            ops.append(("add", fact))
        else:
            fact = live.pop(rng.randrange(len(live)))
            removed.append(fact)
            ops.append(("remove", fact))
    return tuple(ops)


# ----------------------------------------------------------------------
# Adversarial programs
# ----------------------------------------------------------------------


def deep_recursion_program(
    seed: int, depth: int = 24, n_queries: int = 12
) -> _Program:
    """Right-recursive transitive closure over a long seeded chain.

    A chain ``e(n0, n1) … e(n{d-1}, nd)`` plus a few forward shortcut
    edges, closed by the textbook right-recursive ``tc`` (and a unary
    ``reach`` on top so mixed-arity queries appear).  ``depth`` is
    clamped to 24 so the SLD engine's default depth budget of 64 still
    covers the longest derivation (roughly two frames per chain hop).
    """
    depth = max(2, min(depth, 24))
    rng = random.Random((seed << 8) ^ 0xDEE9)
    nodes = [f"n{index}" for index in range(depth + 1)]
    facts = [f"e({nodes[i]}, {nodes[i + 1]})." for i in range(depth)]
    for _ in range(rng.randrange(3)):
        start = rng.randrange(depth - 1)
        stop = rng.randrange(start + 1, depth + 1)
        shortcut = f"e({nodes[start]}, {nodes[stop]})."
        if shortcut not in facts:
            facts.append(shortcut)
    rules = (
        "tc(X, Y) :- e(X, Y).",
        "tc(X, Y) :- e(X, Z), tc(Z, Y).",
        f"reach(X) :- tc({nodes[0]}, X).",
    )
    # The deepest derivation always appears; the rest of the stream is
    # a seeded mix of open, half-open, and ground (true and false)
    # goals over both predicates.
    queries = [f"tc({nodes[0]}, {nodes[-1]})?"]
    for _ in range(max(n_queries - 1, 0)):
        roll = rng.random()
        if roll < 0.25:
            queries.append(f"tc({rng.choice(nodes)}, X)?")
        elif roll < 0.45:
            queries.append(f"tc(X, {rng.choice(nodes)})?")
        elif roll < 0.6:
            queries.append("tc(X, Y)?")
        elif roll < 0.8:
            left, right = rng.choice(nodes), rng.choice(nodes)
            queries.append(f"tc({left}, {right})?")
        else:
            queries.append("reach(X)?")
    return rules, tuple(facts), tuple(queries)


def same_generation_program(
    seed: int, depth: int = 3, fanout: int = 2, n_queries: int = 12
) -> _Program:
    """The same-generation program over a seeded balanced tree.

    ``par(child, parent)`` facts form a ``fanout``-ary tree of the
    given depth; ``sg`` derives quadratically many same-level pairs
    from them — the canonical workload where goal-directed set-at-a-
    time evaluation (QSQ) beats both tuple-at-a-time SLD and blind
    bottom-up saturation, which is exactly why it belongs in the
    differential family.
    """
    depth = max(1, min(depth, 4))
    fanout = max(2, min(fanout, 3))
    rng = random.Random((seed << 8) ^ 0x5A9E)
    levels: List[List[str]] = [["t0"]]
    counter = 1
    for _ in range(depth):
        next_level = []
        for parent in levels[-1]:
            for _ in range(fanout):
                next_level.append(f"t{counter}")
                counter += 1
        levels.append(next_level)
    facts = []
    for upper, lower in zip(levels, levels[1:]):
        span = len(lower) // len(upper)
        for index, child in enumerate(lower):
            facts.append(f"par({child}, {upper[index // span]}).")
    rules = (
        "sib(X, Y) :- par(X, P), par(Y, P).",
        "sg(X, Y) :- sib(X, Y).",
        "sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).",
    )
    everyone = [node for level in levels for node in level]
    leaves = levels[-1]
    queries = [f"sg({leaves[0]}, X)?"]
    for _ in range(max(n_queries - 1, 0)):
        roll = rng.random()
        if roll < 0.3:
            queries.append(f"sg({rng.choice(everyone)}, X)?")
        elif roll < 0.45:
            queries.append(f"sg(X, {rng.choice(leaves)})?")
        elif roll < 0.6:
            queries.append("sg(X, Y)?")
        elif roll < 0.85:
            left, right = rng.choice(everyone), rng.choice(everyone)
            queries.append(f"sg({left}, {right})?")
        else:
            queries.append(f"sib({rng.choice(leaves)}, X)?")
    return rules, tuple(facts), tuple(queries)


def negation_mix_program(
    seed: int, universe: int = 8, n_queries: int = 12
) -> _Program:
    """Stratified layers with a negated literal in every derived rule.

    Each layer ``p_i`` positively anchors on an earlier predicate and
    negates another strictly earlier one (base or derived), so the
    program is stratified by construction while every rule crosses a
    negation boundary — the shape that flushes out engines that bind
    negation too early or drain strata in the wrong order.
    """
    universe = max(2, universe)
    rng = random.Random((seed << 8) ^ 0x90A7)
    constants = [f"c{index}" for index in range(universe)]
    facts = []
    for name, rate in (("e0", 0.6), ("e1", 0.45)):
        for constant in constants:
            if rng.random() < rate:
                facts.append(f"{name}({constant}).")
    for left in constants:
        for right in constants:
            if rng.random() < 1.5 / universe:
                facts.append(f"link({left}, {right}).")
    available = ["e0", "e1"]
    rules = []
    for index in range(4):
        head = f"p{index}"
        for _ in range(rng.choice((1, 1, 2))):
            anchor = rng.choice(available)
            negated = rng.choice([name for name in available
                                  if name != anchor] or [anchor])
            body = [f"{anchor}(X)", f"not {negated}(X)"]
            if rng.random() < 0.5:
                body.insert(1, "link(X, Y)")
            rules.append(f"{head}(X) :- {', '.join(body)}.")
        available.append(head)
    queries = []
    askable = available + ["link"]
    for _ in range(n_queries):
        pred = rng.choice(askable)
        if pred == "link":
            queries.append(f"link({rng.choice(constants)}, X)?")
        elif rng.random() < 0.5:
            queries.append(f"{pred}({rng.choice(constants)})?")
        else:
            queries.append(f"{pred}(X)?")
    return tuple(rules), tuple(facts), tuple(queries)

"""Figure 2's more complicated inference graph ``G_B``.

``G_B`` hangs four retrievals off a three-level tree::

    G ──R_ga──> A ──D_a──> []
    G ──R_gs──> S ──R_sb──> B ──D_b──> []
                S ──R_st──> T ──R_tc──> C ──D_c──> []
                            T ──R_td──> D ──D_d──> []

The depth-first left-to-right strategy is the paper's ``Θ_ABCD``
(Equation 4); :func:`theta_abdc` and :func:`theta_acdb` are the two
named transformations of Section 3.2 (move ``R_td D_d`` before
``R_tc D_c``; move everything below ``R_st`` before ``R_sb``).
"""

from __future__ import annotations

from typing import Dict

from ..graphs.inference_graph import GraphBuilder, InferenceGraph
from ..strategies.strategy import Strategy
from ..strategies.transformations import SiblingSwap

__all__ = [
    "g_b",
    "theta_abcd",
    "theta_abdc",
    "theta_acdb",
    "tau_dc",
    "figure2_probabilities",
]


def g_b() -> InferenceGraph:
    """Figure 2's graph, unit costs, the paper's arc names."""
    builder = GraphBuilder("G")
    builder.reduction("Rga", "G", "A")
    builder.retrieval("Da", "A")
    builder.reduction("Rgs", "G", "S")
    builder.reduction("Rsb", "S", "B")
    builder.retrieval("Db", "B")
    builder.reduction("Rst", "S", "T")
    builder.reduction("Rtc", "T", "C")
    builder.retrieval("Dc", "C")
    builder.reduction("Rtd", "T", "D")
    builder.retrieval("Dd", "D")
    return builder.build()


def theta_abcd(graph: InferenceGraph) -> Strategy:
    """Equation 4: ``Θ_ABCD = ⟨R_ga D_a R_gs R_sb D_b R_st R_tc D_c R_td D_d⟩``."""
    return Strategy(
        graph,
        ["Rga", "Da", "Rgs", "Rsb", "Db", "Rst", "Rtc", "Dc", "Rtd", "Dd"],
    )


def theta_abdc(graph: InferenceGraph) -> Strategy:
    """``Θ_ABDC``: ``R_td D_d`` moved before ``R_tc D_c``."""
    return Strategy(
        graph,
        ["Rga", "Da", "Rgs", "Rsb", "Db", "Rst", "Rtd", "Dd", "Rtc", "Dc"],
    )


def theta_acdb(graph: InferenceGraph) -> Strategy:
    """``Θ_ACDB``: everything below ``R_st`` moved before ``R_sb``."""
    return Strategy(
        graph,
        ["Rga", "Da", "Rgs", "Rst", "Rtc", "Dc", "Rtd", "Dd", "Rsb", "Db"],
    )


def tau_dc() -> SiblingSwap:
    """The paper's ``τ_{d,c}``: reorder ``R_td``/``R_tc`` under ``T``
    (``τ_{d,c}(Θ_ABCD) = Θ_ABDC``)."""
    return SiblingSwap("Rtd", "Rtc")


def figure2_probabilities() -> Dict[str, float]:
    """A retrieval distribution matching Section 3.2's motivating
    observation — "the retrievals D_a, D_b and D_c all fail, but D_d
    succeeds" is the typical run — under which the paper's candidate
    moves are genuine improvements."""
    return {"Da": 0.05, "Db": 0.10, "Dc": 0.05, "Dd": 0.75}

"""Random Datalog workload generators for the substrate benchmarks.

Where :mod:`repro.graphs.random_graphs` fabricates symbolic graphs,
this module fabricates *concrete* knowledge bases — rule chains over
generated relations, fact databases with controllable selectivities,
and query streams — so the engine-level benchmarks
(``bench_engine.py``) and the end-to-end integration tests run against
realistic Datalog, not just arc abstractions.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from ..datalog.database import Database
from ..datalog.rules import Literal, Rule, RuleBase
from ..datalog.terms import Atom, Constant, Variable

__all__ = [
    "chain_rule_base",
    "disjunctive_rule_base",
    "random_database",
    "query_stream",
]


def chain_rule_base(length: int, predicate: str = "p") -> RuleBase:
    """A linear chain ``p0(X) :- p1(X). … p_{n-1}(X) :- p_n(X).``

    Exercises deep reductions; ``p_n`` is the only extensional relation.
    """
    if length < 1:
        raise ValueError("length must be at least 1")
    rules = []
    for index in range(length):
        head = Atom(f"{predicate}{index}", [Variable("X")])
        body = [Literal(Atom(f"{predicate}{index + 1}", [Variable("X")]))]
        rules.append(Rule(head, body, name=f"C{index}"))
    return RuleBase(rules)


def disjunctive_rule_base(
    branches: int,
    root: str = "goal",
    leaf_prefix: str = "leaf",
) -> RuleBase:
    """A one-level disjunction: ``goal(X) :- leaf_i(X).`` for each branch.

    The Datalog analogue of a flat inference graph with ``branches``
    retrievals — the shape the distributed-scan application uses.
    """
    if branches < 1:
        raise ValueError("need at least one branch")
    rules = []
    for index in range(branches):
        head = Atom(root, [Variable("X")])
        body = [Literal(Atom(f"{leaf_prefix}{index}", [Variable("X")]))]
        rules.append(Rule(head, body, name=f"B{index}"))
    return RuleBase(rules)


def random_database(
    rng: random.Random,
    relations: Dict[str, float],
    universe: Sequence[str],
) -> Database:
    """Facts over ``universe``: each individual joins relation ``r``
    with probability ``relations[r]`` (independent selectivities)."""
    database = Database()
    for name in universe:
        constant = Constant(name)
        for relation, selectivity in relations.items():
            if rng.random() < selectivity:
                database.add(Atom(relation, [constant]))
    return database


def query_stream(
    rng: random.Random,
    predicate: str,
    mix: Dict[str, float],
    count: int,
) -> List[Atom]:
    """``count`` ground queries ``predicate(κ)`` with ``κ ~ mix``."""
    names = sorted(mix)
    weights = [mix[name] for name in names]
    return [
        Atom(predicate, [Constant(rng.choices(names, weights=weights)[0])])
        for _ in range(count)
    ]

"""Section 5.2's negation-as-failure and first-k applications.

``pauper(x) :- not owns(x, Y)``: "we can determine whether some
individual is, or is not, a pauper by finding a single item that he
owns; n.b., we do not have to find each of his multitude of
possessions" — the refutation search inside the negation is itself a
satisficing search, so PIB/PAO apply to ordering *it*.

This module builds that scenario concretely: ownership is split across
category relations (``owns_realestate``, ``owns_vehicle``, …), the
refutation graph has one retrieval per category, and the population is
skewed so some categories refute pauperhood far more often per unit of
scan cost than others.  :func:`first_k_cost` implements the first-``k``
variant ("one set of variants seek the first k answers to a query").
"""

from __future__ import annotations

import random
from typing import Dict, Mapping, Optional, Tuple

from ..datalog.database import Database
from ..datalog.engine import TopDownEngine
from ..datalog.parser import parse_program
from ..datalog.rules import RuleBase
from ..datalog.terms import Atom, Constant
from ..graphs.contexts import Context
from ..graphs.inference_graph import GraphBuilder, InferenceGraph
from .distributions import ContextDistribution

__all__ = [
    "OWNERSHIP_CATEGORIES",
    "pauper_rule_base",
    "ownership_database",
    "refutation_graph",
    "OwnershipDistribution",
    "first_k_cost",
]

#: Ownership categories with (scan cost, ownership rate among queried
#: individuals).  Rates are marginal and independent per category.
OWNERSHIP_CATEGORIES: Dict[str, Tuple[float, float]] = {
    "realestate": (3.0, 0.10),
    "vehicle": (1.5, 0.45),
    "stocks": (2.0, 0.15),
    "jewelry": (1.0, 0.25),
}


def pauper_rule_base() -> RuleBase:
    """``pauper(X) :- person(X), not owns(X, Y).`` plus the category
    rules folding the per-category relations into ``owns``."""
    rules = ["pauper(X) :- person(X), not owns(X, Y)."]
    for category in OWNERSHIP_CATEGORIES:
        rules.append(f"@R_{category} owns(X, Y) :- owns_{category}(X, Y).")
    return parse_program("\n".join(rules))


def ownership_database(
    rng: random.Random, n_people: int = 200
) -> Database:
    """A synthetic population with independent per-category ownership."""
    database = Database()
    for index in range(n_people):
        person = Constant(f"person{index}")
        database.add(Atom("person", [person]))
        for category, (_cost, rate) in OWNERSHIP_CATEGORIES.items():
            if rng.random() < rate:
                database.add(
                    Atom(
                        f"owns_{category}",
                        [person, Constant(f"{category}_{index}")],
                    )
                )
    return database


def refutation_graph(
    categories: Optional[Mapping[str, Tuple[float, float]]] = None,
) -> InferenceGraph:
    """The satisficing search inside ``not owns(x, Y)``: one retrieval
    per ownership category, costs from the category table."""
    categories = categories or OWNERSHIP_CATEGORIES
    builder = GraphBuilder("owns_anything")
    for category, (cost, _rate) in categories.items():
        builder.reduction(f"R_{category}", "owns_anything", f"{category}")
        builder.retrieval(f"D_{category}", f"{category}", cost=cost)
    return builder.build()


class OwnershipDistribution(ContextDistribution):
    """Contexts for the refutation graph: independent category ownership."""

    def __init__(
        self,
        graph: InferenceGraph,
        categories: Optional[Mapping[str, Tuple[float, float]]] = None,
    ):
        self.graph = graph
        self.categories = dict(categories or OWNERSHIP_CATEGORIES)

    def arc_probabilities(self) -> Dict[str, float]:
        return {
            f"D_{category}": rate
            for category, (_cost, rate) in self.categories.items()
        }

    def sample(self, rng: random.Random) -> Context:
        statuses = {
            name: rng.random() < p
            for name, p in self.arc_probabilities().items()
        }
        return Context(self.graph, statuses)


def first_k_cost(
    engine: TopDownEngine,
    query: Atom,
    database: Database,
    k: int,
) -> Tuple[int, float]:
    """Cost of the first-``k`` variant: ``(answers found, charged cost)``.

    Useful for queries with a known small answer count ("``parent(x,Y)``
    will only yield two bindings for Y"): the engine stops as soon as
    ``k`` distinct answers are found rather than exhausting the space.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    answers = list(engine.answers(query, database, limit=k))
    if answers:
        return len(answers), answers[-1].trace.cost
    # No answer: the cost is that of the exhausted search.
    failed = engine.prove(query, database)
    return 0, failed.trace.cost

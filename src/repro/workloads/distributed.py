"""Section 5.2's application: ordering scans over horizontally
segmented distributed databases.

"Imagine we have several physical files that each store the same types
of facts about people.  Given a query like ``age(russ, X)``, we would
like to scan these files in the appropriate order — hoping to find the
file dealing with russ facts as early as possible."

The mapping onto the paper's machinery is direct: one retrieval arc per
segment (scanning segment ``i`` costs ``c_i``, succeeds iff the queried
individual's facts live there), a flat one-level inference graph, and a
strategy = a scan order.  Because an individual's facts live in exactly
*one* segment, the segment-success events are **negatively correlated**
— precisely the non-independent situation PIB handles and ``Υ`` does
not; the benches show PIB converging to the optimal order anyway.
"""

from __future__ import annotations

import random
from typing import List, Mapping, Optional, Sequence, Tuple

from ..errors import DistributionError
from ..graphs.contexts import Context
from ..graphs.inference_graph import GraphBuilder, InferenceGraph
from ..resilience.faults import FaultPlan, FaultSpec, FlakyContext
from ..strategies.strategy import Strategy
from .distributions import ContextDistribution

__all__ = [
    "SegmentedTable",
    "segment_scan_graph",
    "SegmentAccessDistribution",
    "FlakySegmentedTable",
    "FlakySegmentAccessDistribution",
    "DriftingFlakySegmentAccessDistribution",
    "burst_schedule",
]


class SegmentedTable:
    """A horizontally segmented relation: named segments with scan costs
    and per-segment hit rates.

    ``hit_rates[i]`` is the probability that a random query's
    individual lives in segment ``i``; the remainder ``1 − Σ`` is the
    chance the individual is unknown (every scan fails).
    """

    def __init__(
        self,
        segments: Sequence[str],
        scan_costs: Mapping[str, float],
        hit_rates: Mapping[str, float],
    ):
        if not segments:
            raise DistributionError("need at least one segment")
        self.segments = list(segments)
        self.scan_costs = {name: float(scan_costs[name]) for name in segments}
        self.hit_rates = {name: float(hit_rates[name]) for name in segments}
        for name in segments:
            if self.scan_costs[name] <= 0:
                raise DistributionError(f"segment {name!r} needs positive cost")
            if not 0.0 <= self.hit_rates[name] <= 1.0:
                raise DistributionError(f"bad hit rate for segment {name!r}")
        total = sum(self.hit_rates.values())
        if total > 1.0 + 1e-9:
            raise DistributionError(f"hit rates sum to {total} > 1")
        self.miss_rate = max(0.0, 1.0 - total)

    def optimal_order(self) -> List[str]:
        """The provably optimal scan order.

        With exactly-one-home semantics the classic ratio rule applies
        segment-wise: scan by decreasing ``hit_rate / scan_cost``
        (Simon–Kadane; exchanging two adjacent segments changes the
        expected cost by the ratio difference).
        """
        return sorted(
            self.segments,
            key=lambda name: (
                -self.hit_rates[name] / self.scan_costs[name],
                name,
            ),
        )

    def expected_cost(self, order: Sequence[str]) -> float:
        """Exact expected scan cost of an order under this table."""
        if sorted(order) != sorted(self.segments):
            raise DistributionError("order must permute the segments")
        total = 0.0
        prefix_cost = 0.0
        for name in order:
            prefix_cost += self.scan_costs[name]
            total += self.hit_rates[name] * prefix_cost
        total += self.miss_rate * prefix_cost
        return total


def segment_scan_graph(table: SegmentedTable) -> InferenceGraph:
    """The one-level inference graph: one retrieval arc per segment."""
    builder = GraphBuilder("query")
    for name in table.segments:
        builder.retrieval(
            f"scan_{name}", "query", cost=table.scan_costs[name]
        )
    return builder.build()


class SegmentAccessDistribution(ContextDistribution):
    """Contexts for the scan graph: exactly one segment holds the answer
    (or none, with the miss rate) — a correlated distribution."""

    def __init__(self, graph: InferenceGraph, table: SegmentedTable):
        self.graph = graph
        self.table = table
        self._arc_names = [f"scan_{name}" for name in table.segments]
        expected = {arc.name for arc in graph.retrieval_arcs()}
        if set(self._arc_names) != expected:
            raise DistributionError(
                "graph does not match the table's segments"
            )

    def _context_for(self, home: Optional[str]) -> Context:
        statuses = {
            f"scan_{name}": name == home for name in self.table.segments
        }
        return Context(self.graph, statuses)

    def sample(self, rng: random.Random) -> Context:
        roll = rng.random()
        cumulative = 0.0
        for name in self.table.segments:
            cumulative += self.table.hit_rates[name]
            if roll < cumulative:
                return self._context_for(name)
        return self._context_for(None)

    def support(self) -> List[Tuple[float, Context]]:
        weighted = [
            (self.table.hit_rates[name], self._context_for(name))
            for name in self.table.segments
            if self.table.hit_rates[name] > 0.0
        ]
        if self.table.miss_rate > 0.0:
            weighted.append((self.table.miss_rate, self._context_for(None)))
        return weighted

    def strategy_for_order(self, order: Sequence[str]) -> Strategy:
        """The strategy scanning segments in ``order``."""
        return Strategy.from_retrieval_order(
            self.graph, [f"scan_{name}" for name in order]
        )


class FlakySegmentedTable(SegmentedTable):
    """A segmented table whose segments fail like real remote files.

    On top of :class:`SegmentedTable`'s costs and hit rates, each
    segment carries a *transient* per-attempt ``failure_rate`` (the
    scan RPC errors out and must be retried) and optionally a
    ``timeout_rate`` (the scan hangs until the deadline-style timeout
    fires, charged at the timeout multiplier).  Failures say nothing
    about where the individual's facts live — the underlying hit/miss
    truth is untouched — which is exactly why the resilient executor
    must keep them out of PIB's Δ̃ statistics.
    """

    def __init__(
        self,
        segments: Sequence[str],
        scan_costs: Mapping[str, float],
        hit_rates: Mapping[str, float],
        failure_rates: Mapping[str, float],
        timeout_rates: Optional[Mapping[str, float]] = None,
    ):
        super().__init__(segments, scan_costs, hit_rates)
        timeout_rates = timeout_rates or {}
        self.failure_rates = {
            name: float(failure_rates.get(name, 0.0)) for name in segments
        }
        self.timeout_rates = {
            name: float(timeout_rates.get(name, 0.0)) for name in segments
        }
        for name in segments:
            rate = self.failure_rates[name] + self.timeout_rates[name]
            if not 0.0 <= rate <= 1.0:
                raise DistributionError(
                    f"segment {name!r} failure+timeout rate {rate} not in [0, 1]"
                )

    def fault_plan(self, seed: int = 0) -> FaultPlan:
        """A seeded :class:`FaultPlan` over the scan arcs."""
        return FaultPlan(
            seed=seed,
            per_arc={
                f"scan_{name}": FaultSpec(
                    fault_rate=self.failure_rates[name],
                    timeout_rate=self.timeout_rates[name],
                )
                for name in self.segments
            },
        )


class FlakySegmentAccessDistribution(SegmentAccessDistribution):
    """Segment-access contexts wrapped in seeded fault injection.

    Sampling is *two* independent deterministic processes: the context
    draw (which segment holds the answer) uses the caller's RNG exactly
    as in :class:`SegmentAccessDistribution`, while the fault injection
    uses the plan's own per-arc streams.  Equal context seeds therefore
    yield the same context sequence with and without faults — the
    property the convergence-under-chaos tests rely on.
    """

    def __init__(
        self,
        graph: InferenceGraph,
        table: FlakySegmentedTable,
        fault_seed: int = 0,
    ):
        super().__init__(graph, table)
        self.plan = table.fault_plan(fault_seed)

    def sample(self, rng: random.Random) -> Context:
        return FlakyContext(super().sample(rng), self.plan)


class DriftingFlakySegmentAccessDistribution(FlakySegmentAccessDistribution):
    """Combined chaos: the data *moves* while the network stays broken.

    Models a re-sharding under fire — before ``shift_at`` draws the
    individual homes follow the table's hit rates; from that draw on
    they follow ``shifted_hit_rates`` (say, a hot segment was split and
    its facts migrated).  The fault plan is **shared across the
    boundary**: the drift changes where facts live, not how the network
    fails, so the per-arc fault streams run uninterrupted.  That keeps
    the three chaos axes — drift, faults, burst — independently seeded
    and therefore independently attributable when a verify world fails.

    Stateful like
    :class:`~repro.workloads.distributions.PiecewiseStationaryDistribution`:
    each :meth:`sample` advances a draw counter; :meth:`reset` rewinds
    it for repeated benchmark passes.
    """

    def __init__(
        self,
        graph: InferenceGraph,
        table: FlakySegmentedTable,
        shifted_hit_rates: Mapping[str, float],
        shift_at: int,
        fault_seed: int = 0,
    ):
        super().__init__(graph, table, fault_seed)
        if shift_at < 0:
            raise DistributionError(f"shift_at must be >= 0, got {shift_at}")
        shifted = FlakySegmentedTable(
            table.segments,
            table.scan_costs,
            shifted_hit_rates,
            table.failure_rates,
            table.timeout_rates,
        )
        self.shifted = FlakySegmentAccessDistribution(graph, shifted, fault_seed)
        self.shifted.plan = self.plan  # one fault stream across the boundary
        self.shift_at = shift_at
        self.draws = 0

    @property
    def drifted(self) -> bool:
        """Whether the next draw comes from the post-shift regime."""
        return self.draws >= self.shift_at

    def current_table(self) -> FlakySegmentedTable:
        """The table governing the next draw (pre- or post-shift)."""
        table = self.shifted.table if self.drifted else self.table
        assert isinstance(table, FlakySegmentedTable)
        return table

    def sample(self, rng: random.Random) -> Context:
        source = self.shifted if self.drifted else self
        self.draws += 1
        if source is self:
            return super().sample(rng)
        return source.sample(rng)

    def reset(self) -> None:
        """Rewind to the pre-shift regime *and* restart the fault
        streams (for repeated bench passes)."""
        self.draws = 0
        self.plan.reset()


def burst_schedule(
    ticks: int, burst_factor: int, period: int = 8, phase: int = 0
) -> List[int]:
    """Per-tick arrival counts for a deterministic bursty open loop.

    One arrival per tick at baseline; every ``period``-th tick (offset
    by ``phase``) delivers ``burst_factor`` arrivals at once.  The total
    is a pure function of the arguments, so benches and verify worlds
    can state expected admission counts exactly — no Poisson clock to
    seed or argue about.
    """
    if ticks < 0:
        raise DistributionError(f"ticks must be >= 0, got {ticks}")
    if burst_factor < 1:
        raise DistributionError(
            f"burst_factor must be >= 1, got {burst_factor}"
        )
    if period < 1:
        raise DistributionError(f"period must be >= 1, got {period}")
    return [
        burst_factor if tick % period == phase % period else 1
        for tick in range(ticks)
    ]

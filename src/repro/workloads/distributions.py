"""Context distributions: the stationary ``Pr : I → [0,1]`` of §2.1.

Every learner in this library consumes contexts through an *oracle* —
"this oracle could simply be the system's user, who is posing queries"
(Section 3.1).  A :class:`ContextDistribution` is that oracle plus
whatever exact structure it can expose:

* :class:`IndependentDistribution` — each experiment arc blocks
  independently (footnote 8's assumption, required by ``Υ``); exposes
  the probability vector, so expected costs are exact and fast;
* :class:`ExplicitDistribution` — an explicit weighted list of
  contexts, allowing *arbitrary correlations* between arcs (PIB's
  setting: it "does not require that the success probabilities of the
  retrievals be independent", Section 5.3);
* :class:`MixtureDistribution` — a convex mixture of distributions
  (correlated even when the components are independent);
* :class:`DatalogDistribution` — the concrete level: sample a
  ``⟨query, DB⟩`` pair and compile it to a context through the engine.

All classes implement ``sampler(rng)`` (a zero-argument oracle bound to
a generator) and ``expected_cost(strategy)`` using the best available
evaluation route.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import DistributionError
from ..datalog.database import Database
from ..datalog.terms import Atom
from ..graphs.contexts import Context, context_from_datalog
from ..graphs.inference_graph import InferenceGraph
from ..strategies.expected_cost import (
    expected_cost_exact,
    expected_cost_explicit,
    expected_cost_monte_carlo,
)
from ..strategies.strategy import Strategy

__all__ = [
    "ContextDistribution",
    "IndependentDistribution",
    "ExplicitDistribution",
    "MixtureDistribution",
    "DatalogDistribution",
]


class ContextDistribution:
    """Abstract stationary distribution over contexts."""

    graph: InferenceGraph

    def sample(self, rng: random.Random) -> Context:
        """Draw one context."""
        raise NotImplementedError

    def sampler(self, rng: random.Random) -> Callable[[], Context]:
        """A zero-argument oracle bound to ``rng`` — what PIB/PAO take."""
        return lambda: self.sample(rng)

    def support(self) -> Optional[List[Tuple[float, Context]]]:
        """The weighted support, when finite and enumerable (else None)."""
        return None

    def arc_probabilities(self) -> Optional[Dict[str, float]]:
        """Marginal success probabilities, when the arcs are independent."""
        return None

    def expected_cost(
        self,
        strategy: Strategy,
        samples: int = 20_000,
        rng: Optional[random.Random] = None,
    ) -> float:
        """``C[Θ]`` by the most exact available route.

        Independent distributions use the closed form, enumerable ones
        the explicit sum, anything else a Monte-Carlo estimate with
        ``samples`` draws.
        """
        probs = self.arc_probabilities()
        if probs is not None:
            return expected_cost_exact(strategy, probs)
        weighted = self.support()
        if weighted is not None:
            return expected_cost_explicit(strategy, weighted)
        rng = rng or random.Random(0)
        return expected_cost_monte_carlo(strategy, self.sampler(rng), samples)


class IndependentDistribution(ContextDistribution):
    """Independent per-arc blocking with a fixed probability vector."""

    #: Above this many experiments the support is no longer enumerated.
    ENUMERATION_LIMIT = 16

    def __init__(self, graph: InferenceGraph, probs: Mapping[str, float]):
        self.graph = graph
        self.probs: Dict[str, float] = {}
        for arc in graph.experiments():
            if arc.name not in probs:
                raise DistributionError(
                    f"missing probability for experiment {arc.name!r}"
                )
            p = float(probs[arc.name])
            if not 0.0 <= p <= 1.0:
                raise DistributionError(f"p({arc.name}) = {p} not in [0, 1]")
            self.probs[arc.name] = p
        extra = set(probs) - set(self.probs)
        if extra:
            raise DistributionError(
                f"probabilities given for non-experiments: {sorted(extra)}"
            )

    def sample(self, rng: random.Random) -> Context:
        statuses = {
            name: rng.random() < p for name, p in self.probs.items()
        }
        return Context(self.graph, statuses)

    def arc_probabilities(self) -> Dict[str, float]:
        return dict(self.probs)

    def support(self) -> Optional[List[Tuple[float, Context]]]:
        names = sorted(self.probs)
        if len(names) > self.ENUMERATION_LIMIT:
            return None
        weighted: List[Tuple[float, Context]] = []
        for outcome in itertools.product((True, False), repeat=len(names)):
            weight = 1.0
            statuses = {}
            for name, ok in zip(names, outcome):
                weight *= self.probs[name] if ok else 1.0 - self.probs[name]
                statuses[name] = ok
            if weight > 0.0:
                weighted.append((weight, Context(self.graph, statuses)))
        return weighted


class ExplicitDistribution(ContextDistribution):
    """A finite weighted list of contexts; correlations unrestricted."""

    def __init__(
        self,
        graph: InferenceGraph,
        weighted: Sequence[Tuple[float, Mapping[str, bool]]],
    ):
        self.graph = graph
        self._weighted: List[Tuple[float, Context]] = []
        total = 0.0
        for weight, statuses in weighted:
            if weight < 0:
                raise DistributionError(f"negative weight {weight}")
            total += weight
            context = (
                statuses
                if isinstance(statuses, Context)
                else Context(graph, statuses)
            )
            self._weighted.append((weight, context))
        if abs(total - 1.0) > 1e-9:
            raise DistributionError(f"weights sum to {total}, expected 1")

    def sample(self, rng: random.Random) -> Context:
        roll = rng.random()
        cumulative = 0.0
        for weight, context in self._weighted:
            cumulative += weight
            if roll < cumulative:
                return context
        return self._weighted[-1][1]

    def support(self) -> List[Tuple[float, Context]]:
        return list(self._weighted)

    def arc_probabilities(self) -> Optional[Dict[str, float]]:
        """Marginals — returned only when the arcs really are independent."""
        marginals: Dict[str, float] = {}
        for arc in self.graph.experiments():
            marginals[arc.name] = sum(
                weight
                for weight, context in self._weighted
                if context.traversable(arc)
            )
        # Verify independence: joint == product of marginals on support.
        for weight, context in self._weighted:
            product = 1.0
            for arc in self.graph.experiments():
                p = marginals[arc.name]
                product *= p if context.traversable(arc) else 1.0 - p
            if abs(product - self._joint(context)) > 1e-9:
                return None
        return marginals

    def _joint(self, context: Context) -> float:
        return sum(
            weight
            for weight, candidate in self._weighted
            if candidate == context
        )


class MixtureDistribution(ContextDistribution):
    """A convex mixture of component distributions over one graph."""

    def __init__(
        self,
        components: Sequence[Tuple[float, ContextDistribution]],
    ):
        if not components:
            raise DistributionError("a mixture needs at least one component")
        self.graph = components[0][1].graph
        total = 0.0
        for weight, component in components:
            if weight < 0:
                raise DistributionError(f"negative mixture weight {weight}")
            if component.graph is not self.graph:
                raise DistributionError(
                    "all mixture components must share one graph"
                )
            total += weight
        if abs(total - 1.0) > 1e-9:
            raise DistributionError(f"mixture weights sum to {total}")
        self._components = list(components)

    def sample(self, rng: random.Random) -> Context:
        roll = rng.random()
        cumulative = 0.0
        for weight, component in self._components:
            cumulative += weight
            if roll < cumulative:
                return component.sample(rng)
        return self._components[-1][1].sample(rng)

    def support(self) -> Optional[List[Tuple[float, Context]]]:
        merged: Dict[Context, float] = {}
        for weight, component in self._components:
            inner = component.support()
            if inner is None:
                return None
            for inner_weight, context in inner:
                merged[context] = merged.get(context, 0.0) + weight * inner_weight
        return [(weight, context) for context, weight in merged.items()]


class DatalogDistribution(ContextDistribution):
    """Concrete contexts: sample ``⟨query, DB⟩`` and compile to arc statuses.

    ``pair_sampler(rng)`` returns the next query atom and the database
    it runs against (databases "can vary from one query processing
    context to another", Section 2.1 — though a fixed database is the
    common case).
    """

    def __init__(
        self,
        graph: InferenceGraph,
        pair_sampler: Callable[[random.Random], Tuple[Atom, Database]],
    ):
        self.graph = graph
        self._pair_sampler = pair_sampler

    def sample(self, rng: random.Random) -> Context:
        query, database = self._pair_sampler(rng)
        return context_from_datalog(self.graph, query, database)

"""Context distributions: the stationary ``Pr : I → [0,1]`` of §2.1.

Every learner in this library consumes contexts through an *oracle* —
"this oracle could simply be the system's user, who is posing queries"
(Section 3.1).  A :class:`ContextDistribution` is that oracle plus
whatever exact structure it can expose:

* :class:`IndependentDistribution` — each experiment arc blocks
  independently (footnote 8's assumption, required by ``Υ``); exposes
  the probability vector, so expected costs are exact and fast;
* :class:`ExplicitDistribution` — an explicit weighted list of
  contexts, allowing *arbitrary correlations* between arcs (PIB's
  setting: it "does not require that the success probabilities of the
  retrievals be independent", Section 5.3);
* :class:`MixtureDistribution` — a convex mixture of distributions
  (correlated even when the components are independent);
* :class:`DatalogDistribution` — the concrete level: sample a
  ``⟨query, DB⟩`` pair and compile it to a context through the engine.

All classes implement ``sampler(rng)`` (a zero-argument oracle bound to
a generator) and ``expected_cost(strategy)`` using the best available
evaluation route.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import DistributionError
from ..datalog.database import Database
from ..datalog.terms import Atom
from ..graphs.contexts import Context, context_from_datalog
from ..graphs.inference_graph import InferenceGraph
from ..strategies.expected_cost import (
    expected_cost_exact,
    expected_cost_explicit,
    expected_cost_monte_carlo,
)
from ..strategies.strategy import Strategy

__all__ = [
    "ContextDistribution",
    "IndependentDistribution",
    "ExplicitDistribution",
    "MixtureDistribution",
    "DatalogDistribution",
    "PiecewiseStationaryDistribution",
    "BlendingDistribution",
]


class ContextDistribution:
    """Abstract stationary distribution over contexts."""

    graph: InferenceGraph

    def sample(self, rng: random.Random) -> Context:
        """Draw one context."""
        raise NotImplementedError

    def sampler(self, rng: random.Random) -> Callable[[], Context]:
        """A zero-argument oracle bound to ``rng`` — what PIB/PAO take."""
        return lambda: self.sample(rng)

    def support(self) -> Optional[List[Tuple[float, Context]]]:
        """The weighted support, when finite and enumerable (else None)."""
        return None

    def arc_probabilities(self) -> Optional[Dict[str, float]]:
        """Marginal success probabilities, when the arcs are independent."""
        return None

    def expected_cost(
        self,
        strategy: Strategy,
        samples: int = 20_000,
        rng: Optional[random.Random] = None,
    ) -> float:
        """``C[Θ]`` by the most exact available route.

        Independent distributions use the closed form, enumerable ones
        the explicit sum, anything else a Monte-Carlo estimate with
        ``samples`` draws.
        """
        probs = self.arc_probabilities()
        if probs is not None:
            return expected_cost_exact(strategy, probs)
        weighted = self.support()
        if weighted is not None:
            return expected_cost_explicit(strategy, weighted)
        rng = rng or random.Random(0)
        return expected_cost_monte_carlo(strategy, self.sampler(rng), samples)


class IndependentDistribution(ContextDistribution):
    """Independent per-arc blocking with a fixed probability vector."""

    #: Above this many experiments the support is no longer enumerated.
    ENUMERATION_LIMIT = 16

    def __init__(self, graph: InferenceGraph, probs: Mapping[str, float]):
        self.graph = graph
        self.probs: Dict[str, float] = {}
        for arc in graph.experiments():
            if arc.name not in probs:
                raise DistributionError(
                    f"missing probability for experiment {arc.name!r}"
                )
            p = float(probs[arc.name])
            if not 0.0 <= p <= 1.0:
                raise DistributionError(f"p({arc.name}) = {p} not in [0, 1]")
            self.probs[arc.name] = p
        extra = set(probs) - set(self.probs)
        if extra:
            raise DistributionError(
                f"probabilities given for non-experiments: {sorted(extra)}"
            )

    def sample(self, rng: random.Random) -> Context:
        statuses = {
            name: rng.random() < p for name, p in self.probs.items()
        }
        return Context(self.graph, statuses)

    def arc_probabilities(self) -> Dict[str, float]:
        return dict(self.probs)

    def support(self) -> Optional[List[Tuple[float, Context]]]:
        names = sorted(self.probs)
        if len(names) > self.ENUMERATION_LIMIT:
            return None
        weighted: List[Tuple[float, Context]] = []
        for outcome in itertools.product((True, False), repeat=len(names)):
            weight = 1.0
            statuses = {}
            for name, ok in zip(names, outcome):
                weight *= self.probs[name] if ok else 1.0 - self.probs[name]
                statuses[name] = ok
            if weight > 0.0:
                weighted.append((weight, Context(self.graph, statuses)))
        return weighted


class ExplicitDistribution(ContextDistribution):
    """A finite weighted list of contexts; correlations unrestricted."""

    def __init__(
        self,
        graph: InferenceGraph,
        weighted: Sequence[Tuple[float, Mapping[str, bool]]],
    ):
        self.graph = graph
        self._weighted: List[Tuple[float, Context]] = []
        total = 0.0
        for weight, statuses in weighted:
            if weight < 0:
                raise DistributionError(f"negative weight {weight}")
            total += weight
            context = (
                statuses
                if isinstance(statuses, Context)
                else Context(graph, statuses)
            )
            self._weighted.append((weight, context))
        if abs(total - 1.0) > 1e-9:
            raise DistributionError(f"weights sum to {total}, expected 1")

    def sample(self, rng: random.Random) -> Context:
        roll = rng.random()
        cumulative = 0.0
        for weight, context in self._weighted:
            cumulative += weight
            if roll < cumulative:
                return context
        return self._weighted[-1][1]

    def support(self) -> List[Tuple[float, Context]]:
        return list(self._weighted)

    def arc_probabilities(self) -> Optional[Dict[str, float]]:
        """Marginals — returned only when the arcs really are independent."""
        marginals: Dict[str, float] = {}
        for arc in self.graph.experiments():
            marginals[arc.name] = sum(
                weight
                for weight, context in self._weighted
                if context.traversable(arc)
            )
        # Verify independence: joint == product of marginals on support.
        for weight, context in self._weighted:
            product = 1.0
            for arc in self.graph.experiments():
                p = marginals[arc.name]
                product *= p if context.traversable(arc) else 1.0 - p
            if abs(product - self._joint(context)) > 1e-9:
                return None
        return marginals

    def _joint(self, context: Context) -> float:
        return sum(
            weight
            for weight, candidate in self._weighted
            if candidate == context
        )


class MixtureDistribution(ContextDistribution):
    """A convex mixture of component distributions over one graph."""

    def __init__(
        self,
        components: Sequence[Tuple[float, ContextDistribution]],
    ):
        if not components:
            raise DistributionError("a mixture needs at least one component")
        self.graph = components[0][1].graph
        total = 0.0
        for weight, component in components:
            if weight < 0:
                raise DistributionError(f"negative mixture weight {weight}")
            if component.graph is not self.graph:
                raise DistributionError(
                    "all mixture components must share one graph"
                )
            total += weight
        if abs(total - 1.0) > 1e-9:
            raise DistributionError(f"mixture weights sum to {total}")
        self._components = list(components)

    def sample(self, rng: random.Random) -> Context:
        roll = rng.random()
        cumulative = 0.0
        for weight, component in self._components:
            cumulative += weight
            if roll < cumulative:
                return component.sample(rng)
        return self._components[-1][1].sample(rng)

    def support(self) -> Optional[List[Tuple[float, Context]]]:
        merged: Dict[Context, float] = {}
        for weight, component in self._components:
            inner = component.support()
            if inner is None:
                return None
            for inner_weight, context in inner:
                merged[context] = merged.get(context, 0.0) + weight * inner_weight
        return [(weight, context) for context, weight in merged.items()]


class PiecewiseStationaryDistribution(ContextDistribution):
    """Abrupt regime changes: a schedule of stationary segments.

    The §2.1 stationarity assumption, deliberately broken: the
    distribution is ``regimes[0]`` for its ``duration`` draws, then
    ``regimes[1]``, and so on; the last regime runs forever (its
    duration may be ``None`` to say so explicitly).  This is the
    *piecewise-stationary* model drift detection is analysed under —
    within a segment every Chernoff argument applies, across a boundary
    none do.

    The wrapper is **stateful**: every :meth:`sample` advances an
    internal draw counter, and the introspection surface
    (:meth:`arc_probabilities`, :meth:`support`, :meth:`expected_cost`)
    describes the *current* regime — what a drift-aware learner is
    trying to track.  Usable standalone (hand its :meth:`sampler` to
    any learner) as well as by ``bench_drift``.
    """

    def __init__(
        self,
        graph: InferenceGraph,
        regimes: Sequence[Tuple[Optional[int], ContextDistribution]],
    ):
        if not regimes:
            raise DistributionError("need at least one regime")
        self.graph = graph
        self._regimes: List[Tuple[Optional[int], ContextDistribution]] = []
        for index, (duration, distribution) in enumerate(regimes):
            if distribution.graph is not graph:
                raise DistributionError(
                    "all regimes must share the wrapper's graph"
                )
            last = index == len(regimes) - 1
            if duration is None and not last:
                raise DistributionError(
                    "only the final regime may have unbounded duration"
                )
            if duration is not None and duration < 1:
                raise DistributionError(
                    f"regime {index} duration must be >= 1, got {duration}"
                )
            self._regimes.append((duration, distribution))
        self.draws = 0

    def regime_at(self, draw: int) -> int:
        """Index of the regime governing the given 0-based draw."""
        remaining = draw
        for index, (duration, _) in enumerate(self._regimes):
            if duration is None or remaining < duration:
                return index
            remaining -= duration
        return len(self._regimes) - 1

    @property
    def regime_index(self) -> int:
        """Which regime the *next* draw comes from."""
        return self.regime_at(self.draws)

    def current_regime(self) -> ContextDistribution:
        """The stationary distribution governing the next draw."""
        return self._regimes[self.regime_index][1]

    def change_points(self) -> List[int]:
        """The draw numbers at which each later regime begins."""
        points: List[int] = []
        total = 0
        for duration, _ in self._regimes[:-1]:
            total += duration
            points.append(total)
        return points

    def sample(self, rng: random.Random) -> Context:
        regime = self.current_regime()
        self.draws += 1
        return regime.sample(rng)

    def arc_probabilities(self) -> Optional[Dict[str, float]]:
        """The current regime's marginals (the drifting target)."""
        return self.current_regime().arc_probabilities()

    def support(self) -> Optional[List[Tuple[float, Context]]]:
        return self.current_regime().support()

    def expected_cost(
        self,
        strategy: Strategy,
        samples: int = 20_000,
        rng: Optional[random.Random] = None,
    ) -> float:
        """``C[Θ]`` under the *current* regime (per-regime optimum)."""
        return self.current_regime().expected_cost(strategy, samples, rng)

    def reset(self) -> None:
        """Rewind to the first regime (for repeated benchmark runs)."""
        self.draws = 0


class BlendingDistribution(ContextDistribution):
    """Gradual drift: one distribution cross-fading into another.

    For the first ``hold`` draws the mix is pure ``start``; over the
    next ``blend_over`` draws the probability of sampling from ``end``
    ramps linearly from 0 to 1; afterwards the mix is pure ``end``.
    Each draw is a two-component mixture, so marginal success
    probabilities interpolate linearly — the *gradual* counterpart of
    :class:`PiecewiseStationaryDistribution`'s jumps, and the harder
    case for change detectors (no single boundary to find).

    Like the piecewise wrapper it is stateful, and its introspection
    describes the instantaneous mixture: :meth:`arc_probabilities`
    reports the blended marginals, :meth:`expected_cost` the exact
    mixture expectation ``(1−w)·C_start[Θ] + w·C_end[Θ]``.
    """

    def __init__(
        self,
        graph: InferenceGraph,
        start: ContextDistribution,
        end: ContextDistribution,
        blend_over: int,
        hold: int = 0,
    ):
        if start.graph is not graph or end.graph is not graph:
            raise DistributionError(
                "start and end must share the wrapper's graph"
            )
        if blend_over < 1:
            raise DistributionError(
                f"blend_over must be >= 1, got {blend_over}"
            )
        if hold < 0:
            raise DistributionError(f"hold must be >= 0, got {hold}")
        self.graph = graph
        self.start = start
        self.end = end
        self.blend_over = blend_over
        self.hold = hold
        self.draws = 0

    def weight_at(self, draw: int) -> float:
        """The ``end`` component's mixing weight at a 0-based draw."""
        if draw < self.hold:
            return 0.0
        return min(1.0, (draw - self.hold) / self.blend_over)

    @property
    def weight(self) -> float:
        """The mixing weight the *next* draw uses."""
        return self.weight_at(self.draws)

    def sample(self, rng: random.Random) -> Context:
        weight = self.weight
        self.draws += 1
        component = self.end if rng.random() < weight else self.start
        return component.sample(rng)

    def arc_probabilities(self) -> Optional[Dict[str, float]]:
        """Exact instantaneous marginals: ``(1−w)·p_start + w·p_end``.

        Marginals of a mixture are exact even though the joint is
        correlated; callers needing the joint should use
        :meth:`support`.
        """
        first = self.start.arc_probabilities()
        second = self.end.arc_probabilities()
        if first is None or second is None:
            return None
        weight = self.weight
        return {
            name: (1.0 - weight) * first[name] + weight * second[name]
            for name in first
        }

    def support(self) -> Optional[List[Tuple[float, Context]]]:
        """The instantaneous mixture's weighted support."""
        weight = self.weight
        components = []
        if weight < 1.0:
            components.append((1.0 - weight, self.start))
        if weight > 0.0:
            components.append((weight, self.end))
        merged: Dict[Context, float] = {}
        for outer, component in components:
            inner = component.support()
            if inner is None:
                return None
            for inner_weight, context in inner:
                merged[context] = (
                    merged.get(context, 0.0) + outer * inner_weight
                )
        return [(weight, context) for context, weight in merged.items()]

    def expected_cost(
        self,
        strategy: Strategy,
        samples: int = 20_000,
        rng: Optional[random.Random] = None,
    ) -> float:
        """The exact mixture expectation at the current draw count."""
        weight = self.weight
        cost = 0.0
        if weight < 1.0:
            cost += (1.0 - weight) * self.start.expected_cost(
                strategy, samples, rng
            )
        if weight > 0.0:
            cost += weight * self.end.expected_cost(strategy, samples, rng)
        return cost

    def reset(self) -> None:
        """Rewind the cross-fade (for repeated benchmark runs)."""
        self.draws = 0


class DatalogDistribution(ContextDistribution):
    """Concrete contexts: sample ``⟨query, DB⟩`` and compile to arc statuses.

    ``pair_sampler(rng)`` returns the next query atom and the database
    it runs against (databases "can vary from one query processing
    context to another", Section 2.1 — though a fixed database is the
    common case).
    """

    def __init__(
        self,
        graph: InferenceGraph,
        pair_sampler: Callable[[random.Random], Tuple[Atom, Database]],
    ):
        self.graph = graph
        self._pair_sampler = pair_sampler

    def sample(self, rng: random.Random) -> Context:
        query, database = self._pair_sampler(rng)
        return context_from_datalog(self.graph, query, database)

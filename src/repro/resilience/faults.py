"""Deterministic, seedable fault injection.

The paper's Section 5.2 application — ordering scans over horizontally
segmented *distributed* databases — is exactly the setting where real
retrievals misbehave: a segment times out, a connection drops, a scan
takes ten times longer than budgeted.  This module simulates those
failure modes reproducibly, so every resilience property in the test
suite and the chaos benches is a deterministic function of a seed:

* :class:`FaultSpec` — the per-arc failure profile: transient-fault
  and timeout probabilities, latency (cost) spikes, and an optional
  deterministic burst of failures on the first attempts;
* :class:`FaultPlan` — a seeded injector mapping arc names to specs
  and drawing one :class:`Injection` per attempt;
* :class:`FlakyContext` — wraps a :class:`~repro.graphs.contexts.Context`
  so that attempting an arc may raise
  :class:`~repro.errors.RetrievalFaultError` (transiently — the
  underlying blocked/unblocked truth is unchanged);
* :class:`FlakyDatabase` — wraps a Datalog
  :class:`~repro.datalog.database.Database` so the self-optimizing
  processor's lazy retrievals fault at the storage layer, keyed by
  predicate name.

Faults are *transient* by construction: retrying the same attempt
re-draws from the plan, and the settled outcome always reflects the
wrapped context or database.  Nothing here ever changes an answer —
only whether (and at what cost) the answer is reachable on a given
attempt.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional, Tuple

from ..datalog.database import Database
from ..errors import DistributionError, RetrievalFaultError
from ..graphs.contexts import Context
from ..graphs.inference_graph import Arc, ArcKind

__all__ = [
    "FaultSpec",
    "Injection",
    "FaultPlan",
    "FlakyContext",
    "FlakyDatabase",
]

#: Cost multiplier charged for a simulated timeout: the caller waited
#: for the full (worst-case) attempt and then some before giving up.
TIMEOUT_COST_MULTIPLIER = 2.0


@dataclass(frozen=True)
class FaultSpec:
    """One arc's (or predicate's) failure profile.

    ``fault_rate``
        Probability that an attempt raises a plain transient fault.
    ``timeout_rate``
        Probability that an attempt raises a simulated timeout, which
        charges ``TIMEOUT_COST_MULTIPLIER`` times the attempt cost.
    ``latency_rate`` / ``latency_factor``
        Probability that an otherwise-successful attempt suffers a
        cost spike, and the multiplier it is charged.
    ``fail_first``
        Deterministically fail this many *initial* attempts before the
        probabilistic regime starts — the knob tests use to exercise
        retry exhaustion and circuit opening without relying on rates.
    """

    fault_rate: float = 0.0
    timeout_rate: float = 0.0
    latency_rate: float = 0.0
    latency_factor: float = 1.0
    fail_first: int = 0

    def __post_init__(self):
        for name in ("fault_rate", "timeout_rate", "latency_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise DistributionError(f"{name} must be in [0, 1], got {rate}")
        if self.fault_rate + self.timeout_rate > 1.0 + 1e-9:
            raise DistributionError("fault_rate + timeout_rate exceeds 1")
        if self.latency_factor < 1.0:
            raise DistributionError("latency_factor must be at least 1")
        if self.fail_first < 0:
            raise DistributionError("fail_first cannot be negative")


@dataclass(frozen=True)
class Injection:
    """What the plan decided for one attempt.

    ``faulted`` means the attempt raises; ``timeout`` refines the kind;
    ``cost_multiplier`` scales the attempt's charge either way (timeout
    waits, latency spikes).
    """

    faulted: bool = False
    timeout: bool = False
    cost_multiplier: float = 1.0

    def raise_if_faulted(self, arc_name: str) -> None:
        if self.faulted:
            raise RetrievalFaultError(
                arc_name,
                timeout=self.timeout,
                cost_multiplier=self.cost_multiplier,
            )


_CLEAN = Injection()


class FaultPlan:
    """A seeded map from arc name to failure behaviour.

    Draws are deterministic given the seed *and* the sequence of
    attempts: each arc consumes its own RNG stream (seeded from the
    plan seed and the arc name), so injecting faults on one arc never
    perturbs the draws of another, and re-running the same attempt
    sequence reproduces the same injections exactly.
    """

    def __init__(
        self,
        seed: int = 0,
        default: Optional[FaultSpec] = None,
        per_arc: Optional[Mapping[str, FaultSpec]] = None,
    ):
        self.seed = int(seed)
        self.default = default or FaultSpec()
        self.per_arc: Dict[str, FaultSpec] = dict(per_arc or {})
        self._rngs: Dict[str, random.Random] = {}
        self._attempts: Dict[str, int] = {}
        self.injected_faults = 0
        self.injected_timeouts = 0
        self.injected_spikes = 0

    def spec_for(self, arc_name: str) -> FaultSpec:
        return self.per_arc.get(arc_name, self.default)

    def _rng_for(self, arc_name: str) -> random.Random:
        rng = self._rngs.get(arc_name)
        if rng is None:
            rng = random.Random(f"{self.seed}:{arc_name}")
            self._rngs[arc_name] = rng
        return rng

    def draw(self, arc_name: str) -> Injection:
        """One attempt's injection for ``arc_name`` (advances the stream)."""
        spec = self.spec_for(arc_name)
        attempt = self._attempts.get(arc_name, 0)
        self._attempts[arc_name] = attempt + 1
        if attempt < spec.fail_first:
            self.injected_faults += 1
            return Injection(faulted=True)
        if (
            spec.fault_rate == 0.0
            and spec.timeout_rate == 0.0
            and spec.latency_rate == 0.0
        ):
            return _CLEAN
        roll = self._rng_for(arc_name).random()
        if roll < spec.fault_rate:
            self.injected_faults += 1
            return Injection(faulted=True)
        if roll < spec.fault_rate + spec.timeout_rate:
            self.injected_timeouts += 1
            return Injection(
                faulted=True,
                timeout=True,
                cost_multiplier=TIMEOUT_COST_MULTIPLIER,
            )
        if roll < spec.fault_rate + spec.timeout_rate + spec.latency_rate:
            self.injected_spikes += 1
            return Injection(cost_multiplier=spec.latency_factor)
        return _CLEAN

    def reset(self) -> None:
        """Rewind every stream to the seed (for reproducing a run)."""
        self._rngs.clear()
        self._attempts.clear()
        self.injected_faults = 0
        self.injected_timeouts = 0
        self.injected_spikes = 0

    def summary(self) -> Dict[str, int]:
        """Injection counts so far (for reports and assertions)."""
        return {
            "faults": self.injected_faults,
            "timeouts": self.injected_timeouts,
            "latency_spikes": self.injected_spikes,
        }


class FlakyContext(Context):
    """A context whose arc attempts may transiently fault.

    Wraps an inner :class:`Context`; the blocked/unblocked *truth* is
    the inner context's, but each attempt first consults the plan,
    which may raise :class:`RetrievalFaultError` or attach a cost
    spike.  Plain :func:`~repro.strategies.execution.execute` therefore
    crashes on the first injected fault — demonstrating why
    :func:`~repro.strategies.execution.execute_resilient` exists —
    while the resilient executor retries through to the settled
    outcome.
    """

    __slots__ = ("_inner", "plan")

    def __init__(self, inner: Context, plan: FaultPlan):
        # Deliberately skip Context.__init__ — truth lives in ``inner``.
        self._inner = inner
        self.plan = plan
        self.query = inner.query
        self.database = inner.database

    @property
    def inner(self) -> Context:
        return self._inner

    def attempt(self, arc: Arc) -> Tuple[bool, float]:
        """One attempt: (settled status, cost multiplier) or a raise.

        Only retrieval arcs touch storage, so only they fault;
        reduction arcs are in-memory rule applications and always
        settle cleanly.
        """
        if arc.kind is not ArcKind.RETRIEVAL:
            return self._inner.traversable(arc), 1.0
        injection = self.plan.draw(arc.name)
        injection.raise_if_faulted(arc.name)
        return self._inner.traversable(arc), injection.cost_multiplier

    def traversable(self, arc: Arc) -> bool:
        return self.attempt(arc)[0]

    def blocked(self, arc: Arc) -> bool:
        return not self.traversable(arc)

    def statuses(self) -> Dict[str, bool]:
        return self._inner.statuses()

    def unblocked_set(self) -> frozenset:
        return self._inner.unblocked_set()

    def __eq__(self, other) -> bool:
        if isinstance(other, FlakyContext):
            return self._inner == other._inner
        return self._inner == other

    def __hash__(self) -> int:
        return hash(self._inner)

    def __repr__(self) -> str:
        return f"Flaky({self._inner!r})"


class FlakyDatabase(Database):
    """A database whose retrievals transiently fault, keyed by predicate.

    Wraps an inner :class:`Database` for use behind
    :class:`~repro.graphs.contexts.LazyDatalogContext`: the
    self-optimizing processor's own retrievals then fault at the
    storage layer, exactly where a deployed system would see them.
    Only the probing entry points (:meth:`succeeds`,
    :meth:`retrieve`) inject; mutation and iteration pass through.
    """

    def __init__(self, inner: Database, plan: FaultPlan):
        self._inner = inner
        self.plan = plan
        #: Cost multipliers billed by non-faulting probes (latency
        #: spikes charge their factor, clean probes charge 1.0); the
        #: executor bills *faulted* probes itself from the raised
        #: error's multiplier, so the two channels never double-count.
        self.billed_probe_cost = 0.0
        #: Optional injection log for parity assertions: when set to a
        #: list, every probe appends ``(predicate, faulted, timeout,
        #: cost_multiplier)``.  ``None`` (default) keeps the hot path
        #: allocation-free.
        self.probe_log: Optional[list] = None

    @property
    def inner(self) -> Database:
        return self._inner

    @property
    def generation(self) -> int:
        return self._inner.generation

    @property
    def cache_key(self):
        # Cache coherence tracks the settled store, not the fault
        # process: a memo hit is simply a probe that cannot fault.
        return self._inner.cache_key

    # -- probing (faultable) -------------------------------------------

    def _inject(self, pattern) -> None:
        """One injection draw, billed identically for every probing
        entry point — ``retrieve``, ``facts_matching`` and ``succeeds``
        draw eagerly from the same predicate-keyed stream, so the same
        pattern sequence produces the same injections and the same
        billed cost regardless of which entry point ran it."""
        predicate = pattern.predicate
        injection = self.plan.draw(predicate)
        if self.probe_log is not None:
            self.probe_log.append(
                (
                    predicate,
                    injection.faulted,
                    injection.timeout,
                    injection.cost_multiplier,
                )
            )
        if injection.faulted:
            injection.raise_if_faulted(predicate)
        else:
            # Latency spikes on successful probes are billed here; the
            # executor cannot see them (no exception carries the
            # multiplier), and before this channel existed they were
            # counted in ``plan.injected_spikes`` but billed nowhere.
            self.billed_probe_cost += injection.cost_multiplier

    def succeeds(self, pattern) -> bool:
        self._inject(pattern)
        return self._inner.succeeds(pattern)

    def retrieve(self, pattern) -> Iterator:
        self._inject(pattern)
        return self._inner.retrieve(pattern)

    def facts_matching(self, pattern) -> Iterator:
        self._inject(pattern)
        return self._inner.facts_matching(pattern)

    # -- passthrough ----------------------------------------------------

    def copy(self) -> "FlakyDatabase":
        return FlakyDatabase(self._inner.copy(), self.plan)

    def add(self, fact) -> bool:
        return self._inner.add(fact)

    def remove(self, fact) -> bool:
        return self._inner.remove(fact)

    def update(self, facts) -> int:
        return self._inner.update(facts)

    def __contains__(self, fact) -> bool:
        return fact in self._inner

    def __len__(self) -> int:
        return len(self._inner)

    def __iter__(self) -> Iterator:
        return iter(self._inner)

    def relation(self, predicate, arity):
        return self._inner.relation(predicate, arity)

    def count(self, predicate, arity=None) -> int:
        return self._inner.count(predicate, arity)

    def signatures(self):
        return self._inner.signatures()

    def __repr__(self) -> str:
        return f"Flaky({self._inner!r})"

"""Per-query cost deadlines.

The satisficing search of Section 2.1 already stops at the first
success; a deadline adds the complementary bound for the *unlucky*
contexts: once a query has been charged ``budget`` cost units —
including retries, backoff, and latency spikes — the search stops and
the processor degrades gracefully instead of grinding through the rest
of the strategy.  Like backoff, the deadline is denominated in cost
units so the whole resilience layer shares one deterministic clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import QueryDeadlineExceeded, ResilienceError

__all__ = ["CostDeadline"]


@dataclass(frozen=True)
class CostDeadline:
    """A hard per-query charge ceiling."""

    budget: float

    def __post_init__(self):
        if self.budget <= 0:
            raise ResilienceError("deadline budget must be positive")

    def exceeded(self, spent: float) -> bool:
        return spent >= self.budget

    def would_exceed(self, spent: float, next_charge: float) -> bool:
        """Whether charging ``next_charge`` more would cross the budget.

        The executor checks *before* attempting, mirroring an admission
        check against the remaining time budget — an attempt whose
        worst case cannot fit is not started.
        """
        return spent + next_charge > self.budget

    def check(self, spent: float) -> None:
        """Raise :class:`QueryDeadlineExceeded` if already over."""
        if self.exceeded(spent):
            raise QueryDeadlineExceeded(spent, self.budget)

    def remaining(self, spent: float) -> float:
        return max(0.0, self.budget - spent)

"""Per-arc circuit breakers: closed → open → half-open → closed.

A segment that faults once is flaky; a segment that faults on every
attempt is *down*.  Retrying a down segment on every query burns the
cost budget for nothing, so each arc gets a breaker:

* **closed** — attempts flow through; ``failure_threshold``
  consecutive settled *faults* (not blocked arcs — a blocked arc is a
  successful attempt that learned the answer "no facts here") trip it;
* **open** — attempts are shed without touching the arc; after
  ``cooldown`` shed attempts the breaker moves to half-open;
* **half-open** — exactly one probe attempt is let through at a time;
  while that probe is in flight every further :meth:`allow` is refused.
  A settled probe closes the breaker (and clears the cooldown
  counter), a faulted probe re-opens it (and restarts the cooldown).
  A probe abandoned un-settled (deadline expiry mid-attempt) must be
  released via :meth:`release_probe` so the breaker can probe again.

Time is measured in *attempt events*, not wall clock: the executor is
a simulation whose only clock is the sequence of attempts, and
counting shed attempts keeps the breaker fully deterministic.

Breakers report their state transitions to an attached
:class:`~repro.observability.recorder.Recorder` (the null recorder by
default), which is how ``breaker`` events reach traces.
"""

from __future__ import annotations

import enum
from typing import Dict

from ..errors import ResilienceError
from ..observability.recorder import NULL_RECORDER, Recorder

__all__ = ["CircuitState", "CircuitBreaker", "CircuitBreakerBoard"]


class CircuitState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """The three-state breaker guarding one arc."""

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: int = 10,
        name: str = "",
        recorder: Recorder = NULL_RECORDER,
    ):
        if failure_threshold < 1:
            raise ResilienceError("failure_threshold must be at least 1")
        if cooldown < 1:
            raise ResilienceError("cooldown must be at least 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.name = name
        self.recorder = recorder
        self.state = CircuitState.CLOSED
        self.consecutive_faults = 0
        self.shed_attempts = 0
        self.times_opened = 0
        self._probe_in_flight = False

    def _transition(self, new_state: CircuitState) -> None:
        old_state, self.state = self.state, new_state
        if self.recorder.enabled and old_state is not new_state:
            self.recorder.breaker_transition(
                self.name, old_state.value, new_state.value
            )

    def allow(self) -> bool:
        """May the executor attempt the arc right now?

        While open, every refusal counts toward the cooldown; once the
        cooldown elapses the breaker half-opens and the *next* call is
        the probe.  While half-open, only one probe may be in flight:
        the first call takes it, every further call is refused until
        the probe settles (:meth:`record_success` /
        :meth:`record_fault`) or is released (:meth:`release_probe`).
        """
        if self.state is CircuitState.CLOSED:
            return True
        if self.state is CircuitState.HALF_OPEN:
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            return True
        self.shed_attempts += 1
        if self.shed_attempts >= self.cooldown:
            self._transition(CircuitState.HALF_OPEN)
        return False

    def record_success(self) -> None:
        """A settled attempt (traversable *or* blocked — both are news)."""
        self.consecutive_faults = 0
        if self.state is CircuitState.HALF_OPEN:
            self._probe_in_flight = False
            self.shed_attempts = 0  # the cooldown it counted is over
            self._transition(CircuitState.CLOSED)

    def record_fault(self) -> None:
        """A transient fault that survived the retry budget, or a
        half-open probe that faulted."""
        self.consecutive_faults += 1
        if self.state is CircuitState.HALF_OPEN or (
            self.state is CircuitState.CLOSED
            and self.consecutive_faults >= self.failure_threshold
        ):
            self._probe_in_flight = False
            self._transition(CircuitState.OPEN)
            self.shed_attempts = 0
            self.times_opened += 1

    def release_probe(self) -> None:
        """Abandon an in-flight half-open probe without settling it.

        The executor calls this when a deadline expires mid-probe: the
        arc's status stays unknown, the breaker stays half-open, and
        the *next* :meth:`allow` may probe again — without this the
        single-probe gate would refuse forever.
        """
        self._probe_in_flight = False

    @property
    def probing(self) -> bool:
        """Whether a half-open probe is currently in flight."""
        return self._probe_in_flight

    def snapshot(self) -> Dict[str, object]:
        return {
            "state": self.state.value,
            "consecutive_faults": self.consecutive_faults,
            "shed_attempts": self.shed_attempts,
            "times_opened": self.times_opened,
        }


class CircuitBreakerBoard:
    """The breakers for a whole graph, created lazily per arc name.

    Breakers persist *across* queries (that is the point: a down
    segment stays shed between queries), so the board lives on the
    :class:`~repro.resilience.policy.ResiliencePolicy`, not on any one
    execution.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: int = 10,
        recorder: Recorder = NULL_RECORDER,
    ):
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.recorder = recorder
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, arc_name: str) -> CircuitBreaker:
        breaker = self._breakers.get(arc_name)
        if breaker is None:
            breaker = CircuitBreaker(
                self.failure_threshold,
                self.cooldown,
                name=arc_name,
                recorder=self.recorder,
            )
            self._breakers[arc_name] = breaker
        return breaker

    def bind_recorder(self, recorder: Recorder) -> None:
        """Attach a recorder to the board and every existing breaker."""
        self.recorder = recorder
        for breaker in self._breakers.values():
            breaker.recorder = recorder

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Non-closed breakers first; closed-and-clean ones elided."""
        report: Dict[str, Dict[str, object]] = {}
        for name in sorted(self._breakers):
            breaker = self._breakers[name]
            if (
                breaker.state is not CircuitState.CLOSED
                or breaker.times_opened
                or breaker.consecutive_faults
            ):
                report[name] = breaker.snapshot()
        return report

    def reset(self) -> None:
        self._breakers.clear()

"""The combined :class:`ResiliencePolicy` the executor runs under.

One policy object bundles the three mechanisms —
:class:`~repro.resilience.retry.RetryPolicy` (exponential backoff,
full jitter), a persistent
:class:`~repro.resilience.circuit.CircuitBreakerBoard`, and an
optional per-query :class:`~repro.resilience.deadline.CostDeadline` —
plus the seeded RNG that makes every jittered backoff reproducible.

The policy is the *stateful* half of the resilience layer: breakers
and incident counters persist across queries, which is why the
self-optimizing processor holds one policy for its lifetime and passes
it to every :func:`~repro.strategies.execution.execute_resilient`
call.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..observability.recorder import NULL_RECORDER, Recorder
from .circuit import CircuitBreaker, CircuitBreakerBoard
from .deadline import CostDeadline
from .retry import RetryPolicy

__all__ = ["ResiliencePolicy"]


class ResiliencePolicy:
    """Everything :func:`execute_resilient` needs, in one object.

    Parameters
    ----------
    retry:
        The per-arc retry schedule (default: 3 attempts, exponential
        backoff with full jitter).
    deadline:
        Per-query cost budget; ``None`` (default) means unbounded.
        A bare number is accepted and wrapped in a
        :class:`CostDeadline`.
    failure_threshold / cooldown:
        Circuit-breaker tuning, applied per arc.
    seed:
        Seeds the jitter RNG — two runs under equal-seeded policies
        charge identical backoff.
    rng:
        An explicit ``random.Random`` for the jitter stream, taking
        precedence over ``seed``.  Callers that thread one seeded
        generator through a whole experiment (the verify subsystem,
        the benchmarks) pass it here instead of coordinating seeds.
    recorder:
        Observability hook handed to every breaker the board creates,
        so state transitions show up in traces; the null recorder by
        default.  :meth:`bind_recorder` attaches one after the fact.
    """

    def __init__(
        self,
        retry: Optional[RetryPolicy] = None,
        deadline: Optional[object] = None,
        failure_threshold: int = 5,
        cooldown: int = 10,
        seed: int = 0,
        recorder: Recorder = NULL_RECORDER,
        rng: Optional[random.Random] = None,
    ):
        self.retry = retry or RetryPolicy()
        if deadline is not None and not isinstance(deadline, CostDeadline):
            deadline = CostDeadline(float(deadline))
        self.deadline = deadline
        self.recorder = recorder
        self.breakers = CircuitBreakerBoard(
            failure_threshold, cooldown, recorder=recorder
        )
        self.seed = int(seed)
        self.rng = rng if rng is not None else random.Random(seed)
        #: Lifetime counters, aggregated over every execution run under
        #: this policy.
        self.total_retries = 0
        self.total_faults = 0
        self.deadline_expiries = 0
        self.unsettled_arcs = 0

    def breaker_for(self, arc_name: str) -> CircuitBreaker:
        return self.breakers.breaker(arc_name)

    def bind_recorder(self, recorder: Recorder) -> None:
        """Attach a recorder to the policy and its breaker board.

        The self-optimizing processor calls this so a policy built
        before the tracer existed still reports breaker transitions.
        """
        self.recorder = recorder
        self.breakers.bind_recorder(recorder)

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready health summary for ``report()`` surfaces."""
        return {
            "retries": self.total_retries,
            "faults": self.total_faults,
            "deadline_expiries": self.deadline_expiries,
            "unsettled_arcs": self.unsettled_arcs,
            "breakers": self.breakers.snapshot(),
        }

"""Resilient execution: fault injection, retries, breakers, deadlines.

The paper's architecture (Figure 4) is a long-running, self-optimizing
query processor; its Section 5.2 application scans *distributed*
segmented databases.  Both outlive transient infrastructure failures,
so this package supplies the machinery to (a) simulate those failures
deterministically and (b) execute strategies through them without
corrupting what PIB learns:

* :mod:`~repro.resilience.faults` — seeded fault injection
  (:class:`FaultPlan`, :class:`FlakyContext`, :class:`FlakyDatabase`);
* :mod:`~repro.resilience.retry` — exponential backoff with full
  jitter, charged in cost units;
* :mod:`~repro.resilience.circuit` — per-arc closed/open/half-open
  circuit breakers;
* :mod:`~repro.resilience.deadline` — per-query cost deadlines;
* :mod:`~repro.resilience.policy` — the :class:`ResiliencePolicy`
  bundle that :func:`~repro.strategies.execution.execute_resilient`
  runs under.

The learning-theoretic contract (see DESIGN.md, "Resilience & fault
model"): every retry and backoff is charged into the caller-facing
``c(Θ, I)``, while PIB is shown only the *settled* outcome of each
arc — so the Δ̃ under-estimates of Theorem 1 see the stationary
blocked/unblocked distribution, never the fault noise.
"""

from .circuit import CircuitBreaker, CircuitBreakerBoard, CircuitState
from .deadline import CostDeadline
from .faults import (
    FaultPlan,
    FaultSpec,
    FlakyContext,
    FlakyDatabase,
    Injection,
)
from .policy import ResiliencePolicy
from .retry import RetryPolicy

__all__ = [
    "CircuitBreaker",
    "CircuitBreakerBoard",
    "CircuitState",
    "CostDeadline",
    "FaultPlan",
    "FaultSpec",
    "FlakyContext",
    "FlakyDatabase",
    "Injection",
    "ResiliencePolicy",
    "RetryPolicy",
]

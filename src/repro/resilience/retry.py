"""Retry with exponential backoff and full jitter.

Backoff here is charged in *cost units*, the same currency as arc
traversal charges — the paper's ``c(Θ, I)`` measures the work a query
consumed, and waiting out a flaky segment is work the query consumed.
Charging backoff into the same account is what keeps Theorem 1's cost
bookkeeping sound under retries (no hidden wall-clock the learner
never sees billed).

The jitter scheme is AWS-style *full jitter*: each wait is drawn
uniformly from ``[0, min(cap, base · mult^(attempt−1))]``.  Full
jitter decorrelates retry storms across concurrent queries while
keeping the expected wait at half the deterministic schedule.  The RNG
is supplied by the caller (the :class:`ResiliencePolicy` seeds one),
so every backoff sequence is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import ResilienceError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to re-attempt a faulted arc, and at what charge.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    attempt plus at most two retries.  ``base_backoff`` of 0 disables
    backoff charges while keeping the retry count (useful when faults
    model instantaneous connection refusals).
    """

    max_attempts: int = 3
    base_backoff: float = 0.5
    multiplier: float = 2.0
    max_backoff: float = 8.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ResilienceError("max_attempts must be at least 1")
        if self.base_backoff < 0:
            raise ResilienceError("base_backoff cannot be negative")
        if self.multiplier < 1.0:
            raise ResilienceError("multiplier must be at least 1")
        if self.max_backoff < self.base_backoff:
            raise ResilienceError("max_backoff must be >= base_backoff")

    def backoff_cap(self, attempt: int) -> float:
        """The deterministic ceiling before jitter, for ``attempt`` ≥ 1."""
        if attempt < 1:
            raise ResilienceError("attempt numbering starts at 1")
        return min(
            self.max_backoff,
            self.base_backoff * self.multiplier ** (attempt - 1),
        )

    def backoff_cost(self, attempt: int, rng: random.Random) -> float:
        """The charged wait after failed ``attempt`` (full jitter)."""
        cap = self.backoff_cap(attempt)
        if cap <= 0.0:
            return 0.0
        return rng.uniform(0.0, cap)

    def exhausted(self, attempt: int) -> bool:
        """Whether a fault on ``attempt`` leaves no retries."""
        return attempt >= self.max_attempts

"""repro — a full reproduction of Greiner, *Learning Efficient Query
Processing Strategies* (PODS 1992).

The package is layered bottom-up:

* :mod:`repro.datalog` — the knowledge-base substrate: facts, rules,
  unification, a top-down satisficing SLD engine, and a bottom-up
  semi-naive oracle;
* :mod:`repro.graphs` — inference graphs (Section 2.1), contexts and
  their arc-blocking equivalence classes, graph compilation from rule
  bases, and the and-or hypergraph extension (Note 4);
* :mod:`repro.strategies` — strategies, satisficing execution and the
  cost ``c(Θ, I)``, expected cost ``C[Θ]``, transformations, and the
  adaptive query processor ``QP^A``;
* :mod:`repro.optimal` — the ``Υ`` optimizers: exact ratio-merge
  ``Υ_AOT`` for trees, brute force, a polynomial approximation, and
  the [Smi89] fact-count heuristic baseline;
* :mod:`repro.learning` — the paper's contribution: PIB₁, the anytime
  PIB (Theorem 1), PALO, and PAO (Theorems 2–3), with the Chernoff
  machinery and Lemma 1's sensitivity analysis;
* :mod:`repro.workloads` — context distributions and the paper's
  concrete scenarios (Figure 1's university KB, Figure 2's ``G_B``,
  segmented-scan and negation-as-failure applications);
* :mod:`repro.serving` — the deployment surface: query sessions,
  form-sharded parallel batch serving, and the two-tier result cache;
* :mod:`repro.experience` — the cross-session experience store:
  structural form fingerprints, settled-outcome records, and the
  priors-only warm-start that seeds a new learner's Θ₀ from its
  nearest structural neighbours;
* :mod:`repro.bench` — the experiment harness behind ``benchmarks/``.

Quickstart (serving)::

    import repro

    with repro.open_session("kb.dl", "facts.dl") as session:
        answer = session.query("instructor(manolis)?")
        report = session.learn_from_stream("stream.txt")

Quickstart (learning internals)::

    from repro.workloads import g_a, theta_1, intended_probabilities
    from repro.workloads import IndependentDistribution
    from repro.learning import PIB
    import random

    graph = g_a()
    dist = IndependentDistribution(graph, intended_probabilities())
    learner = PIB(graph, delta=0.05, initial_strategy=theta_1(graph))
    learner.run(dist.sampler(random.Random(0)), contexts=500)
    print(learner.strategy)          # climbs to Θ₂ = ⟨Rg Dg Rp Dp⟩
"""

from . import (
    datalog,
    graphs,
    observability,
    strategies,
    optimal,
    learning,
    resilience,
    workloads,
)
from .observability import (
    MetricsRegistry,
    NULL_RECORDER,
    Recorder,
    Tracer,
)
from .system import SelfOptimizingQueryProcessor, SystemAnswer
from . import experience
from .experience import (
    ExperienceRecord,
    ExperienceStore,
    FormProfile,
    WarmStart,
    form_fingerprint,
    form_profile,
    warm_start,
)
from . import serving
from .serving import (
    AdmissionConfig,
    CacheConfig,
    ExperienceConfig,
    QueryServer,
    QuerySession,
    Request,
    RequestOutcome,
    ServerHealth,
    ServingConfig,
    SessionConfig,
    StreamReport,
    open_session,
)
from .strategies import ExecutionOutcome
from . import storage
from .storage import (
    COMPLETE,
    Completeness,
    FactStore,
    FederatedStore,
    ShardSpec,
    SQLiteFactStore,
)
from .persistence import load_pib, pib_from_dict, pib_to_dict, save_pib
from .resilience import (
    FaultPlan,
    FaultSpec,
    FlakyContext,
    FlakyDatabase,
    ResiliencePolicy,
    RetryPolicy,
)
from .errors import (
    CheckpointError,
    CircuitOpenError,
    DatalogError,
    DistributionError,
    EvaluationError,
    GraphError,
    IllegalStrategyError,
    LearningError,
    ParseError,
    QueryDeadlineExceeded,
    RecursionLimitError,
    ReproError,
    ResilienceError,
    RetrievalFaultError,
    SampleBudgetExceeded,
    StrategyError,
    StratificationError,
    UnificationError,
)

#: Source of truth for the released version is ``pyproject.toml``;
#: installed builds read it back through package metadata so the two
#: can never drift.  The literal below is only the fallback for
#: source-tree runs (``PYTHONPATH=src``) where no distribution
#: metadata exists — ``tests/test_version.py`` asserts it matches
#: ``pyproject.toml``.
_FALLBACK_VERSION = "1.0.0"


def _resolve_version() -> str:
    try:
        from importlib import metadata
    except ImportError:  # pragma: no cover - Python < 3.8 only
        return _FALLBACK_VERSION
    try:
        return metadata.version("repro")
    except metadata.PackageNotFoundError:
        return _FALLBACK_VERSION


__version__ = _resolve_version()

__all__ = [
    "SelfOptimizingQueryProcessor",
    "SystemAnswer",
    "AdmissionConfig",
    "CacheConfig",
    "ExecutionOutcome",
    "ExperienceConfig",
    "ExperienceRecord",
    "ExperienceStore",
    "FormProfile",
    "WarmStart",
    "experience",
    "form_fingerprint",
    "form_profile",
    "warm_start",
    "QueryServer",
    "QuerySession",
    "Request",
    "RequestOutcome",
    "ServerHealth",
    "ServingConfig",
    "SessionConfig",
    "StreamReport",
    "open_session",
    "serving",
    "MetricsRegistry",
    "NULL_RECORDER",
    "Recorder",
    "Tracer",
    "observability",
    "load_pib",
    "pib_from_dict",
    "pib_to_dict",
    "save_pib",
    "datalog",
    "graphs",
    "strategies",
    "optimal",
    "learning",
    "resilience",
    "workloads",
    "storage",
    "COMPLETE",
    "Completeness",
    "FactStore",
    "FederatedStore",
    "ShardSpec",
    "SQLiteFactStore",
    "FaultPlan",
    "FaultSpec",
    "FlakyContext",
    "FlakyDatabase",
    "ResiliencePolicy",
    "RetryPolicy",
    "CheckpointError",
    "CircuitOpenError",
    "DatalogError",
    "DistributionError",
    "EvaluationError",
    "GraphError",
    "IllegalStrategyError",
    "LearningError",
    "ParseError",
    "QueryDeadlineExceeded",
    "RecursionLimitError",
    "ReproError",
    "ResilienceError",
    "RetrievalFaultError",
    "SampleBudgetExceeded",
    "StrategyError",
    "StratificationError",
    "UnificationError",
    "__version__",
]

"""Ablation experiments: what each design ingredient buys.

Three ablations, each removing one ingredient the paper's guarantees
depend on and measuring what breaks:

* **AB1 — the sequential-test schedule** (Section 3.2's
  ``δ_i = δ·6/(π²i²)``).  Re-testing at a *fixed* δ after every sample
  is exactly the mistake the paper warns about ("we cannot simply use
  Equation 3 … the chance of a false positive is only below δ + δ");
  on a null instance (both strategies truly equal) the repeated
  fixed-δ test fires far more often than δ, while Equation 6's
  schedule stays within budget.
* **AB2 — the adaptive query processor** (Section 4.1).  A monitor
  stuck with one fixed strategy can starve: if the first retrieval
  always succeeds, the second is never attempted and PAO's quota is
  unattainable; ``QP^A`` fulfils it in bounded time.
* **AB3 — the pessimistic ``Δ̃``** (Section 3).  PIB's unobtrusive
  under-estimates cost statistical power relative to a monitor that
  sees full contexts (the PALO setting): the full-information learner
  climbs sooner and ends closer to the optimum.  That gap is the price
  of never issuing a speculative retrieval.
"""

from __future__ import annotations

import random

from ..graphs.random_graphs import random_instance
from ..learning.chernoff import pib_sequential_threshold, pib_sum_threshold
from ..learning.palo import PALO
from ..learning.pib import PIB
from ..optimal.brute_force import optimal_strategy_brute_force
from ..strategies.adaptive import AdaptiveQueryProcessor
from ..strategies.execution import execute
from ..strategies.expected_cost import expected_cost_exact
from ..strategies.strategy import Strategy
from ..workloads.distributions import IndependentDistribution
from ..workloads.university import g_a, theta_1, theta_2
from .harness import ExperimentResult
from .reporting import format_table

__all__ = [
    "experiment_ablation_sequential",
    "experiment_ablation_adaptive",
    "experiment_ablation_delta",
]


def experiment_ablation_sequential(
    seed: int = 20,
    runs: int = 400,
    samples_per_run: int = 2000,
    delta: float = 0.4,
) -> ExperimentResult:
    """AB1: fixed-δ re-testing vs Equation 6's sequential schedule.

    Null instance: ``G_A`` with ``p_p = p_g = 0.5`` and *exact* per-
    context differences, so any acceptance is a false positive.  Three
    disciplines are compared per run:

    * one Equation 2 test at the final sample (sound for one test);
    * the same fixed-δ threshold re-tested after every sample — the
      paper's warned-against mistake ("we only know that the chance of
      a false positive is … δ + δ", §3.2);
    * Equation 6's sequential schedule, tested after every sample.

    Re-testing multiplies the one-shot firing rate several-fold; the
    schedule stays within the total budget δ.  (A large δ is used so
    the inflation is measurable against Hoeffding's slack.)
    """
    result = ExperimentResult(
        "AB1: sequential-test schedule ablation (δ_i = δ·6/(π²i²))"
    )
    graph = g_a()
    probs = {"Dp": 0.5, "Dg": 0.5}
    distribution = IndependentDistribution(graph, probs)
    strategy = theta_1(graph)
    candidate = theta_2(graph)
    value_range = 4.0  # f*(Rp) + f*(Rg)
    rng = random.Random(seed)

    single_fires = 0
    fixed_fires = 0
    scheduled_fires = 0
    for _ in range(runs):
        total = 0.0
        fired_fixed = False
        fired_scheduled = False
        for sample_index in range(1, samples_per_run + 1):
            context = distribution.sample(rng)
            total += (
                execute(strategy, context).cost
                - execute(candidate, context).cost
            )
            if not fired_fixed and total >= pib_sum_threshold(
                sample_index, delta, value_range
            ):
                fired_fixed = True
            if not fired_scheduled and total >= pib_sequential_threshold(
                sample_index, sample_index, delta, value_range
            ):
                fired_scheduled = True
        single_fires += total >= pib_sum_threshold(
            samples_per_run, delta, value_range
        )
        fixed_fires += fired_fixed
        scheduled_fires += fired_scheduled

    single_rate = single_fires / runs
    fixed_rate = fixed_fires / runs
    scheduled_rate = scheduled_fires / runs
    result.tables.append(format_table(
        f"False-positive rate over {runs} null runs "
        f"({samples_per_run} samples each, δ = {delta})",
        ["test discipline", "false-positive rate"],
        [
            ["Equation 2, tested once at the end (sound)", single_rate],
            ["fixed δ, re-tested every sample (unsound)", fixed_rate],
            ["Equation 6 sequential schedule", scheduled_rate],
            ["budget δ", delta],
        ],
    ))
    result.data.update({
        "single_rate": single_rate,
        "fixed_rate": fixed_rate,
        "scheduled_rate": scheduled_rate,
    })
    result.check("the sequential schedule respects the total budget",
                 scheduled_rate <= delta)
    result.check("re-testing inflates the one-shot false-positive rate "
                 "several-fold",
                 fixed_fires >= 3 * max(single_fires, 1))
    result.check("the schedule fires less often than naive re-testing",
                 scheduled_rate <= fixed_rate)
    return result


def experiment_ablation_adaptive(
    seed: int = 21,
    quota: int = 50,
    context_budget: int = 2000,
) -> ExperimentResult:
    """AB2: fixed-strategy monitoring vs the adaptive ``QP^A``.

    ``D_p`` succeeds in every context, so a monitor watching the fixed
    ``Θ₁`` never once attempts ``D_g`` (Section 4.1's opening
    observation); ``QP^A`` collects the full quota in ``quota``-many
    contexts.
    """
    result = ExperimentResult(
        "AB2: adaptive sampling ablation (QP^A vs a fixed strategy)"
    )
    graph = g_a()
    distribution = IndependentDistribution(graph, {"Dp": 1.0, "Dg": 0.4})
    rng = random.Random(seed)

    # Fixed-strategy monitor.
    fixed_strategy = theta_1(graph)
    fixed_samples = {"Dp": 0, "Dg": 0}
    for _ in range(context_budget):
        run = execute(fixed_strategy, distribution.sample(rng))
        for name, status in run.observations.items():
            fixed_samples[name] += 1

    # Adaptive QP^A with the same quota per retrieval.
    adaptive = AdaptiveQueryProcessor(
        graph, {"Dp": quota, "Dg": quota}, count="reached"
    )
    while not adaptive.done() and adaptive.contexts_processed < context_budget:
        adaptive.process(distribution.sample(rng))

    result.tables.append(format_table(
        f"Samples of each retrieval (quota {quota} per retrieval)",
        ["monitor", "contexts used", "samples of D_p", "samples of D_g"],
        [
            [f"fixed Θ₁ (budget {context_budget})", context_budget,
             fixed_samples["Dp"], fixed_samples["Dg"]],
            ["adaptive QP^A", adaptive.contexts_processed,
             adaptive.reached["Dp"], adaptive.reached["Dg"]],
        ],
    ))
    result.data.update({
        "fixed_dg_samples": fixed_samples["Dg"],
        "adaptive_dg_samples": adaptive.reached["Dg"],
        "adaptive_contexts": adaptive.contexts_processed,
    })
    result.check("the fixed monitor never samples D_g",
                 fixed_samples["Dg"] == 0)
    result.check("QP^A fulfils the quota",
                 adaptive.reached["Dg"] >= quota
                 and adaptive.reached["Dp"] >= quota)
    result.check("QP^A stays within 2×quota contexts",
                 adaptive.contexts_processed <= 2 * quota)
    return result


def experiment_ablation_delta(
    seed: int = 22,
    instances: int = 30,
    contexts: int = 1200,
    delta: float = 0.1,
) -> ExperimentResult:
    """AB3: pessimistic ``Δ̃`` (PIB) vs full-information differences
    (PALO's estimator driving the same hill-climb)."""
    result = ExperimentResult(
        "AB3: Δ̃ pessimism ablation (unobtrusive PIB vs full information)"
    )
    rng = random.Random(seed)
    pib_norm_total = 0.0
    full_norm_total = 0.0
    pib_climbs = 0
    full_climbs = 0
    for _ in range(instances):
        graph, probs = random_instance(rng, n_internal=3, n_retrievals=5)
        distribution = IndependentDistribution(graph, probs)
        initial = Strategy.depth_first(graph)
        _, c_opt = optimal_strategy_brute_force(graph, probs)

        pib = PIB(graph, delta=delta, initial_strategy=initial)
        pib.run(distribution.sampler(rng), contexts)

        # Full information: PALO with an effectively-disabled stop test
        # (tiny ε keeps it climbing like PIB).
        full = PALO(graph, epsilon=1e-6, delta=delta,
                    initial_strategy=initial)
        for _ in range(contexts):
            if full.converged:
                break
            full.process(distribution.sample(rng))

        pib_norm_total += expected_cost_exact(pib.strategy, probs) / c_opt
        full_norm_total += expected_cost_exact(full.strategy, probs) / c_opt
        pib_climbs += pib.climbs
        full_climbs += len(full.history)

    pib_norm = pib_norm_total / instances
    full_norm = full_norm_total / instances
    result.tables.append(format_table(
        f"Mean C[Θ]/C[Θ_opt] after {contexts} contexts "
        f"({instances} instances, δ = {delta})",
        ["monitor", "mean normalized cost", "total climbs"],
        [
            ["PIB (pessimistic Δ̃, unobtrusive)", pib_norm, pib_climbs],
            ["full-information differences", full_norm, full_climbs],
        ],
        footer="The gap is the statistical price of never issuing a "
               "speculative retrieval: Δ̃ ≤ Δ means less power, same "
               "safety.",
    ))
    result.data.update({
        "pib_norm": pib_norm, "full_norm": full_norm,
        "pib_climbs": pib_climbs, "full_climbs": full_climbs,
    })
    result.check("full information climbs at least as often",
                 full_climbs >= pib_climbs)
    result.check("full information ends at least as good on average",
                 full_norm <= pib_norm + 1e-9)
    result.check("both improve or match the initial strategy",
                 pib_norm <= 2.5 and full_norm <= 1.3)
    return result

"""The reproduction experiments, one function per DESIGN.md row.

Each function is deterministic given its seed, returns an
:class:`~repro.bench.harness.ExperimentResult`, and is invoked both by
the ``benchmarks/`` suite (which times it and asserts its checks) and
by the integration tests (with smaller parameters).

The paper has no measured tables — it is a PODS theory paper — so the
"shape" being reproduced is: the worked examples' exact numbers, the
direction of every comparison (who wins), and the frequency with which
the probabilistic guarantees of Theorems 1–3 and Lemma 1 hold.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..datalog.database import Database
from ..datalog.parser import parse_atom, parse_program, parse_query
from ..graphs.contexts import Context
from ..graphs.inference_graph import GraphBuilder, InferenceGraph
from ..graphs.random_graphs import random_instance
from ..learning.pao import pao
from ..learning.pib import PIB
from ..learning.pib1 import PIB1
from ..learning.palo import PALO
from ..learning.sensitivity import excess_cost, lemma1_bound
from ..optimal.brute_force import optimal_strategy_brute_force
from ..optimal.smith import smith_estimates, smith_strategy
from ..optimal.upsilon import upsilon_aot
from ..observability import NULL_RECORDER, Tracer, summarize_trace
from ..optimal.approximate import upsilon_greedy
from ..strategies.execution import execute
from ..strategies.expected_cost import expected_cost_exact
from ..strategies.strategy import Strategy
from ..workloads import university
from ..workloads import figure2
from ..persistence import pib_from_dict, pib_to_dict
from ..resilience import ResiliencePolicy, RetryPolicy
from ..resilience.faults import FaultPlan, FaultSpec, FlakyDatabase
from ..strategies.execution import execute_resilient
from ..workloads.distributed import (
    FlakySegmentAccessDistribution,
    FlakySegmentedTable,
    SegmentAccessDistribution,
    SegmentedTable,
    segment_scan_graph,
)
from ..learning.drift import DriftAwarePIB, DriftConfig
from ..serving import (
    AdmissionConfig,
    CacheConfig,
    ServingConfig,
    SessionConfig,
    open_session,
)
from ..serving.admission import coerce_requests
from ..serving.server import QueryServer
from ..system import SelfOptimizingQueryProcessor
from ..workloads.distributions import (
    IndependentDistribution,
    PiecewiseStationaryDistribution,
)
from ..workloads.naf import OWNERSHIP_CATEGORIES, OwnershipDistribution, refutation_graph
from .harness import ExperimentResult
from .reporting import format_table
from .stats import rate_with_interval

__all__ = [
    "experiment_learning_curve",
    "experiment_engine",
    "experiment_figure1",
    "experiment_smith_vs_learned",
    "experiment_figure2_pib",
    "experiment_pib1_filter",
    "experiment_theorem1",
    "experiment_theorem2",
    "experiment_theorem3",
    "experiment_lemma1",
    "experiment_distributed",
    "experiment_distributed_faulty",
    "experiment_drift",
    "experiment_experience_warmstart",
    "experiment_federation",
    "experiment_naf",
    "experiment_overload",
    "experiment_serving",
    "experiment_upsilon_scaling",
    "experiment_comparison",
]


# ----------------------------------------------------------------------
# LC: learning curves — per-query cost over the lifetime of the stream
# ----------------------------------------------------------------------

def experiment_learning_curve(
    seed: int = 12,
    contexts: int = 6000,
    window: int = 500,
    delta: float = 0.05,
) -> ExperimentResult:
    """Mean observed query cost per window, for PIB on ``G_A`` and
    ``G_B`` — the learning-curve 'figure' a systems evaluation of the
    paper would plot.  The curve must fall and approach the optimal
    strategy's expected cost."""
    result = ExperimentResult(
        "LC: learning curves (mean observed c(Θ, I) per window)"
    )
    scenarios = [
        (
            "G_A",
            university.g_a(),
            university.theta_1(university.g_a()),
            university.intended_probabilities(),
        ),
        (
            "G_B",
            figure2.g_b(),
            figure2.theta_abcd(figure2.g_b()),
            figure2.figure2_probabilities(),
        ),
    ]
    for label, graph, _initial_on_wrong_graph, probs in scenarios:
        # Rebuild the initial strategy against *this* graph instance.
        initial = Strategy(graph, _initial_on_wrong_graph.arc_names())
        distribution = IndependentDistribution(graph, probs)
        rng = random.Random(seed)
        pib = PIB(graph, delta=delta, initial_strategy=initial)
        window_costs: List[float] = []
        accumulator = 0.0
        for index in range(1, contexts + 1):
            accumulator += pib.process(distribution.sample(rng)).cost
            if index % window == 0:
                window_costs.append(accumulator / window)
                accumulator = 0.0
        _, c_opt = optimal_strategy_brute_force(graph, probs)
        c_init = expected_cost_exact(initial, probs)
        rows = [
            [(i + 1) * window, cost] for i, cost in enumerate(window_costs)
        ]
        result.tables.append(format_table(
            f"{label}: mean observed cost per {window}-query window "
            f"(C[Θ₀] = {c_init:.3f}, C[Θ_opt] = {c_opt:.3f})",
            ["queries seen", "mean cost"],
            rows,
        ))
        result.data[label] = {
            "windows": window_costs,
            "c_init": c_init,
            "c_opt": c_opt,
            "climbs": pib.climbs,
        }
        result.check(
            f"{label}: the curve falls (last window < first window)",
            window_costs[-1] < window_costs[0],
        )
        result.check(
            f"{label}: the tail approaches the optimum (≤ C_opt + 20%)",
            window_costs[-1] <= 1.2 * c_opt,
        )
    return result


# ----------------------------------------------------------------------
# F1: Figure 1 worked example
# ----------------------------------------------------------------------

def experiment_figure1() -> ExperimentResult:
    """Reproduce every number of Section 2's ``G_A`` worked example."""
    result = ExperimentResult("F1: Figure 1 / Section 2 worked example (G_A)")
    graph = university.g_a()
    theta_1 = university.theta_1(graph)
    theta_2 = university.theta_2(graph)
    probs = university.intended_probabilities()

    c1 = expected_cost_exact(theta_1, probs)
    c2 = expected_cost_exact(theta_2, probs)
    i1 = Context(graph, {"Dp": False, "Dg": True})   # instructor(manolis)
    i2 = Context(graph, {"Dp": True, "Dg": False})   # instructor(russ)
    costs = {
        ("Θ1", "I1"): execute(theta_1, i1).cost,
        ("Θ2", "I1"): execute(theta_2, i1).cost,
        ("Θ1", "I2"): execute(theta_1, i2).cost,
        ("Θ2", "I2"): execute(theta_2, i2).cost,
    }

    result.tables.append(format_table(
        "Expected costs on G_A (paper Section 2)",
        ["strategy", "paper C[Θ]", "measured C[Θ]"],
        [["Θ1 = ⟨Rp Dp Rg Dg⟩", 3.7, c1], ["Θ2 = ⟨Rg Dg Rp Dp⟩", 2.8, c2]],
        footer="Υ_AOT picks: " + " ".join(upsilon_aot(graph, probs).arc_names()),
    ))
    result.tables.append(format_table(
        "Per-context costs c(Θ, I) (paper Section 2.1)",
        ["context", "c(Θ1, I)", "paper", "c(Θ2, I)", "paper"],
        [
            ["I1 = ⟨instructor(manolis), DB1⟩", costs[("Θ1", "I1")], 4,
             costs[("Θ2", "I1")], 2],
            ["I2 = ⟨instructor(russ), DB1⟩", costs[("Θ1", "I2")], 2,
             costs[("Θ2", "I2")], 4],
        ],
    ))

    result.data.update({"C1": c1, "C2": c2, "context_costs": costs})
    result.check("C[Θ1] = 3.7 (paper's printed value)", abs(c1 - 3.7) < 1e-9)
    result.check("C[Θ2] = 2.8 (paper's printed value)", abs(c2 - 2.8) < 1e-9)
    result.check("Θ2 preferred (C[Θ2] < C[Θ1])", c2 < c1)
    result.check("c(Θ1,I1)=4, c(Θ2,I1)=2, c(Θ1,I2)=2, c(Θ2,I2)=4",
                 [costs[k] for k in costs] == [4.0, 2.0, 2.0, 4.0])
    result.check(
        "Section 4: Υ_AOT(G_A, ⟨18/30, 10/20⟩) = Θ1",
        upsilon_aot(graph, university.section4_estimates()).arc_names()
        == theta_1.arc_names(),
    )
    result.check(
        "F¬[D_g] = f(R_p)+f(D_p) = 2 and f*(R_p) = 2 (Note 5)",
        graph.f_not(graph.arc("Dg")) == 2.0
        and graph.f_star(graph.arc("Rp")) == 2.0,
    )
    return result


# ----------------------------------------------------------------------
# F1b: the [Smi89] heuristic vs the true query distribution
# ----------------------------------------------------------------------

def experiment_smith_vs_learned(
    seed: int = 0, contexts: int = 4000
) -> ExperimentResult:
    """Section 2's DB_2 example: fact counts mislead, queries don't."""
    result = ExperimentResult(
        "F1b: [Smi89] fact-count heuristic vs learned strategies (DB_2)"
    )
    rng = random.Random(seed)
    graph = university.g_a()
    database = university.db2()
    theta_1 = university.theta_1(graph)
    theta_2 = university.theta_2(graph)

    # The "minors-only" workload: queried individuals are never profs.
    mix = university.minors_only_mix(database)
    distribution = university.query_distribution(graph, mix, database)
    smith = smith_strategy(graph, database)

    pib = PIB(graph, delta=0.05, initial_strategy=theta_1)
    pib.run(distribution.sampler(rng), contexts)

    def measured(strategy: Strategy) -> float:
        # Minors-only: every query has D_p blocked, D_g unblocked.
        return distribution.expected_cost(
            strategy, samples=2000, rng=random.Random(seed + 1)
        )

    rows = [
        ["Θ1 (prof first)", measured(theta_1)],
        ["Θ2 (grad first)", measured(theta_2)],
        ["Smith's pick", measured(smith)],
        ["PIB's final", measured(pib.strategy)],
    ]
    result.tables.append(format_table(
        "Expected cost under the minors-only workload (DB_2: 2000 prof / "
        "500 grad facts)",
        ["strategy", "C[Θ] (measured)"],
        rows,
        footer=(
            "Smith estimates (fact-count ratios): "
            + str({k: round(v, 3) for k, v in
                   smith_estimates(graph, database).items()})
        ),
    ))
    result.data["costs"] = {name: cost for name, cost in rows}
    result.check(
        "Smith picks Θ1 (prof first), as the paper predicts",
        smith.arc_names() == theta_1.arc_names(),
    )
    result.check(
        "the true workload makes Θ2 clearly superior",
        measured(theta_2) < measured(theta_1),
    )
    result.check(
        "PIB learns Θ2 despite the misleading fact counts",
        pib.strategy.arc_names() == theta_2.arc_names(),
    )
    return result


# ----------------------------------------------------------------------
# F2: PIB hill-climbing on Figure 2's G_B
# ----------------------------------------------------------------------

def experiment_figure2_pib(
    seed: int = 1, contexts: int = 4000, delta: float = 0.05
) -> ExperimentResult:
    """Hill-climb from Θ_ABCD on G_B; compare against the brute-force
    optimum and the named transformations of Section 3.2."""
    result = ExperimentResult("F2: PIB on Figure 2's G_B")
    graph = figure2.g_b()
    probs = figure2.figure2_probabilities()
    initial = figure2.theta_abcd(graph)
    distribution = IndependentDistribution(graph, probs)

    # The two named alternative strategies really are improvements
    # under the motivating distribution.
    c_init = expected_cost_exact(initial, probs)
    c_abdc = expected_cost_exact(figure2.theta_abdc(graph), probs)
    c_acdb = expected_cost_exact(figure2.theta_acdb(graph), probs)

    pib = PIB(graph, delta=delta, initial_strategy=initial)
    pib.run(distribution.sampler(random.Random(seed)), contexts)
    c_final = expected_cost_exact(pib.strategy, probs)
    optimum, c_opt = optimal_strategy_brute_force(graph, probs)

    result.tables.append(format_table(
        "Strategies on G_B (retrievals succeed with "
        f"p = {probs})",
        ["strategy", "C[Θ]"],
        [
            ["Θ_ABCD (Equation 4, initial)", c_init],
            ["Θ_ABDC (τ_{d,c} applied)", c_abdc],
            ["Θ_ACDB", c_acdb],
            [f"PIB after {contexts} contexts ({pib.climbs} climbs)", c_final],
            ["global optimum (brute force)", c_opt],
        ],
    ))
    climb_rows = [
        [rec.step, rec.context_number, rec.transformation,
         rec.samples, rec.estimated_gain, rec.threshold]
        for rec in pib.history
    ]
    result.tables.append(format_table(
        "PIB climb trace (Figure 3's loop)",
        ["step", "context#", "transformation", "|S|", "Δ̃ sum", "Eq 6 threshold"],
        climb_rows or [["-", "-", "(no climbs)", "-", "-", "-"]],
    ))

    result.data.update({
        "c_init": c_init, "c_final": c_final, "c_opt": c_opt,
        "climbs": pib.climbs,
        "tau_dc_applies": figure2.tau_dc().apply(initial).arc_names(),
    })
    result.check("τ_{d,c}(Θ_ABCD) = Θ_ABDC (Section 3.2)",
                 result.data["tau_dc_applies"]
                 == figure2.theta_abdc(graph).arc_names())
    result.check("Θ_ABDC and Θ_ACDB improve on Θ_ABCD here",
                 c_abdc < c_init and c_acdb < c_init)
    result.check("every PIB climb strictly improved the true cost",
                 all(
                     expected_cost_exact(Strategy(graph, rec.to_arcs), probs)
                     < expected_cost_exact(Strategy(graph, rec.from_arcs), probs)
                     for rec in pib.history
                 ))
    result.check("PIB improved the initial strategy", c_final < c_init)
    result.check("PIB got within 25% of the global optimum",
                 c_final <= 1.25 * c_opt)
    return result


# ----------------------------------------------------------------------
# E1: the PIB₁ filter's acceptance region (Equation 3)
# ----------------------------------------------------------------------

def experiment_pib1_filter(
    seed: int = 2, trials: int = 400, delta: float = 0.1
) -> ExperimentResult:
    """PIB₁ accepts the Θ₁→Θ₂ swap when it truly helps and keeps quiet
    when it does not."""
    result = ExperimentResult("E1: PIB₁ one-shot filter (Equation 3)")
    graph = university.g_a()
    theta_1 = university.theta_1(graph)

    scenarios = [
        ("grad-heavy (swap is right)", {"Dp": 0.15, "Dg": 0.60}, True),
        ("prof-heavy (swap is wrong)", {"Dp": 0.60, "Dg": 0.15}, False),
        ("balanced (no clear winner)", {"Dp": 0.40, "Dg": 0.40}, None),
    ]
    rows = []
    accept_rates: Dict[str, float] = {}
    for label, probs, _expected in scenarios:
        rng = random.Random(seed)
        distribution = IndependentDistribution(graph, probs)
        accepted = 0
        for _ in range(trials):
            pib1 = PIB1(graph, theta_1, "Rp", "Rg", delta=delta)
            for _ in range(150):
                pib1.observe(execute(theta_1, distribution.sample(rng)))
            if pib1.decide() is not None:
                accepted += 1
        rate = accepted / trials
        accept_rates[label] = rate
        rows.append([label, str(probs), f"{rate:.3f}"])
    result.tables.append(format_table(
        f"PIB₁ acceptance rate over {trials} independent 150-sample runs "
        f"(δ = {delta})",
        ["scenario", "p = (p_p, p_g)", "acceptance rate"],
        rows,
    ))
    result.data["accept_rates"] = accept_rates
    result.check("mostly accepts when the swap truly helps",
                 accept_rates["grad-heavy (swap is right)"] > 0.9)
    result.check("false-positive rate ≤ δ when the swap hurts",
                 accept_rates["prof-heavy (swap is wrong)"] <= delta)
    return result


# ----------------------------------------------------------------------
# T1: Theorem 1 — PIB's mistake probability is below δ
# ----------------------------------------------------------------------

def experiment_theorem1(
    seed: int = 3,
    runs: int = 60,
    contexts_per_run: int = 800,
    delta: float = 0.1,
    graph_size: Tuple[int, int] = (3, 5),
) -> ExperimentResult:
    """Run PIB on many random instances; count runs containing any
    climb that increased the true expected cost."""
    result = ExperimentResult("T1: Theorem 1 — PIB mistake rate ≤ δ")
    rng = random.Random(seed)
    mistakes = 0
    climbs_total = 0
    improvement_sum = 0.0
    for _ in range(runs):
        graph, probs = random_instance(
            rng, n_internal=graph_size[0], n_retrievals=graph_size[1]
        )
        distribution = IndependentDistribution(graph, probs)
        # Start from a deliberately bad ordering (ascending path ratio)
        # so every run has genuine room to climb — otherwise a random
        # depth-first start is often already near-optimal and the
        # mistake-rate measurement has no power.
        from ..optimal.approximate import path_ratio

        worst_first = sorted(
            graph.retrieval_arcs(),
            key=lambda arc: path_ratio(graph, arc, probs),
        )
        initial = Strategy.from_retrieval_order(graph, worst_first)
        pib = PIB(graph, delta=delta, initial_strategy=initial)
        initial_cost = expected_cost_exact(pib.strategy, probs)
        pib.run(distribution.sampler(rng), contexts_per_run)
        made_mistake = False
        for record in pib.history:
            before = expected_cost_exact(Strategy(graph, record.from_arcs), probs)
            after = expected_cost_exact(Strategy(graph, record.to_arcs), probs)
            if after > before + 1e-12:
                made_mistake = True
        climbs_total += pib.climbs
        mistakes += made_mistake
        improvement_sum += initial_cost - expected_cost_exact(pib.strategy, probs)

    mistake_rate = mistakes / runs
    result.tables.append(format_table(
        f"PIB over {runs} random instances "
        f"({graph_size[0]} internal nodes, {graph_size[1]} retrievals, "
        f"{contexts_per_run} contexts each, δ = {delta})",
        ["metric", "value"],
        [
            ["runs with any erroneous climb", mistakes],
            ["measured mistake rate [95% CI]",
             rate_with_interval(mistakes, runs)],
            ["Theorem 1 bound (δ)", delta],
            ["total climbs taken", climbs_total],
            ["mean true improvement per run", improvement_sum / runs],
        ],
    ))
    result.data.update({
        "mistake_rate": mistake_rate, "climbs": climbs_total,
        "mean_improvement": improvement_sum / runs,
    })
    result.check("measured mistake rate ≤ δ", mistake_rate <= delta)
    result.check("PIB actually climbs (the test has power)",
                 climbs_total > runs / 2)
    result.check("strategies improve on average", improvement_sum > 0)
    return result


# ----------------------------------------------------------------------
# T2: Theorem 2 — PAO is probably approximately optimal
# ----------------------------------------------------------------------

def experiment_theorem2(
    seed: int = 4,
    trials: int = 40,
    epsilon: float = 1.0,
    delta: float = 0.1,
    sample_scale: float = 1.0,
    graph_size: Tuple[int, int] = (2, 4),
) -> ExperimentResult:
    """Run PAO on random simple-disjunctive instances and measure how
    often ``C[Θ_pao] ≤ C[Θ_opt] + ε``."""
    result = ExperimentResult(
        "T2: Theorem 2 — PAO ε-optimality frequency (Equation 7 budgets)"
    )
    rng = random.Random(seed)
    successes = 0
    excesses: List[float] = []
    contexts_used: List[int] = []
    for _ in range(trials):
        graph, probs = random_instance(
            rng, n_internal=graph_size[0], n_retrievals=graph_size[1]
        )
        distribution = IndependentDistribution(graph, probs)
        outcome = pao(
            graph, epsilon, delta,
            distribution.sampler(rng),
            sample_scale=sample_scale,
        )
        c_pao = expected_cost_exact(outcome.strategy, probs)
        _, c_opt = optimal_strategy_brute_force(graph, probs)
        excess = c_pao - c_opt
        excesses.append(excess)
        contexts_used.append(outcome.contexts_used)
        if excess <= epsilon + 1e-9:
            successes += 1

    success_rate = successes / trials
    excesses.sort()
    result.tables.append(format_table(
        f"PAO over {trials} random instances (ε = {epsilon}, δ = {delta}, "
        f"sample_scale = {sample_scale})",
        ["metric", "value"],
        [
            ["success rate  Pr[C[Θ_pao] ≤ C[Θ_opt]+ε] [95% CI]",
             rate_with_interval(successes, trials)],
            ["Theorem 2 bound (1 − δ)", 1 - delta],
            ["median excess cost", excesses[len(excesses) // 2]],
            ["max excess cost", excesses[-1]],
            ["median contexts sampled", sorted(contexts_used)[len(contexts_used) // 2]],
        ],
    ))
    result.data.update({
        "success_rate": success_rate,
        "excesses": excesses,
        "contexts_used": contexts_used,
    })
    result.check("success rate ≥ 1 − δ", success_rate >= 1 - delta)
    return result


# ----------------------------------------------------------------------
# T3: Theorem 3 — the aiming variant with hard-to-reach experiments
# ----------------------------------------------------------------------

def _theorem3_graph() -> Tuple[InferenceGraph, Dict[str, float]]:
    """A graph in the ``grad(fred) :- admitted(fred, X)`` mould: a
    valuable retrieval hides behind a rarely-applicable reduction."""
    builder = GraphBuilder("root")
    builder.reduction("R_easy", "root", "easy")
    builder.retrieval("D_easy", "easy")
    # The blockable reduction: applies to few contexts.
    builder.reduction("R_rare", "root", "rare", blockable=True)
    builder.retrieval("D_rare", "rare", cost=0.5)
    builder.reduction("R_mid", "root", "mid")
    builder.retrieval("D_mid", "mid", cost=2.0)
    graph = builder.build()
    probs = {"D_easy": 0.3, "R_rare": 0.15, "D_rare": 0.9, "D_mid": 0.5}
    return graph, probs


def experiment_theorem3(
    seed: int = 5,
    trials: int = 40,
    epsilon: float = 1.0,
    delta: float = 0.1,
    sample_scale: float = 1.0,
) -> ExperimentResult:
    """Aiming PAO on a graph whose best retrieval sits behind a
    low-reach blockable reduction."""
    result = ExperimentResult(
        "T3: Theorem 3 — aiming PAO with unreachable experiments (Equation 8)"
    )
    graph, probs = _theorem3_graph()
    distribution = IndependentDistribution(graph, probs)
    rng = random.Random(seed)

    successes = 0
    excesses: List[float] = []
    reached_rare: List[int] = []
    for _ in range(trials):
        outcome = pao(
            graph, epsilon, delta,
            distribution.sampler(rng),
            aiming=True,
            sample_scale=sample_scale,
        )
        c_pao = expected_cost_exact(outcome.strategy, probs)
        _, c_opt = optimal_strategy_brute_force(graph, probs)
        excess = c_pao - c_opt
        excesses.append(excess)
        reached_rare.append(outcome.reached["D_rare"])
        if excess <= epsilon + 1e-9:
            successes += 1

    success_rate = successes / trials
    excesses.sort()
    result.tables.append(format_table(
        f"Aiming PAO over {trials} runs (ε = {epsilon}, δ = {delta}, "
        f"ρ(D_rare) = {probs['R_rare']})",
        ["metric", "value"],
        [
            ["success rate [95% CI]", rate_with_interval(successes, trials)],
            ["Theorem 3 bound (1 − δ)", 1 - delta],
            ["median excess cost", excesses[len(excesses) // 2]],
            ["max excess cost", excesses[-1]],
            ["median times D_rare was actually reached",
             sorted(reached_rare)[len(reached_rare) // 2]],
        ],
        footer="k(D_rare) ≪ m'(D_rare): the attempts budget tolerates "
               "blocked paths, as Theorem 3 intends.",
    ))
    result.data.update({
        "success_rate": success_rate, "excesses": excesses,
        "reached_rare": reached_rare,
    })
    result.check("success rate ≥ 1 − δ", success_rate >= 1 - delta)
    return result


# ----------------------------------------------------------------------
# L1: Lemma 1's sensitivity bound
# ----------------------------------------------------------------------

def experiment_lemma1(
    seed: int = 6,
    trials: int = 300,
    graph_size: Tuple[int, int] = (3, 5),
    perturbation: float = 0.3,
) -> ExperimentResult:
    """Randomized check that ``C_P[Θ_p̂] − C_P[Θ_P]`` never exceeds the
    Lemma 1 bound, and by how much the bound over-shoots."""
    result = ExperimentResult("L1: Lemma 1 sensitivity bound")
    rng = random.Random(seed)
    violations = 0
    ratios: List[float] = []
    worst_excess = 0.0
    for _ in range(trials):
        graph, p_true = random_instance(
            rng, n_internal=graph_size[0], n_retrievals=graph_size[1],
            blockable_reduction_rate=0.3,
        )
        p_estimate = {
            name: min(1.0, max(0.0, p + rng.uniform(-perturbation, perturbation)))
            for name, p in p_true.items()
        }
        lhs = excess_cost(graph, p_true, p_estimate)
        rhs = lemma1_bound(graph, p_true, p_estimate)
        worst_excess = max(worst_excess, lhs)
        if lhs > rhs + 1e-9:
            violations += 1
        if rhs > 1e-12:
            ratios.append(lhs / rhs)
    ratios.sort()
    result.tables.append(format_table(
        f"Lemma 1 over {trials} random instances "
        f"(|p − p̂| ≤ {perturbation} per experiment)",
        ["metric", "value"],
        [
            ["bound violations", violations],
            ["max observed excess cost", worst_excess],
            ["median tightness  lhs/rhs", ratios[len(ratios) // 2] if ratios else 0.0],
            ["max tightness  lhs/rhs", ratios[-1] if ratios else 0.0],
        ],
    ))
    result.data.update({"violations": violations, "ratios": ratios})
    result.check("the bound never violated", violations == 0)
    return result


# ----------------------------------------------------------------------
# A1: distributed segmented scan ordering
# ----------------------------------------------------------------------

def experiment_distributed(
    seed: int = 7, contexts: int = 6000, delta: float = 0.05
) -> ExperimentResult:
    """PIB learns the optimal scan order over correlated segment hits
    (Section 5.2's horizontally segmented databases)."""
    result = ExperimentResult(
        "A1: horizontally segmented distributed DB scan ordering (§5.2)"
    )
    table = SegmentedTable(
        segments=["na_east", "na_west", "europe", "asia", "archive"],
        scan_costs={"na_east": 2.0, "na_west": 2.0, "europe": 3.0,
                    "asia": 4.0, "archive": 8.0},
        hit_rates={"na_east": 0.10, "na_west": 0.05, "europe": 0.45,
                   "asia": 0.30, "archive": 0.05},
    )
    graph = segment_scan_graph(table)
    distribution = SegmentAccessDistribution(graph, table)
    rng = random.Random(seed)

    declared = list(table.segments)
    initial = distribution.strategy_for_order(declared)
    optimal_order = table.optimal_order()
    optimal = distribution.strategy_for_order(optimal_order)

    pib = PIB(graph, delta=delta, initial_strategy=initial)
    pib.run(distribution.sampler(rng), contexts)

    def cost(strategy: Strategy) -> float:
        return distribution.expected_cost(strategy)

    learned_order = [
        arc.name.replace("scan_", "") for arc in pib.strategy.retrieval_order()
    ]
    result.tables.append(format_table(
        "Scan orders and their exact expected costs (correlated hits: an "
        "individual lives in exactly one segment)",
        ["order", "E[scan cost]"],
        [
            ["declared  " + " > ".join(declared), cost(initial)],
            ["PIB       " + " > ".join(learned_order), cost(pib.strategy)],
            ["optimal   " + " > ".join(optimal_order), cost(optimal)],
        ],
        footer="closed-form check: table.expected_cost(optimal_order) = "
               f"{table.expected_cost(optimal_order):.4g}",
    ))
    result.data.update({
        "learned_order": learned_order,
        "optimal_order": optimal_order,
        "cost_initial": cost(initial),
        "cost_learned": cost(pib.strategy),
        "cost_optimal": cost(optimal),
    })
    result.check(
        "closed-form and graph-level optimal costs agree",
        abs(table.expected_cost(optimal_order) - cost(optimal)) < 1e-9,
    )
    result.check("PIB reaches the optimal scan order",
                 learned_order == optimal_order)
    return result


# ----------------------------------------------------------------------
# A1b: distributed scans under injected faults + crash/restart
# ----------------------------------------------------------------------

def experiment_distributed_faulty(
    seed: int = 7,
    contexts: int = 6000,
    delta: float = 0.05,
    fault_seed: int = 3,
    trace_path: Optional[str] = None,
) -> ExperimentResult:
    """A1 under chaos: transient segment faults, timeouts, retries with
    backoff, and a simulated crash/restart at the halfway point.

    Three properties are checked: (1) PIB behind the resilient executor
    still converges to the provably optimal scan order — the settled-
    outcome reporting keeps fault noise out of the Δ̃ statistics;
    (2) the checkpoint → reload round trip at the crash point is
    byte-identical (same ``total_tests``, Δ̃ sums, strategy); (3) the
    billed cost is never below the settled (fault-free-equivalent)
    cost — retries and backoff only ever add to ``c(Θ, I)``.

    With ``trace_path`` set, the whole run is traced and exported as
    JSONL; a fourth check then asserts the trace's per-query billed and
    settled totals reconcile exactly with the harness accumulators.
    """
    result = ExperimentResult(
        "A1b: segmented scans under injected faults (resilient execution)"
    )
    table = FlakySegmentedTable(
        segments=["na_east", "na_west", "europe", "asia", "archive"],
        scan_costs={"na_east": 2.0, "na_west": 2.0, "europe": 3.0,
                    "asia": 4.0, "archive": 8.0},
        hit_rates={"na_east": 0.10, "na_west": 0.05, "europe": 0.45,
                   "asia": 0.30, "archive": 0.05},
        failure_rates={"na_east": 0.05, "na_west": 0.02, "europe": 0.10,
                       "asia": 0.08, "archive": 0.15},
        timeout_rates={"archive": 0.05},
    )
    graph = segment_scan_graph(table)
    flaky = FlakySegmentAccessDistribution(graph, table, fault_seed)
    declared = list(table.segments)
    optimal_order = table.optimal_order()

    recorder = Tracer(margin_events=False) if trace_path else NULL_RECORDER
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=6, base_backoff=0.25),
        seed=fault_seed,
        recorder=recorder,
    )
    pib = PIB(graph, delta=delta,
              initial_strategy=flaky.strategy_for_order(declared),
              recorder=recorder)
    rng = random.Random(seed)
    billed = 0.0
    settled = 0.0
    crash_at = contexts // 2

    def drive(learner: PIB, budget: int) -> None:
        nonlocal billed, settled
        for _ in range(budget):
            run = execute_resilient(learner.strategy, flaky.sample(rng),
                                    policy, recorder=recorder)
            billed += run.cost
            settled += run.settled_cost
            learner.record(run.settled_result())

    drive(pib, crash_at)

    # Simulated kill/restart: serialize, reload against a fresh graph
    # walk, and verify the state survived byte-for-byte.  Recorders are
    # deliberately not part of the checkpoint, so the restored learner
    # gets the live one reattached.
    snapshot = pib_to_dict(pib)
    restored = pib_from_dict(graph, snapshot)
    roundtrip_identical = pib_to_dict(restored) == snapshot
    restored.recorder = recorder
    drive(restored, contexts - crash_at)

    learned_order = [
        arc.name.replace("scan_", "")
        for arc in restored.strategy.retrieval_order()
    ]
    result.tables.append(format_table(
        "Scan orders under injected faults "
        f"(faults={flaky.plan.injected_faults}, "
        f"timeouts={flaky.plan.injected_timeouts}, "
        f"retries={policy.total_retries}, "
        f"unsettled={policy.unsettled_arcs})",
        ["order", "E[scan cost]"],
        [
            ["declared  " + " > ".join(declared),
             table.expected_cost(declared)],
            ["PIB       " + " > ".join(learned_order),
             table.expected_cost(learned_order)],
            ["optimal   " + " > ".join(optimal_order),
             table.expected_cost(optimal_order)],
        ],
        footer=f"billed cost {billed:.1f} vs settled cost {settled:.1f} "
               f"(overhead {(billed / settled - 1) * 100:.1f}%)",
    ))
    result.data.update({
        "learned_order": learned_order,
        "optimal_order": optimal_order,
        "billed_cost": billed,
        "settled_cost": settled,
        "faults_injected": flaky.plan.injected_faults,
        "retries": policy.total_retries,
        "roundtrip_identical": roundtrip_identical,
    })
    result.check(
        "checkpoint round trip at the crash point is byte-identical",
        roundtrip_identical,
    )
    result.check(
        "retries only add cost (billed >= settled)",
        billed >= settled,
    )
    result.check(
        "PIB reaches the optimal scan order despite injected faults",
        learned_order == optimal_order,
    )
    if trace_path:
        recorder.export_jsonl(trace_path)
        summary = summarize_trace(recorder.events)
        result.data["trace_summary"] = summary
        result.check(
            "trace billed/settled totals reconcile with the harness "
            "accumulators",
            abs(summary["billed_cost"] - billed) < 1e-9
            and abs(summary["settled_cost"] - settled) < 1e-9,
        )
    return result


# ----------------------------------------------------------------------
# D1: drift recovery — piecewise-stationary workloads
# ----------------------------------------------------------------------

def experiment_drift(
    seed: int = 11,
    regime_contexts: int = 2500,
    delta: float = 0.05,
    drift_delta: float = 0.05,
    window: int = 250,
) -> ExperimentResult:
    """Recovery from a regime change that §2.1's stationarity forbids.

    ``G_A``'s success probabilities flip halfway through the stream
    (grad-heavy → prof-heavy), so the regime-A optimum ``Θ₂`` becomes
    the regime-B pessimum.  Three learners see identical context
    streams:

    * **frozen** — the strategy PIB had learned when the regime
      changed, never updated again (the deployment that stopped
      learning);
    * **vanilla PIB** — keeps learning, but its Δ̃ evidence and δ_i
      schedule straddle the change, so adaptation is slow at best;
    * **drift-aware PIB** — detects the change, opens a new epoch, and
      re-climbs under a fresh Theorem 1 budget.

    The headline check is the issue's acceptance criterion: after the
    change, drift-aware PIB gets within 10% of the *regime-B* optimum
    while the frozen strategy stays worse than that band.  The
    no-drift no-op property is asserted on the way: until the regime
    changes, vanilla and drift-aware PIB take byte-identical climb
    sequences.
    """
    result = ExperimentResult(
        "D1: drift recovery on G_A (piecewise-stationary workload)"
    )
    graph = university.g_a()
    probs_a = university.intended_probabilities()          # Θ₂ optimal
    probs_b = {"Dp": probs_a["Dg"], "Dg": probs_a["Dp"]}   # Θ₁ optimal
    contexts = 2 * regime_contexts

    def stream():
        return PiecewiseStationaryDistribution(graph, [
            (regime_contexts, IndependentDistribution(graph, probs_a)),
            (None, IndependentDistribution(graph, probs_b)),
        ])

    initial = university.theta_1(graph)
    vanilla = PIB(graph, delta=delta,
                  initial_strategy=Strategy(graph, initial.arc_names()))
    aware = DriftAwarePIB(
        graph, delta=delta,
        initial_strategy=Strategy(graph, initial.arc_names()),
        drift=DriftConfig(delta=drift_delta),
    )

    frozen_arcs: Dict[str, Sequence[str]] = {}
    histories_at_change: Dict[str, List[Tuple[str, Tuple[str, ...]]]] = {}
    curves: Dict[str, List[float]] = {}
    for label, learner in (("vanilla", vanilla), ("drift-aware", aware)):
        distribution = stream()
        rng = random.Random(seed)
        accumulator = 0.0
        windows: List[float] = []
        for index in range(1, contexts + 1):
            accumulator += learner.process(distribution.sample(rng)).cost
            if index % window == 0:
                windows.append(accumulator / window)
                accumulator = 0.0
            if index == regime_contexts:
                frozen_arcs[label] = learner.strategy.arc_names()
                histories_at_change[label] = [
                    (rec.transformation, tuple(rec.to_arcs))
                    for rec in learner.history
                ]
        curves[label] = windows

    frozen = Strategy(graph, frozen_arcs["vanilla"])
    _, c_opt_a = optimal_strategy_brute_force(graph, probs_a)
    _, c_opt_b = optimal_strategy_brute_force(graph, probs_b)

    def cost_b(strategy: Strategy) -> float:
        return expected_cost_exact(strategy, probs_b)

    result.tables.append(format_table(
        f"Regime B expected costs (change after {regime_contexts} "
        f"contexts; p flips {probs_a} → {probs_b})",
        ["strategy", "C_B[Θ]"],
        [
            ["frozen at the change  " + " ".join(frozen.arc_names()),
             cost_b(frozen)],
            ["vanilla PIB, final    " + " ".join(vanilla.strategy.arc_names()),
             cost_b(vanilla.strategy)],
            ["drift-aware, final    " + " ".join(aware.strategy.arc_names()),
             cost_b(aware.strategy)],
            ["regime-B optimum", c_opt_b],
        ],
        footer=f"regime-A optimum C_A = {c_opt_a:.3f}; drift report: "
               f"{aware.drift_report()}",
    ))
    result.tables.append(format_table(
        f"Mean observed cost per {window}-context window",
        ["window end", "vanilla", "drift-aware"],
        [
            [(i + 1) * window, v, a]
            for i, (v, a) in enumerate(
                zip(curves["vanilla"], curves["drift-aware"])
            )
        ],
    ))
    result.data.update({
        "c_opt_a": c_opt_a,
        "c_opt_b": c_opt_b,
        "cost_frozen": cost_b(frozen),
        "cost_vanilla": cost_b(vanilla.strategy),
        "cost_aware": cost_b(aware.strategy),
        "alarms": len(aware.drift_alarms),
        "epoch": aware.epoch,
        "rollbacks": aware.rollbacks,
        "curves": curves,
    })
    result.check(
        "no-drift no-op: identical climb sequences until the change",
        histories_at_change["vanilla"] == histories_at_change["drift-aware"],
    )
    result.check(
        "the change was detected (≥ 1 alarm, ≥ 1 epoch)",
        len(aware.drift_alarms) >= 1 and aware.epoch >= 1,
    )
    result.check(
        "drift-aware PIB recovers to within 10% of the regime-B optimum",
        cost_b(aware.strategy) <= 1.10 * c_opt_b,
    )
    result.check(
        "the frozen strategy stays worse than that band",
        cost_b(frozen) > 1.10 * c_opt_b,
    )
    return result


# ----------------------------------------------------------------------
# A2: negation-as-failure refutation ordering
# ----------------------------------------------------------------------

def experiment_naf(
    seed: int = 8, contexts: int = 6000, delta: float = 0.05
) -> ExperimentResult:
    """Order the ownership scans inside ``not owns(x, Y)`` (§5.2)."""
    result = ExperimentResult(
        "A2: negation-as-failure refutation ordering (pauper rule, §5.2)"
    )
    graph = refutation_graph()
    distribution = OwnershipDistribution(graph)
    probs = distribution.arc_probabilities()
    rng = random.Random(seed)

    initial = Strategy.depth_first(graph)
    pib = PIB(graph, delta=delta, initial_strategy=initial)
    pib.run(distribution.sampler(rng), contexts)

    optimal, c_opt = optimal_strategy_brute_force(graph, probs)
    c_init = expected_cost_exact(initial, probs)
    c_learned = expected_cost_exact(pib.strategy, probs)

    rows = [
        [category, cost, rate, rate / (cost + 1.0)]
        for category, (cost, rate) in OWNERSHIP_CATEGORIES.items()
    ]
    result.tables.append(format_table(
        "Ownership categories (scan cost, ownership rate, rate per unit "
        "path cost)",
        ["category", "scan cost", "rate", "ratio p/(c+1)"],
        rows,
    ))
    result.tables.append(format_table(
        "Refutation search cost (one refuting item suffices)",
        ["strategy", "C[Θ]"],
        [
            ["declared order", c_init],
            [f"PIB after {contexts} contexts", c_learned],
            ["optimal", c_opt],
        ],
    ))
    result.data.update({
        "cost_initial": c_init, "cost_learned": c_learned, "cost_opt": c_opt,
    })
    result.check("PIB improves the declared order", c_learned < c_init)
    result.check("PIB within 10% of optimal", c_learned <= 1.1 * c_opt)
    return result


# ----------------------------------------------------------------------
# S1: Υ_AOT scaling
# ----------------------------------------------------------------------

def experiment_upsilon_scaling(
    seed: int = 9,
    sizes: Sequence[int] = (10, 20, 40, 80, 160),
    repeats: int = 3,
) -> ExperimentResult:
    """Empirical runtime of ``Υ_AOT`` vs graph size (the §4 efficiency
    claim: polynomial whenever Υ is)."""
    result = ExperimentResult("S1: Υ_AOT runtime scaling")
    rng = random.Random(seed)
    rows = []
    timings: List[Tuple[int, float]] = []
    for size in sizes:
        graph, probs = random_instance(
            rng,
            n_internal=max(2, size // 3),
            n_retrievals=size,
        )
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            strategy = upsilon_aot(graph, probs)
            best = min(best, time.perf_counter() - start)
        greedy_cost = expected_cost_exact(upsilon_greedy(graph, probs), probs)
        exact_cost = expected_cost_exact(strategy, probs)
        rows.append([size, len(graph.arcs()), best * 1e3,
                     exact_cost, greedy_cost])
        timings.append((len(graph.arcs()), best))
    result.tables.append(format_table(
        "Υ_AOT runtime and the greedy Υ̃'s cost gap",
        ["retrievals", "arcs", "Υ_AOT ms", "C[Υ_AOT]", "C[Υ̃ greedy]"],
        rows,
    ))
    result.data["timings"] = timings
    # Polynomial (roughly cubic) growth: doubling size should not blow
    # the time up by more than ~16x; allow wide noise margins.
    grew_ok = all(
        later / max(earlier, 1e-7) < 40.0
        for (_, earlier), (_, later) in zip(timings, timings[1:])
    )
    result.check("runtime grows polynomially (no blow-up between sizes)",
                 grew_ok)
    result.check("greedy Υ̃ never beats exact Υ_AOT",
                 all(row[4] >= row[3] - 1e-9 for row in rows))
    return result


# ----------------------------------------------------------------------
# C1: head-to-head comparison
# ----------------------------------------------------------------------

def experiment_comparison(
    seed: int = 10,
    instances: int = 25,
    contexts: int = 1500,
    delta: float = 0.1,
) -> ExperimentResult:
    """Initial vs Smith-style static guess vs PIB vs PALO vs PAO vs
    optimal, averaged over random instances."""
    result = ExperimentResult(
        "C1: head-to-head expected cost (normalized to the optimum)"
    )
    rng = random.Random(seed)
    totals: Dict[str, float] = {
        "initial": 0.0, "greedy Υ̃ on true p": 0.0, "PIB": 0.0,
        "PALO": 0.0, "PAO (scaled budget)": 0.0, "optimal": 0.0,
    }
    pib_never_regressed = True
    for _ in range(instances):
        graph, probs = random_instance(rng, n_internal=3, n_retrievals=5)
        distribution = IndependentDistribution(graph, probs)
        initial = Strategy.depth_first(graph)
        _, c_opt = optimal_strategy_brute_force(graph, probs)

        pib = PIB(graph, delta=delta, initial_strategy=initial)
        pib.run(distribution.sampler(rng), contexts)

        palo = PALO(graph, epsilon=0.5, delta=delta, initial_strategy=initial)
        try:
            palo.run(distribution.sampler(rng), contexts * 4)
            palo_strategy = palo.strategy
        except Exception:
            palo_strategy = palo.strategy

        pao_result = pao(
            graph, epsilon=1.0, delta=delta,
            oracle=distribution.sampler(rng), sample_scale=0.25,
        )

        def normalized(strategy: Strategy) -> float:
            return expected_cost_exact(strategy, probs) / c_opt

        totals["initial"] += normalized(initial)
        totals["greedy Υ̃ on true p"] += normalized(upsilon_greedy(graph, probs))
        totals["PIB"] += normalized(pib.strategy)
        totals["PALO"] += normalized(palo_strategy)
        totals["PAO (scaled budget)"] += normalized(pao_result.strategy)
        totals["optimal"] += 1.0
        if normalized(pib.strategy) > normalized(initial) + 1e-9:
            pib_never_regressed = False

    rows = [
        [name, total / instances] for name, total in totals.items()
    ]
    result.tables.append(format_table(
        f"Mean C[Θ]/C[Θ_opt] over {instances} random instances "
        f"({contexts} contexts per learner)",
        ["method", "mean normalized cost"],
        rows,
        footer="PIB's one-sided Δ̃ test is deliberately conservative "
               "(Theorem 1 trades power for safety): it improves when "
               "the evidence is clear and otherwise stays put.",
    ))
    result.data["normalized"] = {name: t / instances for name, t in totals.items()}
    norm = result.data["normalized"]
    result.check("PIB improves on average and never regresses (Thm 1)",
                 norm["PIB"] < norm["initial"] and pib_never_regressed)
    result.check("PALO within 10% of optimal on average",
                 norm["PALO"] <= 1.10)
    result.check("PAO within 10% of optimal on average",
                 norm["PAO (scaled budget)"] <= 1.10)
    result.check("PAO (sampled p̂) beats the greedy Υ̃ fed the true p, "
                 "or matches it",
                 norm["PAO (scaled budget)"]
                 <= norm["greedy Υ̃ on true p"] + 0.05)
    return result


# ----------------------------------------------------------------------
# S1: serving layer — parallel throughput and cache warm-up
# ----------------------------------------------------------------------

class LatencyDatabase(Database):
    """A database whose probes carry a wall-clock latency.

    The simulation's abstract cost units cannot show a thread-pool
    speedup (pure-Python probe work serializes on the interpreter
    lock), so the serving experiment models what form-sharded workers
    actually overlap in a deployment: retrieval I/O.  ``time.sleep``
    releases the interpreter lock, exactly as a real database call
    would block on the network.
    """

    def __init__(self, facts=(), latency: float = 0.002):
        super().__init__(facts)
        self.latency = latency

    def succeeds(self, pattern) -> bool:
        if self.latency:
            time.sleep(self.latency)
        return super().succeeds(pattern)


def _serving_workload(forms: int, queries_per_form: int):
    """A multi-form rule base plus an interleaved query stream.

    Each form has a rarely-matching rule declared first and a usually-
    matching rule second, so the initial strategy pays one wasted probe
    per query and PIB has a real climb to find.
    """
    rules_lines: List[str] = []
    facts_lines: List[str] = []
    for k in range(forms):
        rules_lines.append(f"task{k}(X) :- rare{k}(X).")
        rules_lines.append(f"task{k}(X) :- common{k}(X).")
        facts_lines.append(f"rare{k}(q0).")
        for person in range(6):
            facts_lines.append(f"common{k}(p{person}).")
    queries = []
    for index in range(queries_per_form):
        for k in range(forms):
            who = "q0" if index % 9 == 8 else f"p{index % 6}"
            queries.append(parse_query(f"task{k}({who})"))
    return "\n".join(rules_lines), "\n".join(facts_lines), queries


def experiment_serving(
    forms: int = 6,
    queries_per_form: int = 25,
    latency: float = 0.002,
    workers: int = 4,
    delta: float = 0.05,
) -> ExperimentResult:
    """Throughput and cache behaviour of the form-sharded server.

    Three claims: (1) a parallel batch over independent query forms
    beats the sequential run by >= 2x at 4 workers once probes carry
    I/O latency; (2) a warm answer cache serves a repeated batch >= 5x
    faster than the cold pass, with the hit counters visible in the
    report; (3) parallelism changes *when* forms run, never *what* the
    learners decide — per-form climb histories are identical.
    """
    result = ExperimentResult(
        "S1: form-sharded serving — parallel throughput and caching"
    )
    rules_text, facts_text, queries = _serving_workload(
        forms, queries_per_form
    )

    def fresh_session(workers_count: int, cache: CacheConfig):
        return open_session(
            parse_program(rules_text),
            LatencyDatabase(
                Database.from_program(facts_text), latency=latency
            ),
            config=SessionConfig(delta=delta),
            serving=ServingConfig(workers=workers_count),
            cache=cache,
        )

    def timed_batch(session) -> float:
        start = time.perf_counter()
        session.query_batch(queries)
        return time.perf_counter() - start

    with fresh_session(1, CacheConfig()) as sequential:
        t_sequential = timed_batch(sequential)
        sequential_climbs = {
            form: [
                (r.context_number, r.transformation, tuple(r.to_arcs))
                for r in sequential.processor.climb_history(form)
            ]
            for form in list(sequential.processor._states)
        }

    with fresh_session(workers, CacheConfig()) as parallel:
        t_parallel = timed_batch(parallel)
        parallel_climbs = {
            form: [
                (r.context_number, r.transformation, tuple(r.to_arcs))
                for r in parallel.processor.climb_history(form)
            ]
            for form in list(parallel.processor._states)
        }

    with fresh_session(
        workers, CacheConfig.default_enabled()
    ) as cached_session:
        t_cold = timed_batch(cached_session)
        t_warm = timed_batch(cached_session)
        serving_snapshot = cached_session.server.snapshot()

    parallel_speedup = t_sequential / t_parallel if t_parallel else 0.0
    warm_speedup = t_cold / t_warm if t_warm else 0.0
    hits = serving_snapshot["answer_cache"]["hits"]

    result.tables.append(format_table(
        f"Batch of {len(queries)} queries over {forms} forms "
        f"({latency * 1000:.1f} ms probe latency)",
        ["configuration", "wall s", "speedup"],
        [
            ["sequential (workers=1)", t_sequential, 1.0],
            [f"parallel (workers={workers})", t_parallel,
             parallel_speedup],
            ["cached, cold pass", t_cold, t_sequential / t_cold
             if t_cold else 0.0],
            ["cached, warm pass", t_warm, warm_speedup],
        ],
        footer=f"answer cache after both passes: {hits} hits / "
               f"{serving_snapshot['answer_cache']['misses']} misses "
               f"/ hit rate "
               f"{serving_snapshot['answer_cache']['hit_rate']:.1%}",
    ))
    result.data.update({
        "queries": len(queries),
        "forms": forms,
        "t_sequential": t_sequential,
        "t_parallel": t_parallel,
        "t_cold": t_cold,
        "t_warm": t_warm,
        "parallel_speedup": parallel_speedup,
        "warm_speedup": warm_speedup,
        "answer_cache": dict(serving_snapshot["answer_cache"]),
        "climbs_per_form": {
            str(form): len(history)
            for form, history in sequential_climbs.items()
        },
    })
    result.check(
        f"parallel batch >= 2x sequential throughput at {workers} workers",
        parallel_speedup >= 2.0,
    )
    result.check(
        "warm answer-cache pass >= 5x faster than the cold pass",
        warm_speedup >= 5.0,
    )
    result.check(
        "per-form climb decisions identical under parallel serving",
        parallel_climbs == sequential_climbs,
    )
    result.check(
        "cache counters visible in the serving report",
        hits > 0 and serving_snapshot["answer_cache"]["hit_rate"] > 0,
    )
    return result


# ----------------------------------------------------------------------
# OV1: overload — admission control bounds tail latency under burst
# ----------------------------------------------------------------------


def _latency_quantile(sorted_values: Sequence[float], q: float) -> float:
    """Exact linear-interpolated quantile of pre-sorted values."""
    if not sorted_values:
        return 0.0
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1 - fraction) + sorted_values[high] * fraction


def experiment_overload(
    forms: int = 4,
    queries_per_form: int = 12,
    burst: int = 10,
    queue_capacity: int = 8,
    tenants: int = 3,
    delta: float = 0.05,
) -> ExperimentResult:
    """Admission control under a 10x burst: bounded tails, typed sheds.

    The load-shedding claim, measured in the serving layer's own
    deterministic latency units (per-form virtual cost clocks): with a
    bounded admission queue, the p99 *served* latency under a 10x
    burst is (1) essentially the p99 at 1x — the queue cannot deepen
    past its capacity, so neither can the wait — and (2) far below the
    unbounded-queue p99, which grows linearly with offered load.
    Meanwhile every request still gets a typed outcome, the outcome
    sequence is byte-deterministic, and under ``reject-over-quota`` no
    tenant starves.
    """
    result = ExperimentResult(
        "OV1: overload — admission control bounds tail latency"
    )
    rules_text, facts_text, queries = _serving_workload(
        forms, queries_per_form
    )
    rules = parse_program(rules_text)
    database = Database.from_program(facts_text)

    def run_burst(burst_factor: int, capacity: int):
        processor = SelfOptimizingQueryProcessor(
            rules, config=SessionConfig(delta=delta)
        )
        server = QueryServer(
            processor,
            serving=ServingConfig(admission=AdmissionConfig(
                queue_capacity=capacity,
                shed_policy="reject-over-quota",
            )),
        )
        requests = coerce_requests(
            list(queries) * burst_factor, tenants=tenants
        )
        return server.run_requests(requests, database)

    def served_latencies(outcomes) -> List[float]:
        return sorted(o.latency for o in outcomes if o.served)

    unbounded_capacity = len(queries) * burst + 1

    calm = run_burst(1, queue_capacity)
    stormy = run_burst(burst, queue_capacity)
    stormy_again = run_burst(burst, queue_capacity)
    unbounded = run_burst(burst, unbounded_capacity)

    calm_p99 = _latency_quantile(served_latencies(calm), 0.99)
    stormy_sorted = served_latencies(stormy)
    stormy_p50 = _latency_quantile(stormy_sorted, 0.50)
    stormy_p95 = _latency_quantile(stormy_sorted, 0.95)
    stormy_p99 = _latency_quantile(stormy_sorted, 0.99)
    unbounded_p99 = _latency_quantile(served_latencies(unbounded), 0.99)

    def tally(outcomes) -> Dict[str, int]:
        counts = {"served": 0, "degraded": 0, "rejected": 0}
        for outcome in outcomes:
            counts[outcome.status] += 1
        return counts

    stormy_counts = tally(stormy)
    goodput = stormy_counts["served"] / len(stormy) if stormy else 0.0
    fingerprint = [
        (o.request.tenant, o.status, o.reason, round(o.latency, 9))
        for o in stormy
    ]
    fingerprint_again = [
        (o.request.tenant, o.status, o.reason, round(o.latency, 9))
        for o in stormy_again
    ]
    progressed_tenants = {
        o.request.tenant for o in stormy if not o.rejected
    }
    demanded_tenants = {o.request.tenant for o in stormy}

    result.tables.append(format_table(
        f"{len(queries)} queries/pass, {forms} forms, "
        f"queue capacity {queue_capacity}, {tenants} tenants "
        f"(latencies in virtual cost units)",
        ["configuration", "offered", "served", "p99 latency"],
        [
            ["bounded, 1x load", len(calm), tally(calm)["served"],
             calm_p99],
            [f"bounded, {burst}x burst", len(stormy),
             stormy_counts["served"], stormy_p99],
            [f"unbounded, {burst}x burst", len(unbounded),
             tally(unbounded)["served"], unbounded_p99],
        ],
        footer=f"{burst}x burst under the bounded queue: "
               f"p50={stormy_p50:.1f} p95={stormy_p95:.1f} "
               f"p99={stormy_p99:.1f}, goodput {goodput:.1%}, "
               f"rejected {stormy_counts['rejected']}",
    ))
    result.data.update({
        "offered": len(stormy),
        "burst": burst,
        "queue_capacity": queue_capacity,
        "served": stormy_counts["served"],
        "rejected": stormy_counts["rejected"],
        "degraded": stormy_counts["degraded"],
        "goodput": goodput,
        "calm_p99": calm_p99,
        "stormy_p50": stormy_p50,
        "stormy_p95": stormy_p95,
        "stormy_p99": stormy_p99,
        "unbounded_p99": unbounded_p99,
        "tail_ratio": (unbounded_p99 / stormy_p99 if stormy_p99 else 0.0),
    })
    result.check(
        f"p99 under {burst}x burst stays within 1.25x of the 1x p99",
        stormy_p99 <= calm_p99 * 1.25,
    )
    result.check(
        "bounded-queue p99 at least 3x below the unbounded queue's",
        unbounded_p99 >= stormy_p99 * 3.0,
    )
    result.check(
        "every request received exactly one typed outcome",
        len(stormy) == sum(stormy_counts.values()),
    )
    result.check(
        "outcome sequence is byte-deterministic across reruns",
        fingerprint == fingerprint_again,
    )
    result.check(
        "no tenant starves under reject-over-quota",
        progressed_tenants == demanded_tenants,
    )

    # The chaos leg: the same bounded burst, but the database both
    # faults (seeded FaultPlan at the storage layer) and drifts (a
    # mid-run mutation moves facts, bumping the cache generation).
    # Admission must still hand back a typed outcome for every request
    # — the hot path never raises even when the storage layer does —
    # and the virtual-latency tail must stay bounded: faults inflate
    # per-serve cost via retries, but the queue bound still caps how
    # many serves any request waits behind.
    plan = FaultPlan(seed=3, per_arc={
        "rare0": FaultSpec(fault_rate=0.3),
        "common0": FaultSpec(fault_rate=0.2),
        "common1": FaultSpec(fault_rate=0.2, fail_first=2),
    })
    chaos_processor = SelfOptimizingQueryProcessor(
        rules,
        config=SessionConfig(
            delta=delta,
            resilience=ResiliencePolicy(
                retry=RetryPolicy(max_attempts=3, base_backoff=0.1),
                seed=0,
            ),
        ),
    )
    chaos_server = QueryServer(
        chaos_processor,
        serving=ServingConfig(admission=AdmissionConfig(
            queue_capacity=queue_capacity,
            shed_policy="reject-over-quota",
        )),
    )
    flaky = FlakyDatabase(Database.from_program(facts_text), plan)
    requests = coerce_requests(list(queries) * burst, tenants=tenants)
    half = len(requests) // 2
    chaos_outcomes = list(
        chaos_server.run_requests(requests[:half], flaky)
    )
    for k in range(forms):  # the drift: every form's facts move
        flaky.inner.add(parse_atom(f"common{k}(drifted)"))
    chaos_outcomes.extend(
        chaos_server.run_requests(requests[half:], flaky)
    )
    chaos_sorted = served_latencies(chaos_outcomes)
    chaos_p99 = _latency_quantile(chaos_sorted, 0.99)
    chaos_counts = tally(chaos_outcomes)
    result.data.update({
        "chaos_p99": chaos_p99,
        "chaos_served": chaos_counts["served"],
        "chaos_rejected": chaos_counts["rejected"],
        "chaos_faults_injected": plan.injected_faults,
    })
    result.tables.append(format_table(
        "Chaos leg: same burst + storage faults + mid-run data drift",
        ["leg", "offered", "served", "p99 latency"],
        [
            ["clean burst", len(stormy), stormy_counts["served"],
             stormy_p99],
            ["faults + drift", len(chaos_outcomes),
             chaos_counts["served"], chaos_p99],
        ],
        footer=f"{plan.injected_faults} faults injected; "
               f"retries bill extra cost, so the chaos p99 may sit "
               f"above the clean p99 — but the queue bound still "
               f"caps it",
    ))
    result.check(
        "chaos leg: every request still gets a typed outcome",
        len(chaos_outcomes) == len(requests)
        and all(o.status in ("served", "degraded", "rejected")
                for o in chaos_outcomes)
        and plan.injected_faults > 0,
    )
    result.check(
        "chaos leg: p99 stays bounded (within 4x of the clean p99)",
        chaos_p99 <= stormy_p99 * 4.0,
    )
    return result


# ----------------------------------------------------------------------
# F13: raw Datalog engine throughput (the hot-path overhaul)
# ----------------------------------------------------------------------

def experiment_engine(
    nodes: int = 60, proves: int = 200
) -> ExperimentResult:
    """Raw substrate throughput on a transitive-closure workload.

    The learning results ride on the Datalog substrate, so its constant
    factors bound every experiment above: this leg times repeated
    top-down proves, full answer enumeration, and both bottom-up
    fixpoints on an ``nodes``-node chain-with-shortcuts graph, and
    cross-checks the three evaluators against each other (the
    differential oracle of the verify subsystem, inlined).

    The recorded ``metrics`` — model size, answer count, trace cost —
    are machine-independent; the wall time of the whole leg is the
    trajectory's engine-speed trend.
    """
    from ..datalog.bottomup import naive_evaluate, seminaive_evaluate
    from ..datalog.engine import TopDownEngine
    from ..datalog.terms import Atom

    result = ExperimentResult("F13: Datalog engine throughput (engine leg)")
    rules = parse_program("""
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- edge(X, Z), path(Z, Y).
    """)
    facts = Database()
    for index in range(nodes - 1):
        facts.add(Atom("edge", [f"n{index:03d}", f"n{index + 1:03d}"]))
    for index in range(0, nodes - 5, 5):
        facts.add(Atom("edge", [f"n{index:03d}", f"n{index + 5:03d}"]))

    timings: Dict[str, float] = {}

    start = time.perf_counter()
    seminaive = seminaive_evaluate(rules, facts)
    timings["seminaive"] = time.perf_counter() - start

    start = time.perf_counter()
    naive = naive_evaluate(rules, facts)
    timings["naive"] = time.perf_counter() - start

    engine = TopDownEngine(rules, max_depth=4 * nodes)
    goal = parse_query(f"path(n000, n{nodes - 1:03d})")
    start = time.perf_counter()
    for _ in range(proves):
        answer = engine.prove(goal, facts)
    timings["proves"] = time.perf_counter() - start
    prove_cost = answer.trace.cost

    start = time.perf_counter()
    answers = list(engine.answers(parse_query("path(n000, X)"), facts))
    timings["answers"] = time.perf_counter() - start

    path_facts = len(seminaive.relation("path", 2))
    result.data.update({
        "path_facts": path_facts,
        "answers": len(answers),
        "prove_cost": prove_cost,
        "proves": proves,
        "nodes": nodes,
        "timings": {name: round(value, 4) for name, value in timings.items()},
    })
    result.tables.append(format_table(
        f"Engine throughput, {nodes}-node closure ({len(facts)} edges)",
        ["operation", "wall seconds"],
        [[name, f"{value:.4f}"] for name, value in timings.items()],
        footer=f"{path_facts} path facts; prove cost {prove_cost:g} "
               f"x {proves} proves",
    ))
    result.check(
        "semi-naive and naive fixpoints agree (differential oracle)",
        set(seminaive) == set(naive),
    )
    result.check(
        "top-down succeeds iff the model contains the goal",
        answer.proved and goal in seminaive,
    )
    result.check(
        "every reachable target enumerated exactly once",
        len(answers) == len({a.substitution for a in answers})
        and len(answers) == nodes - 1,
    )
    result.check(
        "prove cost is positive and reproducible across runs",
        prove_cost > 0
        and engine.prove(goal, facts).trace.cost == prove_cost,
    )
    return result


# ----------------------------------------------------------------------
# QS1: QSQN nets vs. SLD vs. bottom-up on goal-directed workloads
# ----------------------------------------------------------------------

def experiment_qsqn(
    nodes: int = 48, proves: int = 100
) -> ExperimentResult:
    """Goal-directed set-at-a-time evaluation against both baselines.

    Two workloads where the evaluation strategies genuinely differ: a
    long transitive-closure chain (deep recursion, one ground goal)
    and the same-generation tree (quadratically many derivable pairs).
    The leg times repeated QSQN proves against the SLD engine and the
    bottom-up fixpoint, cross-checks all three answer sets (the
    three-way oracle of the verify subsystem, inlined), and records
    the machine-independent costs; wall time is the QSQN speed trend.
    """
    from ..datalog.bottomup import BottomUpEngine
    from ..datalog.engine import TopDownEngine
    from ..datalog.qsqn import QSQNEngine
    from ..datalog.terms import Atom
    from ..workloads.hostile import same_generation_program

    result = ExperimentResult("QS1: QSQN three-way throughput (qsqn leg)")
    rules = parse_program("""
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- edge(X, Z), path(Z, Y).
    """)
    facts = Database()
    for index in range(nodes - 1):
        facts.add(Atom("edge", [f"n{index:03d}", f"n{index + 1:03d}"]))
    for index in range(0, nodes - 5, 5):
        facts.add(Atom("edge", [f"n{index:03d}", f"n{index + 5:03d}"]))

    timings: Dict[str, float] = {}
    qsqn = QSQNEngine(rules)
    top_down = TopDownEngine(rules, max_depth=4 * nodes)
    bottom_up = BottomUpEngine(rules)

    goal = parse_query(f"path(n000, n{nodes - 1:03d})")
    # The first prove drains the net and pays the whole billed cost;
    # warm proves serve from the tabled answer relations for free.
    qsqn_prove_cost = qsqn.prove(goal, facts).trace.cost
    start = time.perf_counter()
    for _ in range(proves):
        answer = qsqn.prove(goal, facts)
    timings["qsqn_proves"] = time.perf_counter() - start

    open_goal = parse_query("path(n000, X)")
    start = time.perf_counter()
    qsqn_answers = {
        open_goal.substitute(a.substitution)
        for a in qsqn.answers(open_goal, facts)
    }
    timings["qsqn_answers"] = time.perf_counter() - start

    start = time.perf_counter()
    td_answers = {
        open_goal.substitute(a.substitution)
        for a in top_down.answers(open_goal, facts)
    }
    timings["topdown_answers"] = time.perf_counter() - start

    start = time.perf_counter()
    bu_answers = {
        open_goal.substitute(s)
        for s in bottom_up.answers(open_goal, facts)
    }
    timings["bottomup_answers"] = time.perf_counter() - start

    sg_rules, sg_facts, _ = same_generation_program(seed=0, depth=3,
                                                    fanout=3)
    sg_base = parse_program("\n".join(sg_rules))
    sg_db = Database.from_program("\n".join(sg_facts))
    sg_query = parse_query("sg(X, Y)?")
    start = time.perf_counter()
    sg_pairs = {
        sg_query.substitute(a.substitution)
        for a in QSQNEngine(sg_base).answers(sg_query, sg_db)
    }
    timings["qsqn_same_generation"] = time.perf_counter() - start
    sg_model = {
        sg_query.substitute(s)
        for s in BottomUpEngine(sg_base).answers(sg_query, sg_db)
    }

    result.data.update({
        "answers": len(qsqn_answers),
        "qsqn_prove_cost": qsqn_prove_cost,
        "sg_pairs": len(sg_pairs),
        "proves": proves,
        "nodes": nodes,
        "timings": {name: round(value, 4) for name, value in timings.items()},
    })
    result.tables.append(format_table(
        f"QSQN three-way, {nodes}-node closure ({len(facts)} edges)",
        ["operation", "wall seconds"],
        [[name, f"{value:.4f}"] for name, value in timings.items()],
        footer=f"{len(qsqn_answers)} answers; QSQN prove cost "
               f"{qsqn_prove_cost:g} x {proves} proves; "
               f"{len(sg_pairs)} same-generation pairs",
    ))
    result.check(
        "three engines agree on the open transitive-closure answer set",
        qsqn_answers == td_answers == bu_answers,
    )
    result.check(
        "QSQN same-generation pairs equal the bottom-up model",
        sg_pairs == sg_model,
    )
    result.check(
        "QSQN cold prove cost is positive and reproducible across runs",
        qsqn_prove_cost > 0
        and QSQNEngine(rules).prove(goal, facts).trace.cost
        == qsqn_prove_cost,
    )
    result.check(
        "warm proves stay proved and bill nothing extra",
        answer.proved and answer.trace.cost == 0.0,
    )
    return result


# ----------------------------------------------------------------------
# FED1: storage backends — memory vs SQLite vs federated (calm / faulty)
# ----------------------------------------------------------------------

def experiment_federation(
    nodes: int = 48,
    queries: int = 120,
    seed: int = 7,
    shards: int = 3,
    fault_rate: float = 0.25,
    timeout_rate: float = 0.05,
) -> ExperimentResult:
    """Storage backends head-to-head on a transitive-closure workload.

    The same chain-with-shortcuts knowledge base is answered through
    the in-memory :class:`Database`, the SQLite backend, a *calm*
    federated store (no faults), and a *faulty* federated store with
    replicas and hedged reads.  The first three must be byte-identical
    (same answers in the same enumeration order, same prove cost); the
    faulty leg exercises degrade-to-partial: every answer it yields is
    checked against the complete set, and its partial/dark/hedge/billed
    telemetry — deterministic in the seed — is the trajectory metric.
    """
    from ..datalog.engine import TopDownEngine
    from ..datalog.terms import Atom
    from ..storage.federation import FederatedStore
    from ..storage.sqlite import SQLiteFactStore

    result = ExperimentResult(
        "FED1: storage backends (memory vs SQLite vs federated)"
    )
    rules = parse_program("""
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- edge(X, Z), path(Z, Y).
    """)
    facts: List[Atom] = []
    for index in range(nodes - 1):
        facts.append(Atom("edge", [f"n{index:03d}", f"n{index + 1:03d}"]))
    for index in range(0, nodes - 5, 5):
        facts.append(Atom("edge", [f"n{index:03d}", f"n{index + 5:03d}"]))
    for index in range(0, nodes, 3):
        facts.append(Atom("marked", [f"n{index:03d}"]))

    def faulty_store() -> FederatedStore:
        return FederatedStore(
            facts,
            shards=shards,
            seed=seed,
            fault=FaultSpec(fault_rate=fault_rate, timeout_rate=timeout_rate),
            replicas=True,
            # A faulty replica too, else hedging always rescues the
            # probe and the degrade-to-partial path never runs.
            replica_fault=FaultSpec(
                fault_rate=fault_rate, timeout_rate=timeout_rate
            ),
            retry_budget=1,
        )

    backends = [
        ("memory", Database(facts)),
        ("sqlite", SQLiteFactStore(facts)),
        ("federated-calm", FederatedStore(facts, shards=shards, seed=seed)),
    ]
    engine = TopDownEngine(rules, max_depth=4 * nodes)
    goal = parse_query(f"path(n000, n{nodes - 1:03d})")
    wildcard = parse_query("path(n000, X)")
    marked = parse_query("marked(X)")

    timings: Dict[str, float] = {}
    enumerations: Dict[str, Tuple] = {}
    prove_costs: Dict[str, float] = {}
    for name, store in backends:
        start = time.perf_counter()
        enumerations[name] = tuple(
            wildcard.substitute(answer.substitution)
            for answer in engine.answers(wildcard, store)
        )
        prove_costs[name] = engine.prove(goal, store).trace.cost
        timings[name] = time.perf_counter() - start
    complete_marked = {
        marked.substitute(answer.substitution)
        for answer in engine.answers(marked, backends[0][1])
    }

    def run_faulty() -> Tuple[Tuple[int, int, int, int, float], bool]:
        """One seeded faulty pass; returns (fingerprint, sound)."""
        store = faulty_store()
        partials = lost = 0
        sound = True
        for number in range(queries):
            store.begin_probe_window()
            if number % 2:
                got = {
                    marked.substitute(answer.substitution)
                    for answer in engine.answers(marked, store)
                }
                window = store.end_probe_window()
                if not got <= complete_marked:
                    sound = False
                if got != complete_marked:
                    lost += 1
                    if window.completeness.complete:
                        sound = False
            else:
                proved = engine.prove(goal, store).proved
                window = store.end_probe_window()
                if not proved:
                    lost += 1
                    if window.completeness.complete:
                        sound = False
            if window.completeness.partial:
                partials += 1
        fingerprint = (
            partials,
            lost,
            store.dark_probes,
            store.hedged_reads,
            round(store.billed_cost, 6),
        )
        return fingerprint, sound

    start = time.perf_counter()
    first, sound = run_faulty()
    timings["federated-faulty"] = time.perf_counter() - start
    second, _ = run_faulty()
    partials, lost, dark, hedged, billed = first

    result.data.update({
        "answers": len(enumerations["memory"]),
        "prove_cost": prove_costs["memory"],
        "faulty_queries": queries,
        "faulty_partials": partials,
        "faulty_lost": lost,
        "faulty_dark_probes": dark,
        "faulty_hedged_reads": hedged,
        "faulty_billed": billed,
        "timings": {name: round(value, 4) for name, value in timings.items()},
    })
    result.tables.append(format_table(
        f"Backends over {len(facts)} facts, {nodes}-node closure",
        ["backend", "answers", "prove cost", "wall seconds"],
        [[name, len(enumerations[name]), f"{prove_costs[name]:g}",
          f"{timings[name]:.4f}"] for name, _ in backends]
        + [["federated-faulty", f"{partials} partial/{queries}",
            f"billed {billed:g}", f"{timings['federated-faulty']:.4f}"]],
        footer=f"faulty leg: {dark} dark probes, {hedged} hedged reads",
    ))
    result.check(
        "SQLite enumerates byte-identically to memory",
        enumerations["sqlite"] == enumerations["memory"],
    )
    result.check(
        "healthy federated enumerates byte-identically to memory",
        enumerations["federated-calm"] == enumerations["memory"],
    )
    result.check(
        "prove cost identical across healthy backends",
        len(set(prove_costs.values())) == 1,
    )
    result.check(
        "faulty federated answers stay sound (subset + honest verdicts)",
        sound,
    )
    result.check(
        "faults actually bit: at least one partial answer observed",
        partials > 0,
    )
    result.check(
        "faulty federated replay is byte-deterministic",
        first == second,
    )
    return result


# ----------------------------------------------------------------------
# XP1: experience warm-start — repeated forms converge with fewer samples
# ----------------------------------------------------------------------

def experiment_experience_warmstart(
    seeds: Sequence[int] = (7, 11, 23),
    contexts: int = 400,
    delta: float = 0.2,
) -> ExperimentResult:
    """Cross-session warm-start on the paper's university workload.

    Session one starts from the DBA's ``Θ₁`` and hill-climbs under the
    intended distribution; its settled outcome is contributed to an
    experience store.  Session two faces the *same form* and
    warm-starts from the store.  Measured per seed:

    * samples-to-convergence — the context number of the last climb
      (0 when the run never needs to climb): the cost of re-learning
      what a previous session already knew;
    * answer parity — the warm run must prove exactly the contexts the
      cold run proved (priors-only: warm-start changes no answers);
    * strategy parity — both sessions settle on the same strategy.

    The acceptance bar is the ISSUE's: ≥30% fewer samples to
    convergence on repeated forms, with byte-identical answers.
    """
    from ..experience import (
        ExperienceStore,
        form_profile,
        record_from_learner,
        warm_start,
    )

    graph = university.g_a()
    probs = university.intended_probabilities()
    rows: List[List[str]] = []
    reductions: List[float] = []
    parity = True
    strategy_parity = True
    warm_hits = True
    result = ExperimentResult("XP1: experience warm-start (university G_A)")

    for seed in seeds:
        distribution = IndependentDistribution(graph, probs)

        def run(initial: Optional[Strategy]) -> Tuple[PIB, List[bool], int]:
            learner = PIB(
                graph, delta=delta,
                initial_strategy=initial or university.theta_1(graph),
            )
            rng = random.Random(seed)
            proved: List[bool] = []
            for _ in range(contexts):
                proved.append(
                    learner.process(distribution.sample(rng)).succeeded
                )
            settled_at = (
                learner.history[-1].context_number if learner.history else 0
            )
            return learner, proved, settled_at

        cold, cold_proved, cold_settled = run(None)
        store = ExperienceStore()
        profile = form_profile(graph)
        record = record_from_learner(profile, "instructor/1", cold)
        assert record is not None
        store.add(record)
        warm = warm_start(store, profile, graph)
        warm_hits = warm_hits and warm is not None and warm.exact
        warm_learner, warm_proved, warm_settled = run(
            warm.strategy if warm is not None else None
        )
        parity = parity and warm_proved == cold_proved
        strategy_parity = strategy_parity and (
            warm_learner.strategy.arc_names() == cold.strategy.arc_names()
        )
        reduction = (
            1.0 - warm_settled / cold_settled if cold_settled else 1.0
        )
        reductions.append(reduction)
        rows.append([
            str(seed), str(cold_settled), str(warm_settled),
            f"{reduction:.0%}", str(cold.climbs), str(warm_learner.climbs),
        ])

    mean_reduction = sum(reductions) / len(reductions)
    result.data.update(
        seeds=list(seeds),
        contexts=contexts,
        mean_reduction=round(mean_reduction, 4),
        reductions=[round(r, 4) for r in reductions],
        answer_parity=parity,
        strategy_parity=strategy_parity,
    )
    result.tables.append(format_table(
        "samples to convergence, cold vs warm-started",
        ["seed", "cold settles at", "warm settles at", "reduction",
         "cold climbs", "warm climbs"],
        rows,
        footer=f"mean samples-to-convergence reduction: {mean_reduction:.0%}",
    ))
    result.check(
        "warm-start always finds the prior session's record (exact hit)",
        warm_hits,
    )
    result.check(
        "priors only: warm run proves exactly the cold run's contexts",
        parity,
    )
    result.check(
        "both sessions settle on the same strategy",
        strategy_parity,
    )
    result.check(
        ">=30% fewer samples to convergence on the repeated form",
        mean_reduction >= 0.30,
    )
    return result

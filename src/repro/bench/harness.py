"""Experiment harness: structured results with printable reports.

Each experiment in :mod:`repro.bench.experiments` returns an
:class:`ExperimentResult`: machine-readable ``data`` (what the tests
assert on), rendered ``tables`` (what the bench logs show), and named
``checks`` — the paper-claim-vs-measurement verdicts that
``EXPERIMENTS.md`` summarizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from .reporting import banner

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """The outcome of one experiment run."""

    name: str
    data: Dict[str, Any] = field(default_factory=dict)
    tables: List[str] = field(default_factory=list)
    checks: List[Tuple[str, bool]] = field(default_factory=list)

    def check(self, description: str, passed: bool) -> bool:
        """Record one paper-claim verdict; returns ``passed`` through."""
        self.checks.append((description, bool(passed)))
        return passed

    @property
    def all_passed(self) -> bool:
        return all(passed for _, passed in self.checks)

    def report(self) -> str:
        """The full printable report."""
        parts: List[str] = [banner(self.name)]
        parts.extend(self.tables)
        if self.checks:
            parts.append("")
            for description, passed in self.checks:
                verdict = "PASS" if passed else "FAIL"
                parts.append(f"  [{verdict}] {description}")
        return "\n".join(parts)

    def print_report(self) -> "ExperimentResult":
        print(self.report())
        return self

"""Plain-text tables and series for the benchmark reports.

The paper has no result tables of its own (it is a theory paper), so
the harness prints tables in a uniform house style: a caption naming
the paper artifact being validated, aligned columns, and an explicit
``paper says / we measure`` footer where applicable.  Everything is
plain ASCII so ``tee``'d bench logs stay readable.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_series", "banner"]


def _render_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    caption: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    footer: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table with a caption and optional footer."""
    rendered: List[List[str]] = [
        [_render_cell(cell) for cell in row] for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "-" * (sum(widths) + 2 * (len(widths) - 1))
    parts = [caption, separator, line(headers), separator]
    parts.extend(line(row) for row in rendered)
    parts.append(separator)
    if footer:
        parts.append(footer)
    return "\n".join(parts)


def format_series(
    caption: str,
    x_label: str,
    y_labels: Sequence[str],
    points: Iterable[Sequence],
) -> str:
    """Render an x-vs-many-y series (the 'figure' analogue) as a table."""
    return format_table(caption, [x_label, *y_labels], points)


def banner(title: str) -> str:
    """A section banner for multi-table bench output."""
    bar = "=" * max(60, len(title) + 4)
    return f"\n{bar}\n  {title}\n{bar}"

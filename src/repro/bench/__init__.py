"""Benchmark harness: experiment implementations and reporting."""

from .harness import ExperimentResult
from .reporting import banner, format_series, format_table
from .stats import clopper_pearson, rate_with_interval
from .ablations import (
    experiment_ablation_adaptive,
    experiment_ablation_delta,
    experiment_ablation_sequential,
)
from .experiments import (
    experiment_comparison,
    experiment_learning_curve,
    experiment_distributed,
    experiment_distributed_faulty,
    experiment_drift,
    experiment_engine,
    experiment_experience_warmstart,
    experiment_federation,
    experiment_figure1,
    experiment_figure2_pib,
    experiment_lemma1,
    experiment_naf,
    experiment_overload,
    experiment_pib1_filter,
    experiment_serving,
    experiment_smith_vs_learned,
    experiment_theorem1,
    experiment_theorem2,
    experiment_theorem3,
    experiment_upsilon_scaling,
)

__all__ = [
    "ExperimentResult",
    "banner",
    "format_series",
    "format_table",
    "clopper_pearson",
    "rate_with_interval",
    "experiment_ablation_adaptive",
    "experiment_ablation_delta",
    "experiment_ablation_sequential",
    "experiment_comparison",
    "experiment_learning_curve",
    "experiment_distributed",
    "experiment_distributed_faulty",
    "experiment_drift",
    "experiment_engine",
    "experiment_experience_warmstart",
    "experiment_federation",
    "experiment_figure1",
    "experiment_figure2_pib",
    "experiment_lemma1",
    "experiment_naf",
    "experiment_overload",
    "experiment_pib1_filter",
    "experiment_serving",
    "experiment_smith_vs_learned",
    "experiment_theorem1",
    "experiment_theorem2",
    "experiment_theorem3",
    "experiment_upsilon_scaling",
]

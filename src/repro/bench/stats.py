"""Statistical helpers for the benchmark reports.

Measured rates (PIB's mistake frequency, PAO's success frequency) are
binomial estimates; the reports attach Clopper–Pearson exact confidence
intervals so "0 mistakes in 60 runs" is read correctly as "≤ 6% at 95%
confidence", not as "exactly zero".
"""

from __future__ import annotations

from typing import Tuple

from scipy import stats

__all__ = ["clopper_pearson", "rate_with_interval"]


def clopper_pearson(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """The exact (Clopper–Pearson) two-sided binomial interval."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    alpha = 1.0 - confidence
    if successes == 0:
        lower = 0.0
    else:
        lower = stats.beta.ppf(alpha / 2, successes, trials - successes + 1)
    if successes == trials:
        upper = 1.0
    else:
        upper = stats.beta.ppf(
            1 - alpha / 2, successes + 1, trials - successes
        )
    return float(lower), float(upper)


def rate_with_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> str:
    """``"0.050 [0.021, 0.103]"``-style rendering for report tables."""
    lower, upper = clopper_pearson(successes, trials, confidence)
    return f"{successes / trials:.3f} [{lower:.3f}, {upper:.3f}]"

"""Pluggable fact-storage backends behind one :class:`FactStore` contract.

The interface is imported eagerly; the concrete backends load lazily
(PEP 562) so that :mod:`repro.datalog.database` can subclass
:class:`FactStore` without a circular import — the federation backend
itself builds on :class:`~repro.datalog.database.Database` shards.
"""

from .config import STORE_BACKENDS, StoreConfig
from .interface import COMPLETE, Completeness, FactStore, next_store_id

__all__ = [
    "COMPLETE",
    "Completeness",
    "FactStore",
    "next_store_id",
    "SQLiteFactStore",
    "FederatedStore",
    "ShardSpec",
    "ProbeWindow",
    "StoreConfig",
    "STORE_BACKENDS",
]

_LAZY = {
    "SQLiteFactStore": ("repro.storage.sqlite", "SQLiteFactStore"),
    "FederatedStore": ("repro.storage.federation", "FederatedStore"),
    "ShardSpec": ("repro.storage.federation", "ShardSpec"),
    "ProbeWindow": ("repro.storage.federation", "ProbeWindow"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(__all__)

"""Typed configuration for the fact-storage backend selection.

The CLI's ``--store-*`` flag family used to be hand-rolled arg→kwarg
plumbing inside ``cli.py``; :class:`StoreConfig` is its typed home —
the same shape as the other config dataclasses
(:class:`~repro.serving.config.CacheConfig` and friends): a frozen,
validated value object plus one method that does the work.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StoreConfig", "STORE_BACKENDS"]

#: The fact-storage backends ``--store`` accepts.
STORE_BACKENDS = ("memory", "sqlite", "federated")


@dataclass(frozen=True)
class StoreConfig:
    """Which backend holds the ground facts, and how it is shaped.

    ``memory`` (the default) leaves fact loading to the session layer
    (a path coerces to a plain :class:`~repro.datalog.database.Database`);
    ``sqlite`` and ``federated`` build their stores here.  The
    federation knobs mirror
    :meth:`~repro.storage.federation.FederatedStore.from_program`.
    """

    backend: str = "memory"
    #: Shard count (federated only).
    shards: int = 3
    #: Fault-plan seed (federated only).
    seed: int = 0
    #: Per-shard transient fault rate (federated only).
    fault_rate: float = 0.0
    #: Per-shard timeout rate (federated only).
    timeout_rate: float = 0.0
    #: Give every shard a clean replica for hedged reads.
    replicas: bool = False

    def __post_init__(self) -> None:
        if self.backend not in STORE_BACKENDS:
            raise ValueError(
                f"unknown store backend {self.backend!r}; expected one "
                f"of {', '.join(STORE_BACKENDS)}"
            )
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError("fault_rate must be in [0, 1]")
        if not 0.0 <= self.timeout_rate <= 1.0:
            raise ValueError("timeout_rate must be in [0, 1]")

    def open(self, facts):
        """Materialise the configured backend for a ``--facts`` path.

        ``facts`` may be ``None`` (no database) or a path.  For the
        ``memory`` backend the path is returned untouched — the
        session layer coerces it — so a plain config stays on the
        byte-identical legacy loading path.
        """
        if facts is None or self.backend == "memory":
            return facts
        with open(facts, encoding="utf-8") as handle:
            text = handle.read()
        if self.backend == "sqlite":
            from .sqlite import SQLiteFactStore

            return SQLiteFactStore.from_program(text)
        from ..resilience.faults import FaultSpec
        from .federation import FederatedStore

        return FederatedStore.from_program(
            text,
            shards=self.shards,
            seed=self.seed,
            fault=FaultSpec(
                fault_rate=self.fault_rate,
                timeout_rate=self.timeout_rate,
            ),
            replicas=self.replicas,
        )

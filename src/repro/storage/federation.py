"""Federated fact storage: relations partitioned over faulty shards.

The paper's Section 5.2 setting — scans over horizontally distributed
segments with non-uniform access cost — is where learned strategies
beat static ones.  This backend makes that setting real *below* the
engine: a :class:`FederatedStore` partitions whole relations over
simulated remote shards, each with

* its own seeded fault stream (one :class:`~repro.resilience.faults.FaultPlan`
  per store, drawing per-shard keys, so replaying the same probe
  sequence reproduces the same injections exactly);
* a latency/cost model (every probe bills ``latency × multiplier``,
  timeouts billing :data:`~repro.resilience.faults.TIMEOUT_COST_MULTIPLIER`);
* an optional replica (mutations are applied to both copies) used for
  deterministic **hedged reads**: a probe hedges to the replica when
  the primary times out, exhausts its retry budget, or is shed by an
  open breaker;
* a per-shard :class:`~repro.resilience.circuit.CircuitBreaker`
  (attempt-event time, same machine as the executor's per-arc
  breakers) so a dark shard is probed at cooldown rate, not hammered.

**The hot path never raises.**  When primary and hedge both fail, the
probe *degrades to a partial answer*: retrieval yields nothing for
that relation, and the shard's name is recorded in the current *probe
window*.  The query processor brackets each query with
``begin_probe_window()`` / ``end_probe_window()`` (discovered by
``getattr``, so plain in-memory stores cost nothing) and threads the
resulting :class:`~repro.storage.interface.Completeness` verdict — and
the billed remote latency — into the answer.  Partial answers are
always a *subset* of the complete answer set: shards can hide facts,
never invent them.

Routing is by relation signature through ``crc32`` — stable across
processes and ``PYTHONHASHSEED`` — and all facts of a relation live on
one shard, so healthy-federated enumeration order is byte-identical to
the in-memory store's (relations in first-insertion order, facts in
insertion order within each relation).

Mutations and catalog reads (``signatures``/``count``/``relation``/
``__iter__``/``__contains__``) are *administrative*: they model the
control plane, which in this simulation is always reachable, and never
draw from the fault streams.  Only the probing entry points
(``retrieve``, ``facts_matching``, ``succeeds``) touch the simulated
network.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..datalog.database import Database
from ..datalog.terms import Atom, Substitution
from ..errors import DatalogError
from ..resilience.circuit import CircuitBreaker
from ..resilience.faults import FaultPlan, FaultSpec
from .interface import COMPLETE, Completeness, FactStore, next_store_id

__all__ = ["ShardSpec", "Shard", "ProbeWindow", "FederatedStore"]


@dataclass(frozen=True)
class ShardSpec:
    """Static description of one simulated remote shard.

    ``latency`` is the cost billed per primary probe attempt (the
    remote round-trip in paper cost units); ``replica_latency``
    defaults to 1.5× the primary's (a hedge is assumed to go to a
    farther copy).  ``fault`` governs the primary's injection stream;
    ``replica_fault`` the replica's (clean by default — an independent
    copy is the reason hedging helps).
    """

    name: str
    fault: FaultSpec = field(default_factory=FaultSpec)
    latency: float = 1.0
    replica: bool = False
    replica_fault: FaultSpec = field(default_factory=FaultSpec)
    replica_latency: Optional[float] = None

    @property
    def hedge_latency(self) -> float:
        if self.replica_latency is not None:
            return self.replica_latency
        return self.latency * 1.5


class Shard:
    """One live shard: spec + primary/replica stores + breaker."""

    def __init__(
        self,
        spec: ShardSpec,
        failure_threshold: int,
        cooldown: int,
    ):
        self.spec = spec
        self.name = spec.name
        self.primary = Database()
        self.replica: Optional[Database] = Database() if spec.replica else None
        self.breaker = CircuitBreaker(
            failure_threshold=failure_threshold,
            cooldown=cooldown,
            name=f"shard:{spec.name}",
        )


@dataclass(frozen=True)
class ProbeWindow:
    """What one query's probes saw: the collected completeness verdict,
    the billed remote latency, and how many probes ran."""

    completeness: Completeness = COMPLETE
    billed_cost: float = 0.0
    probes: int = 0


class FederatedStore(FactStore):
    """Relations partitioned over simulated faulty shards.

    ``shards`` is either a count (shards named ``shard0`` …, all using
    the shared ``fault``/``latency``/``replicas`` knobs, with
    ``per_shard`` overriding individual fault specs by name) or an
    explicit sequence of :class:`ShardSpec`.  ``seed`` drives every
    injection stream; two stores built with the same arguments and
    probed with the same sequence behave identically.

    ``retry_budget`` is the number of *extra* primary attempts after
    the first before hedging; ``failure_threshold``/``cooldown``
    configure the per-shard breakers.
    """

    def __init__(
        self,
        facts: Iterable[Atom] = (),
        *,
        shards: Union[int, Sequence[ShardSpec]] = 2,
        seed: int = 0,
        fault: Optional[FaultSpec] = None,
        per_shard: Optional[Mapping[str, FaultSpec]] = None,
        latency: float = 1.0,
        replicas: bool = False,
        replica_fault: Optional[FaultSpec] = None,
        replica_latency: Optional[float] = None,
        retry_budget: int = 1,
        failure_threshold: int = 3,
        cooldown: int = 4,
    ):
        if isinstance(shards, int):
            if shards < 1:
                raise ValueError("a federated store needs at least one shard")
            base = fault or FaultSpec()
            overrides = dict(per_shard or {})
            specs = [
                ShardSpec(
                    name=f"shard{i}",
                    fault=overrides.get(f"shard{i}", base),
                    latency=latency,
                    replica=replicas,
                    replica_fault=replica_fault or FaultSpec(),
                    replica_latency=replica_latency,
                )
                for i in range(shards)
            ]
        else:
            specs = list(shards)
            if not specs:
                raise ValueError("a federated store needs at least one shard")
        if retry_budget < 0:
            raise ValueError("retry_budget cannot be negative")
        self.specs: Tuple[ShardSpec, ...] = tuple(specs)
        self.seed = int(seed)
        self.retry_budget = retry_budget
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.shards: List[Shard] = [
            Shard(spec, failure_threshold, cooldown) for spec in self.specs
        ]
        #: One plan for the whole store; shard names (and
        #: ``name::replica``) are the draw keys, so each shard's
        #: injection stream is independent and seed-stable.
        self.plan = FaultPlan(
            seed=self.seed,
            per_arc={
                key: spec
                for shard in self.specs
                for key, spec in (
                    (shard.name, shard.fault),
                    (f"{shard.name}::replica", shard.replica_fault),
                )
            },
        )
        # -- catalog (administrative, never faults) --------------------
        self._relation_order: List[Tuple[str, int]] = []
        self._signatures: Set[Tuple[str, int]] = set()
        self._counts: Dict[Tuple[str, int], int] = {}
        self._size = 0
        self._id = next_store_id()
        self._generation = 0
        # -- telemetry -------------------------------------------------
        self.billed_cost = 0.0
        self.probes = 0
        self.dark_probes = 0
        self.hedged_reads = 0
        self._window = threading.local()
        for fact in facts:
            self.add(fact)

    # ------------------------------------------------------------------
    # Identity & coherence
    # ------------------------------------------------------------------

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def cache_key(self) -> Tuple[int, int]:
        return (self._id, self._generation)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def shard_for(self, signature: Tuple[str, int]) -> Shard:
        """The shard owning a relation — ``crc32`` keeps the placement
        stable across processes and hash seeds."""
        predicate, arity = signature
        digest = zlib.crc32(f"{predicate}/{arity}".encode())
        return self.shards[digest % len(self.shards)]

    def shard_names(self) -> Tuple[str, ...]:
        return tuple(shard.name for shard in self.shards)

    # ------------------------------------------------------------------
    # Probe windows
    # ------------------------------------------------------------------

    def begin_probe_window(self) -> None:
        """Start collecting missing shards / billed latency for one
        query (thread-local; the serving pool gives each worker its
        own window)."""
        window = self._window
        window.active = True
        window.missing: Set[str] = set()
        window.billed = 0.0
        window.probes = 0

    def probe_window_missing(self) -> frozenset:
        """The shards seen dark so far in the current window (peek)."""
        if not getattr(self._window, "active", False):
            return frozenset()
        return frozenset(self._window.missing)

    def end_probe_window(self) -> ProbeWindow:
        """Close the current window and return its collected verdict."""
        window = self._window
        if not getattr(window, "active", False):
            return ProbeWindow()
        window.active = False
        return ProbeWindow(
            completeness=Completeness.missing(window.missing),
            billed_cost=window.billed,
            probes=window.probes,
        )

    # ------------------------------------------------------------------
    # The probe path (faultable — never raises)
    # ------------------------------------------------------------------

    def _source_for(self, signature: Tuple[str, int]) -> Optional[Database]:
        """Resolve one probe to a live copy of the owning shard.

        Primary first (through its breaker, within the retry budget),
        then a single deterministic hedge to the replica.  Returns
        ``None`` — and records the shard as missing in the current
        probe window — when every copy is dark.
        """
        shard = self.shard_for(signature)
        billed = 0.0
        source: Optional[Database] = None
        for _attempt in range(self.retry_budget + 1):
            if not shard.breaker.allow():
                break
            injection = self.plan.draw(shard.name)
            billed += shard.spec.latency * injection.cost_multiplier
            if not injection.faulted:
                shard.breaker.record_success()
                source = shard.primary
                break
            shard.breaker.record_fault()
            if injection.timeout:
                break  # hedge immediately rather than retry into a stall
        if source is None and shard.replica is not None:
            self.hedged_reads += 1
            injection = self.plan.draw(f"{shard.name}::replica")
            billed += shard.spec.hedge_latency * injection.cost_multiplier
            if not injection.faulted:
                source = shard.replica
        self.billed_cost += billed
        self.probes += 1
        window = getattr(self._window, "active", False)
        if window:
            self._window.billed += billed
            self._window.probes += 1
        if source is None:
            self.dark_probes += 1
            if window:
                self._window.missing.add(shard.name)
        return source

    def retrieve(self, pattern: Atom) -> Iterator[Substitution]:
        source = self._source_for(pattern.signature)
        if source is None:
            return iter(())
        return source.retrieve(pattern)

    def facts_matching(self, pattern: Atom) -> Iterator[Atom]:
        source = self._source_for(pattern.signature)
        if source is None:
            return iter(())
        return source.facts_matching(pattern)

    def succeeds(self, pattern: Atom) -> bool:
        source = self._source_for(pattern.signature)
        if source is None:
            return False
        return source.succeeds(pattern)

    # ------------------------------------------------------------------
    # Mutation (administrative)
    # ------------------------------------------------------------------

    def add(self, fact: Atom) -> bool:
        if not isinstance(fact, Atom):
            raise TypeError("facts must be Atoms")
        if not fact.is_ground:
            raise DatalogError(f"facts must be ground, got {fact}")
        signature = fact.signature
        shard = self.shard_for(signature)
        if not shard.primary.add(fact):
            return False
        if shard.replica is not None:
            shard.replica.add(fact)
        if signature not in self._counts:
            self._relation_order.append(signature)
            self._counts[signature] = 0
        self._signatures.add(signature)
        self._counts[signature] += 1
        self._size += 1
        self._generation += 1
        return True

    def remove(self, fact: Atom) -> bool:
        signature = fact.signature
        shard = self.shard_for(signature)
        if not shard.primary.remove(fact):
            return False
        if shard.replica is not None:
            shard.replica.remove(fact)
        count = self._counts[signature] - 1
        self._counts[signature] = count
        if count == 0:
            self._signatures.discard(signature)
        self._size -= 1
        self._generation += 1
        return True

    # ------------------------------------------------------------------
    # Catalog (administrative)
    # ------------------------------------------------------------------

    def __contains__(self, fact: Atom) -> bool:
        if not isinstance(fact, Atom) or not fact.is_ground:
            return False
        return fact in self.shard_for(fact.signature).primary

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Atom]:
        for signature in self._relation_order:
            yield from self.shard_for(signature).primary.relation(*signature)

    def relation(self, predicate: str, arity: int) -> List[Atom]:
        return self.shard_for((predicate, arity)).primary.relation(
            predicate, arity
        )

    def count(self, predicate: str, arity: Optional[int] = None) -> int:
        if arity is not None:
            return self._counts.get((predicate, arity), 0)
        return sum(
            count
            for (name, _arity), count in self._counts.items()
            if name == predicate
        )

    def signatures(self) -> Set[Tuple[str, int]]:
        return self._signatures

    # ------------------------------------------------------------------
    # Whole-store operations
    # ------------------------------------------------------------------

    @classmethod
    def from_program(cls, text: str, **kwargs) -> "FederatedStore":
        from ..datalog.parser import parse_program

        store = cls(**kwargs)
        for rule in parse_program(text):
            if not rule.is_fact:
                raise DatalogError(f"not a fact: {rule}")
            store.add(rule.head)
        return store

    def copy(self) -> "FederatedStore":
        """An equivalent store: same topology, same seed, *fresh* fault
        streams and breakers, same facts in the same insertion order."""
        return FederatedStore(
            self,
            shards=self.specs,
            seed=self.seed,
            retry_budget=self.retry_budget,
            failure_threshold=self.failure_threshold,
            cooldown=self.cooldown,
        )

    def breaker_states(self) -> Dict[str, str]:
        """Shard name -> breaker state (for reports and tests)."""
        return {
            shard.name: shard.breaker.state.value for shard in self.shards
        }

    def summary(self) -> Dict[str, object]:
        """Probe/fault telemetry for reports and bench tables."""
        return {
            "shards": len(self.shards),
            "probes": self.probes,
            "dark_probes": self.dark_probes,
            "hedged_reads": self.hedged_reads,
            "billed_cost": self.billed_cost,
            "injections": self.plan.summary(),
            "breakers": self.breaker_states(),
        }

    def __repr__(self) -> str:
        return (
            f"FederatedStore({self._size} facts over "
            f"{len(self.shards)} shards)"
        )

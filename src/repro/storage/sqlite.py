"""A SQLite-backed :class:`~repro.storage.interface.FactStore`.

Each relation gets its own table (``r1``, ``r2``, …, mapped through a
python-side catalog since predicate names are not valid SQL
identifiers) with one TEXT column per argument position, a UNIQUE
index over the full row (duplicate-fact detection) and a secondary
index per argument column (the access-path analogue of the in-memory
store's per-argument hash indexes).

**Enumeration order.**  SQLite's implicit ``rowid`` is monotonically
assigned per insert, so ``ORDER BY rowid`` reproduces fact insertion
order exactly — including the removed-then-re-added-goes-last rule,
because a re-insert allocates a fresh, larger rowid.  Relation order
for ``__iter__`` is tracked python-side in first-insertion order.
Together these make every enumeration byte-identical to
:class:`~repro.datalog.database.Database` on the same mutation
history, which is what keeps the BENCH metrics backend-independent.

**Value encoding.**  :class:`~repro.datalog.terms.Constant` values may
be uninterpreted symbols *or* interpreted literals (``42`` and ``"42"``
are distinct constants).  Arguments are therefore stored as
``"<typename>:<repr>"`` strings — injective for every type the parser
produces — and decoded through a python-side table that remembers the
exact :class:`Constant` each encoding came from, so round-trips are
identity-exact even for exotic hashable values.

Matching semantics (bound positions, repeated variables) reuse the
same python matching loop as the in-memory store: SQL ``WHERE``
clauses on bound columns only *prune* the scan, exactly like
``Database._candidates`` picking the tightest index bucket.
"""

from __future__ import annotations

import sqlite3
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..datalog.terms import (
    EMPTY_SUBSTITUTION,
    Atom,
    Constant,
    Substitution,
    Variable,
)
from ..errors import DatalogError
from .interface import FactStore, next_store_id

__all__ = ["SQLiteFactStore"]


def _encode(constant: Constant) -> str:
    value = constant.value
    return f"{type(value).__name__}:{value!r}"


class SQLiteFactStore(FactStore):
    """Ground facts in SQLite, one indexed table per relation.

    ``path`` defaults to ``":memory:"``; pass a filename for an
    on-disk store.  The connection is private to the store and opened
    with ``check_same_thread=False`` guarded by SQLite's own
    serialized mode, matching the serving layer's thread-pool use.
    """

    def __init__(self, facts: Iterable[Atom] = (), path: str = ":memory:"):
        self._conn = sqlite3.connect(
            path, check_same_thread=False, isolation_level=None
        )
        self._conn.execute("PRAGMA synchronous=OFF")
        self._tables: Dict[Tuple[str, int], str] = {}
        #: Relation signatures in first-insertion order (``__iter__``).
        self._relation_order: List[Tuple[str, int]] = []
        self._signatures: Set[Tuple[str, int]] = set()
        self._counts: Dict[Tuple[str, int], int] = {}
        #: encoding -> the exact Constant it came from.
        self._constants: Dict[str, Constant] = {}
        self._size = 0
        self._id = next_store_id()
        self._generation = 0
        for fact in facts:
            self.add(fact)

    # ------------------------------------------------------------------
    # Identity & coherence
    # ------------------------------------------------------------------

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def cache_key(self) -> Tuple[int, int]:
        return (self._id, self._generation)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_program(cls, text: str) -> "SQLiteFactStore":
        """Build a store from Datalog source containing only facts."""
        from ..datalog.parser import parse_program

        store = cls()
        for rule in parse_program(text):
            if not rule.is_fact:
                raise DatalogError(f"not a fact: {rule}")
            store.add(rule.head)
        return store

    def copy(self) -> "SQLiteFactStore":
        """An independent in-memory copy, preserving enumeration order."""
        return SQLiteFactStore(self)

    def close(self) -> None:
        self._conn.close()

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------

    def _table_for(self, signature: Tuple[str, int]) -> str:
        table = self._tables.get(signature)
        if table is None:
            table = f"r{len(self._tables) + 1}"
            _predicate, arity = signature
            if arity:
                columns = ", ".join(f"c{i} TEXT" for i in range(arity))
                unique = ", ".join(f"c{i}" for i in range(arity))
            else:
                # SQL needs at least one column; arity-0 relations hold
                # a single sentinel row.
                columns, unique = "c0 TEXT", "c0"
            self._conn.execute(f"CREATE TABLE {table} ({columns})")
            self._conn.execute(
                f"CREATE UNIQUE INDEX {table}_uq ON {table} ({unique})"
            )
            for i in range(arity):
                self._conn.execute(
                    f"CREATE INDEX {table}_i{i} ON {table} (c{i})"
                )
            self._tables[signature] = table
            self._relation_order.append(signature)
        return table

    def _row_for(self, fact: Atom) -> Tuple[str, ...]:
        if not fact.args:
            return ("()",)
        row = []
        for arg in fact.args:
            encoded = _encode(arg)
            self._constants.setdefault(encoded, arg)
            row.append(encoded)
        return tuple(row)

    def _fact_from(self, predicate: str, row: Tuple[str, ...]) -> Atom:
        return Atom._make(
            predicate, tuple(self._constants[cell] for cell in row)
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, fact: Atom) -> bool:
        if not isinstance(fact, Atom):
            raise TypeError("facts must be Atoms")
        if not fact.is_ground:
            raise DatalogError(f"facts must be ground, got {fact}")
        signature = fact.signature
        table = self._table_for(signature)
        row = self._row_for(fact)
        placeholders = ", ".join("?" for _ in row)
        cursor = self._conn.execute(
            f"INSERT OR IGNORE INTO {table} VALUES ({placeholders})", row
        )
        if cursor.rowcount == 0:
            return False
        self._signatures.add(signature)
        self._counts[signature] = self._counts.get(signature, 0) + 1
        self._size += 1
        self._generation += 1
        return True

    def remove(self, fact: Atom) -> bool:
        signature = fact.signature
        table = self._tables.get(signature)
        if table is None or not fact.is_ground:
            return False
        row = self._row_for(fact)
        where = " AND ".join(f"c{i} = ?" for i in range(len(row)))
        cursor = self._conn.execute(
            f"DELETE FROM {table} WHERE {where}", row
        )
        if cursor.rowcount == 0:
            return False
        count = self._counts[signature] - 1
        self._counts[signature] = count
        if count == 0:
            self._signatures.discard(signature)
        self._size -= 1
        self._generation += 1
        return True

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------

    def __contains__(self, fact: Atom) -> bool:
        if not isinstance(fact, Atom) or not fact.is_ground:
            return False
        table = self._tables.get(fact.signature)
        if table is None:
            return False
        row = self._row_for(fact)
        where = " AND ".join(f"c{i} = ?" for i in range(len(row)))
        cursor = self._conn.execute(
            f"SELECT 1 FROM {table} WHERE {where} LIMIT 1", row
        )
        return cursor.fetchone() is not None

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Atom]:
        for signature in self._relation_order:
            yield from self._scan(signature)

    def _scan(
        self, signature: Tuple[str, int], pattern: Optional[Atom] = None
    ) -> Iterator[Atom]:
        """Facts of one relation in insertion (rowid) order, pruned by
        the bound positions of ``pattern`` when given."""
        table = self._tables.get(signature)
        if table is None:
            return
        predicate, arity = signature
        clauses: List[str] = []
        params: List[str] = []
        if pattern is not None:
            for i, arg in enumerate(pattern.args):
                if type(arg) is not Variable:
                    clauses.append(f"c{i} = ?")
                    params.append(_encode(arg))
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        columns = ", ".join(f"c{i}" for i in range(max(arity, 1)))
        cursor = self._conn.execute(
            f"SELECT {columns} FROM {table}{where} ORDER BY rowid", params
        )
        if arity == 0:
            for _row in cursor:
                yield Atom._make(predicate, ())
            return
        for row in cursor:
            yield self._fact_from(predicate, row)

    def relation(self, predicate: str, arity: int) -> List[Atom]:
        return list(self._scan((predicate, arity)))

    def count(self, predicate: str, arity: Optional[int] = None) -> int:
        if arity is not None:
            return self._counts.get((predicate, arity), 0)
        return sum(
            count
            for (name, _arity), count in self._counts.items()
            if name == predicate
        )

    def signatures(self) -> Set[Tuple[str, int]]:
        return self._signatures

    def retrieve(self, pattern: Atom) -> Iterator[Substitution]:
        if pattern.is_ground:
            if pattern in self:
                yield EMPTY_SUBSTITUTION
            return
        pattern_args = pattern.args
        for fact in self._scan(pattern.signature, pattern):
            bindings = {}
            for p_arg, f_arg in zip(pattern_args, fact.args):
                if type(p_arg) is Variable:
                    bound = bindings.get(p_arg)
                    if bound is None:
                        bindings[p_arg] = f_arg
                    elif bound != f_arg:
                        break
                elif p_arg != f_arg:
                    break
            else:
                yield Substitution._resolved(bindings)

    def facts_matching(self, pattern: Atom) -> Iterator[Atom]:
        if pattern.is_ground:
            if pattern in self:
                yield pattern
            return
        pattern_args = pattern.args
        for fact in self._scan(pattern.signature, pattern):
            bindings = {}
            for p_arg, f_arg in zip(pattern_args, fact.args):
                if type(p_arg) is Variable:
                    bound = bindings.get(p_arg)
                    if bound is None:
                        bindings[p_arg] = f_arg
                    elif bound != f_arg:
                        break
                elif p_arg != f_arg:
                    break
            else:
                yield fact

    def succeeds(self, pattern: Atom) -> bool:
        for _ in self.retrieve(pattern):
            return True
        return False

    def __repr__(self) -> str:
        return f"SQLiteFactStore({self._size} facts)"

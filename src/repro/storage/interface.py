"""The ``FactStore`` contract: what every fact backend must provide.

The paper's unit operation is the *attempted retrieval*; everything
above the storage layer — the inference-graph contexts, the engines,
the serving caches — only ever touches a database through a small
probing-and-mutation surface.  This module names that surface so it
can be implemented by more than one backend:

* :class:`repro.datalog.database.Database` — the original in-memory
  dict-indexed store (the reference implementation of the contract);
* :class:`repro.storage.sqlite.SQLiteFactStore` — the same facts in
  SQLite tables, one per relation, with per-argument-column indexes;
* :class:`repro.storage.federation.FederatedStore` — relations
  partitioned over simulated remote shards with per-shard fault
  plans, latency, replicas and circuit breakers.

**The enumeration-order guarantee.**  Every conforming backend must
enumerate ``retrieve``/``facts_matching``/``__iter__`` results in
*fact insertion order* (relations in first-insertion order for
``__iter__``), never in hash order or backend-internal order.  This is
what makes answer enumeration, billed proof costs, and every BENCH
metric byte-identical across backends and ``PYTHONHASHSEED`` values.
A removed-then-re-added fact enumerates at the *end*, in all backends.

**Partial answers.**  A backend whose physical sources can be
unavailable (today: the federated store) reports *what it could not
see* through a typed :class:`Completeness` verdict instead of raising:
retrieval yields whatever the live sources hold, and the probe-window
protocol (``begin_probe_window`` / ``end_probe_window``, optional —
discovered by ``getattr``) lets the query processor collect the
missing-source set and billed remote latency for one query.  Backends
that are always complete simply never grow the protocol, and callers
treat them as trivially :data:`COMPLETE`.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

if TYPE_CHECKING:
    from ..datalog.terms import Atom, Substitution

__all__ = ["Completeness", "COMPLETE", "FactStore", "next_store_id"]

#: Process-wide store identities, shared by *all* backends, so cache
#: keys from two different stores can never collide even at equal
#: generations (and regardless of backend type).
_next_store_id = itertools.count(1)


def next_store_id() -> int:
    """The next process-wide unique store identity."""
    return next(_next_store_id)


@dataclass(frozen=True)
class Completeness:
    """How much of the fact base a query's retrievals actually saw.

    ``complete`` means every probed relation was served by a live
    source: the answer (including a "no") reflects the whole stored
    fact set.  A *partial* verdict carries the sorted names of the
    shards that stayed dark past their retry/hedge budget — the
    answer is a sound subset of the complete answer (facts are only
    ever hidden, never invented), but a "no" is not trustworthy.
    """

    complete: bool = True
    missing_shards: Tuple[str, ...] = ()

    def __post_init__(self):
        if self.complete and self.missing_shards:
            raise ValueError("a complete verdict cannot name missing shards")

    @property
    def partial(self) -> bool:
        return not self.complete

    @classmethod
    def missing(cls, shards: Iterable[str]) -> "Completeness":
        """A partial verdict over the given dark shard names."""
        names = tuple(sorted(set(shards)))
        if not names:
            return COMPLETE
        return cls(complete=False, missing_shards=names)

    def describe(self) -> str:
        if self.complete:
            return "complete"
        return "partial (missing: " + ", ".join(self.missing_shards) + ")"


#: The shared trivially-complete verdict (every in-memory answer).
COMPLETE = Completeness()


class FactStore(ABC):
    """Abstract base for ground-fact storage backends.

    Subclasses must preserve the module-level contract above —
    especially the enumeration-order guarantee — and bump
    :attr:`generation` on every *effective* mutation, since the
    serving caches key on ``cache_key = (identity, generation)``.
    """

    # -- identity & coherence ------------------------------------------

    @property
    @abstractmethod
    def generation(self) -> int:
        """Mutation counter: bumped by every effective add/remove."""

    @property
    @abstractmethod
    def cache_key(self) -> Tuple[int, int]:
        """``(identity, generation)`` — the token cache entries rely on."""

    # -- mutation ------------------------------------------------------

    @abstractmethod
    def add(self, fact: "Atom") -> bool:
        """Add a ground fact; ``False`` when already present."""

    @abstractmethod
    def remove(self, fact: "Atom") -> bool:
        """Remove a fact; ``False`` when it was absent."""

    def update(self, facts: Iterable["Atom"]) -> int:
        """Add many facts; returns how many were new."""
        return sum(1 for fact in facts if self.add(fact))

    # -- retrieval -----------------------------------------------------

    @abstractmethod
    def retrieve(self, pattern: "Atom") -> Iterator["Substitution"]:
        """One substitution per matching fact, in insertion order."""

    @abstractmethod
    def facts_matching(self, pattern: "Atom") -> Iterator["Atom"]:
        """The stored facts matching ``pattern``, in insertion order."""

    def succeeds(self, pattern: "Atom") -> bool:
        """Whether at least one fact matches ``pattern`` (satisficing)."""
        for _ in self.retrieve(pattern):
            return True
        return False

    # -- catalog -------------------------------------------------------

    @abstractmethod
    def signatures(self) -> Set[Tuple[str, int]]:
        """All relation signatures with at least one fact."""

    @abstractmethod
    def relation(self, predicate: str, arity: int) -> List["Atom"]:
        """All facts of one relation, in insertion order."""

    @abstractmethod
    def count(self, predicate: str, arity: Optional[int] = None) -> int:
        """Fact count for a relation (all arities when ``arity=None``)."""

    # -- whole-store operations ----------------------------------------

    @abstractmethod
    def copy(self) -> "FactStore":
        """An independent same-backend copy of the store."""

    @abstractmethod
    def __contains__(self, fact: "Atom") -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def __iter__(self) -> Iterator["Atom"]: ...

"""Command-line interface: a thin adapter over the session layer.

Seven subcommands::

    python -m repro query  --rules kb.dl --facts db.dl "instructor(manolis)?"
    python -m repro learn  --rules kb.dl --facts db.dl --queries stream.txt
    python -m repro trace  --rules kb.dl --facts db.dl --queries stream.txt \
                           --out trace.jsonl
    python -m repro serve  --rules kb.dl --facts db.dl --queries batch.txt \
                           --workers 4 --cache
    python -m repro stats  trace.jsonl
    python -m repro optimal --rules kb.dl --form instructor/b \
                            --probs D_prof=0.15,D_grad=0.6
    python -m repro verify --seeds 50 --profile pib

* ``query`` answers one query and prints the bindings, the charged
  cost, and the attempted retrievals; ``--engine`` picks the
  evaluation strategy (``topdown`` SLD, ``bottomup`` semi-naive, or
  ``qsqn`` query-subquery nets);
* ``learn`` replays a query stream (one query per line) through the
  self-optimizing processor and prints the per-form learning report;
* ``trace`` is ``learn`` with the observability layer enabled: it
  exports the full JSONL event trace (spans, attempts, retries,
  breaker transitions, Equation 6 margins, climbs) and prints the
  metrics snapshot;
* ``serve`` answers a batch of queries through the serving layer:
  work sharded by query form across ``--workers`` threads, fronted by
  the two-tier cache (``--cache`` or explicit capacities), with the
  cache hit/miss counters printed at the end;
* ``stats`` summarizes a previously exported JSONL trace — event
  volumes, billed vs settled cost, retries, climbs, breaker opens,
  cache traffic;
* ``optimal`` compiles a query form's inference graph and prints
  ``Υ_AOT``'s optimal strategy for a given probability vector;
* ``verify`` runs the deterministic-simulation / differential-oracle
  battery (:mod:`repro.verify`) over seeded random worlds, per
  profile (``engine``, ``qsqn``, ``pib``, ``pao``, ``serving``,
  ``chaos``, ``overload``, ``federation``, ``experience`` or ``all``);
  ``--replay world.json``
  re-checks one saved
  :class:`~repro.verify.worldgen.WorldSpec`, ``--artifacts DIR``
  saves failing specs for replay, and ``--coverage`` runs the test
  suite under ``coverage`` with the repo's fail-under floor.

All file formats are plain Datalog (the ``--facts`` file holds ground
facts only); traces are JSON Lines.

Every flag family (session, cache, admission, store, experience) is a
declarative :class:`~repro.cliflags.FlagAdapter`: the flags and the
namespace→typed-config fold live together in :mod:`repro.cliflags`,
every subcommand builds its configs the same way, and everything runs
through :func:`repro.open_session` — the CLI owns no replay or policy
logic of its own.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from .cliflags import (
    ADMISSION_FLAGS,
    CACHE_FLAGS,
    EXPERIENCE_FLAGS,
    SESSION_FLAGS,
    STORE_FLAGS,
)
from .datalog.database import Database
from .datalog.parser import parse_program, parse_query
from .datalog.rules import QueryForm
from .graphs.builder import build_inference_graph
from .errors import ReproError
from .observability import (
    LATENCY_BUCKETS,
    Histogram,
    Tracer,
    read_trace,
    summarize_trace,
)
from .optimal.upsilon import upsilon_aot
from .serving import ServingConfig, open_session
from .serving.admission import coerce_requests
from .strategies.engines import ENGINE_NAMES, make_engine

__all__ = ["main", "build_parser"]


def _load_rules(path: str):
    with open(path, encoding="utf-8") as handle:
        return parse_program(handle.read())


def _load_facts(path: str) -> Database:
    with open(path, encoding="utf-8") as handle:
        return Database.from_program(handle.read())


def _parse_probs(spec: str) -> Dict[str, float]:
    probs: Dict[str, float] = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        name, _, value = item.partition("=")
        if not value:
            raise ValueError(f"bad probability entry {item!r}; use arc=p")
        probs[name.strip()] = float(value)
    return probs


def _parse_form(spec: str) -> QueryForm:
    predicate, _, pattern = spec.partition("/")
    if not pattern:
        raise ValueError(f"bad form {spec!r}; use predicate/pattern, e.g. p/bf")
    return QueryForm(predicate, pattern)


def cmd_query(args: argparse.Namespace, out) -> int:
    rules = _load_rules(args.rules)
    facts = _load_facts(args.facts)
    engine = make_engine(args.engine, rules, max_depth=args.max_depth)
    query = parse_query(args.query)
    answer = engine.prove(query, facts)
    print("yes" if answer.proved else "no", file=out)
    if answer.proved and len(answer.substitution):
        for variable in sorted(answer.substitution, key=lambda v: v.name):
            print(f"  {variable} = {answer.substitution[variable]}", file=out)
    print(f"cost: {answer.trace.cost:g}", file=out)
    if args.trace:
        for event in answer.trace.retrievals:
            status = "hit" if event.succeeded else "miss"
            print(f"  retrieval {event.goal}: {status}", file=out)
    return 0 if answer.proved else 1


def _echo_progress(args: argparse.Namespace, out):
    """The ``on_answer`` callback echoing climbs and degradations."""

    def on_answer(count, text, answer):
        if args.quiet:
            return
        if answer.degraded:
            print(f"[degraded query #{count}: {answer.incident}]", file=out)
        if answer.climbed:
            print(f"[climb after query #{count}: {text}]", file=out)

    return on_answer


def _print_stream_summary(report, out) -> None:
    print(f"processed {report.queries} queries, mean cost "
          f"{report.mean_cost:.3f}", file=out)
    if report.degraded:
        print(f"degraded (fallback) answers: {report.degraded}", file=out)


def _print_form_report(summary, out) -> None:
    for form, info in sorted(summary.items()):
        print(f"form {form}:", file=out)
        for key, value in info.items():
            print(f"  {key}: {value}", file=out)


def cmd_learn(args: argparse.Namespace, out) -> int:
    with open_session(
        args.rules, args.facts, config=SESSION_FLAGS.build(args)
    ) as session:
        report = session.learn_from_stream(
            args.queries, on_answer=_echo_progress(args, out)
        )
        if report.queries == 0:
            print("no queries in the stream", file=out)
            return 1
        _print_stream_summary(report, out)
        _print_form_report(session.processor.report(), out)
    return 0


def cmd_trace(args: argparse.Namespace, out) -> int:
    tracer = Tracer(margin_events=not args.no_margins)
    with open_session(
        args.rules, args.facts,
        config=SESSION_FLAGS.build(args), recorder=tracer,
    ) as session:
        report = session.learn_from_stream(
            args.queries, on_answer=_echo_progress(args, out)
        )
        if report.queries == 0:
            print("no queries in the stream", file=out)
            return 1
        written = tracer.export_jsonl(args.out)
        _print_stream_summary(report, out)
        print(f"wrote {written} events to {args.out}", file=out)
        metrics = tracer.metrics.snapshot()
        print("counters:", file=out)
        for name, value in metrics["counters"].items():
            print(f"  {name}: {value}", file=out)
        print("histograms:", file=out)
        for name, stats in metrics["histograms"].items():
            print(f"  {name}: count={stats['count']} "
                  f"total={stats['total']:g} mean={stats['mean']:g}",
                  file=out)
    return 0


def _load_query_lines(path: str) -> List[str]:
    """The stream format (one query per line, ``%`` comments) as a list."""
    queries: List[str] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            text = line.split("%", 1)[0].strip()
            if text:
                queries.append(text)
    return queries


def cmd_serve(args: argparse.Namespace, out) -> int:
    queries = _load_query_lines(args.queries)
    if not queries:
        print("no queries in the stream", file=out)
        return 1
    admission = ADMISSION_FLAGS.build(args)
    store = STORE_FLAGS.build(args).open(args.facts)
    with open_session(
        args.rules, store,
        config=SESSION_FLAGS.build(args),
        cache=CACHE_FLAGS.build(args),
        serving=ServingConfig(workers=args.workers, admission=admission),
    ) as session:
        for pass_number in range(1, args.repeat + 1):
            if admission is not None:
                parsed = [parse_query(text) for text in queries]
                requests = coerce_requests(parsed, tenants=args.tenants)
                outcomes = session.run_requests(requests)
                served = [o for o in outcomes if o.served]
                answers = [o.answer for o in served]
                line = (f"pass {pass_number}: {len(outcomes)} requests, "
                        f"served {len(served)}, "
                        f"rejected {sum(o.rejected for o in outcomes)}, "
                        f"degraded {sum(o.degraded for o in outcomes)}")
                partial = sum(
                    1 for o in outcomes
                    if o.completeness is not None and o.completeness.partial
                )
                if partial:
                    line += f", partial {partial}"
                if answers:
                    total_cost = sum(answer.cost for answer in answers)
                    line += f", mean cost {total_cost / len(answers):.3f}"
                print(line, file=out)
                continue
            answers = session.query_batch(queries)
            total_cost = sum(answer.cost for answer in answers)
            cached = sum(1 for answer in answers if answer.cached)
            degraded = sum(1 for answer in answers if answer.degraded)
            partial = sum(
                1 for answer in answers if answer.completeness.partial
            )
            line = (f"pass {pass_number}: {len(answers)} queries, "
                    f"mean cost {total_cost / len(answers):.3f}, "
                    f"cached {cached}")
            if degraded:
                line += f", degraded {degraded}"
            if partial:
                line += f", partial {partial}"
            print(line, file=out)
        snapshot = session.server.snapshot()
        print(f"workers: {snapshot['workers']}", file=out)
        print(f"forms: {snapshot['forms']}", file=out)
        if hasattr(store, "shard_names"):
            fed = store.summary()
            print(f"federation: shards={fed['shards']} "
                  f"probes={fed['probes']} dark={fed['dark_probes']} "
                  f"hedged={fed['hedged_reads']} "
                  f"billed={fed['billed_cost']:g}", file=out)
        for tier in ("answer_cache", "subgoal_memo"):
            stats = snapshot.get(tier)
            if stats is None:
                continue
            print(f"{tier.replace('_', ' ')}: hits={stats['hits']} "
                  f"misses={stats['misses']} "
                  f"evictions={stats['evictions']} "
                  f"(hit rate {stats['hit_rate']:.1%})", file=out)
        if session.processor.experience_store is not None:
            session.contribute_experience()
            exp = session.processor.report()["experience"]
            print(f"experience: records={exp['records']} "
                  f"warmstarts={exp['warmstarts']} "
                  f"writes={exp['writes']}"
                  + (" (recovered from corrupt store)"
                     if exp["recovered"] else ""), file=out)
        if admission is not None:
            info = snapshot["admission"]
            print(f"health: {info['health']['state']}", file=out)
            shed = info["shedder"]["shed"]
            shed_text = " ".join(f"{name}={count}"
                                 for name, count in shed.items()) or "none"
            print(f"shed ({info['shedder']['policy']}): {shed_text}",
                  file=out)
            latency = Histogram("request_latency", buckets=LATENCY_BUCKETS)
            for outcome in outcomes:
                if outcome.served:
                    latency.observe(outcome.latency)
            if latency.count:
                print("latency (cost units): "
                      f"p50={latency.quantile(0.5):.1f} "
                      f"p95={latency.quantile(0.95):.1f} "
                      f"p99={latency.quantile(0.99):.1f} "
                      f"max={latency.max:.1f}", file=out)
        _print_form_report(session.processor.report(), out)
    return 0


def cmd_stats(args: argparse.Namespace, out) -> int:
    summary = summarize_trace(read_trace(args.trace))
    print(f"trace: {args.trace}", file=out)
    print(f"events: {summary['events']}", file=out)
    for type_, count in summary["event_counts"].items():
        print(f"  {type_}: {count}", file=out)
    print(f"queries: {summary['queries']} "
          f"(succeeded {summary['succeeded']}, "
          f"degraded {summary['degraded']})", file=out)
    print(f"billed cost: {summary['billed_cost']:g}", file=out)
    print(f"settled cost: {summary['settled_cost']:g}", file=out)
    print(f"backoff cost: {summary['backoff_cost']:g}", file=out)
    print(f"retries: {summary['retries']}", file=out)
    print(f"breaker opens: {summary['breaker_opens']}", file=out)
    for name, tier in summary.get("caches", {}).items():
        print(f"cache {name}: hits={tier['hits']} "
              f"misses={tier['misses']} evictions={tier['evictions']}",
              file=out)
    print(f"climbs: {summary['climbs']}", file=out)
    for climb in summary["climb_steps"]:
        print(f"  step {climb['step']} after context "
              f"{climb['context_number']}: {climb['transformation']} "
              f"(|S|={climb['samples']})", file=out)
    admission = summary.get("admission")
    if admission:
        print(f"admission: served={admission['served']} "
              f"rejected={admission['rejected']} "
              f"degraded={admission['degraded']}", file=out)
        for reason, count in admission["shed_reasons"].items():
            print(f"  shed {reason}: {count}", file=out)
        latency = admission.get("latency")
        if latency:
            print(f"  latency: p50={latency['p50']:.1f} "
                  f"p95={latency['p95']:.1f} p99={latency['p99']:.1f} "
                  f"max={latency['max']:.1f}", file=out)
        for edge in admission["health_transitions"]:
            print(f"  health {edge}", file=out)
    print(f"drift alarms: {summary['drift_alarms']}", file=out)
    print(f"epoch resets: {summary['epoch_resets']}", file=out)
    print(f"rollbacks: {summary['rollbacks']}", file=out)
    for rollback in summary["rollback_steps"]:
        print(f"  epoch {rollback['epoch']} after context "
              f"{rollback['context_number']}: rolled back to "
              f"{' '.join(rollback['to'] or [])}", file=out)
    experience = summary.get("experience")
    if experience:
        print(f"experience: warmstarts={experience['warmstart_hits']} "
              f"(exact {experience['exact_hits']}, mean distance "
              f"{experience['mean_distance']:.3f}) "
              f"writes={experience['writes']}", file=out)
    return 0


def cmd_optimal(args: argparse.Namespace, out) -> int:
    rules = _load_rules(args.rules)
    form = _parse_form(args.form)
    graph = build_inference_graph(rules, form, max_depth=args.max_depth)
    probs = _parse_probs(args.probs)
    known = {arc.name for arc in graph.experiments()}
    missing = known - set(probs)
    if missing:
        print(f"missing probabilities for: {', '.join(sorted(missing))}",
              file=out)
        print(f"(the graph's experiments are: {', '.join(sorted(known))})",
              file=out)
        return 2
    strategy = upsilon_aot(graph, probs)
    print("graph:", file=out)
    print(graph.pretty(), file=out)
    print(f"optimal strategy: {' '.join(strategy.arc_names())}", file=out)
    from .strategies.expected_cost import expected_cost_exact

    print(f"expected cost: {expected_cost_exact(strategy, probs):.4g}",
          file=out)
    return 0


def _run_coverage(out) -> int:
    """Run the test suite under ``coverage`` with the repo's floor.

    Gated on ``coverage`` being importable — the package is a CI-only
    dependency, so locally this degrades to a clear message instead of
    an ImportError.
    """
    import importlib.util
    import subprocess

    from .verify.runner import COVERAGE_FLOOR

    if importlib.util.find_spec("coverage") is None:
        print(
            "error: the 'coverage' package is not installed; it is a "
            "CI-only dependency (pip install coverage) — see README "
            "'Coverage gating'",
            file=out,
        )
        return 2
    run = subprocess.run(
        [sys.executable, "-m", "coverage", "run", "--source=src/repro",
         "-m", "pytest", "-q"],
    )
    if run.returncode != 0:
        print("error: test suite failed under coverage", file=out)
        return run.returncode
    report = subprocess.run(
        [sys.executable, "-m", "coverage", "report",
         f"--fail-under={COVERAGE_FLOOR}"],
    )
    if report.returncode != 0:
        print(f"error: coverage fell below the {COVERAGE_FLOOR}% floor",
              file=out)
    return report.returncode


def cmd_verify(args: argparse.Namespace, out) -> int:
    from .verify.runner import PROFILES, replay_spec, run_verify
    from .verify.worldgen import WorldSpec

    if args.coverage:
        return _run_coverage(out)
    if args.replay is not None:
        spec = WorldSpec.load(args.replay)
        print(f"replaying {args.replay} (profile {spec.profile}, "
              f"seed {spec.seed})", file=out)
        return replay_spec(spec, out=out)
    chosen = args.profile or ["all"]
    profiles = (
        list(PROFILES) if "all" in chosen
        else list(dict.fromkeys(chosen))
    )
    return run_verify(
        profiles,
        seeds=args.seeds,
        base_seed=args.base_seed,
        artifact_dir=args.artifacts,
        out=out,
        shrink_failures=not args.no_shrink,
        experience=EXPERIENCE_FLAGS.build(args),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Learning efficient query processing strategies "
                    "(Greiner, PODS '92).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser("query", help="answer one query")
    query.add_argument("--rules", required=True, help="Datalog rule file")
    query.add_argument("--facts", required=True, help="Datalog fact file")
    query.add_argument("--engine", default="topdown", choices=ENGINE_NAMES,
                       help="evaluation strategy (default: top-down SLD)")
    query.add_argument("--max-depth", type=int, default=64)
    query.add_argument("--trace", action="store_true",
                       help="print attempted retrievals")
    query.add_argument("query", help='e.g. "instructor(manolis)?"')
    query.set_defaults(handler=cmd_query)

    def add_learning_flags(command: argparse.ArgumentParser) -> None:
        command.add_argument("--rules", required=True)
        command.add_argument("--facts", required=True)
        command.add_argument("--queries", required=True,
                             help="file with one query per line "
                                  "(%% comments)")
        command.add_argument("--quiet", action="store_true")
        SESSION_FLAGS.install(command)
        EXPERIENCE_FLAGS.install(command)

    learn = sub.add_parser(
        "learn", help="replay a query stream through the learning processor"
    )
    add_learning_flags(learn)
    learn.set_defaults(handler=cmd_learn)

    trace = sub.add_parser(
        "trace",
        help="replay a query stream with tracing on and export the "
             "JSONL event trace",
    )
    add_learning_flags(trace)
    trace.add_argument("--out", required=True,
                       help="path for the JSONL trace export")
    trace.add_argument("--no-margins", action="store_true",
                       help="drop per-test Equation 6 margin events "
                            "(keeps spans, attempts, and climbs)")
    trace.set_defaults(handler=cmd_trace)

    serve = sub.add_parser(
        "serve",
        help="answer a query batch through the serving layer "
             "(form-sharded workers + two-tier cache)",
    )
    add_learning_flags(serve)
    serve.add_argument("--workers", type=int, default=1,
                       help="worker threads; batches shard by query form")
    serve.add_argument("--repeat", type=int, default=1,
                       help="run the batch N times (warms the caches)")
    CACHE_FLAGS.install(serve)
    ADMISSION_FLAGS.install(serve)
    STORE_FLAGS.install(serve)
    serve.set_defaults(handler=cmd_serve)

    stats = sub.add_parser(
        "stats", help="summarize a JSONL trace exported by 'trace'"
    )
    stats.add_argument("trace", help="path of the JSONL trace file")
    stats.set_defaults(handler=cmd_stats)

    optimal = sub.add_parser(
        "optimal", help="print Υ_AOT's optimal strategy for a query form"
    )
    optimal.add_argument("--rules", required=True)
    optimal.add_argument("--form", required=True,
                         help="query form, e.g. instructor/b")
    optimal.add_argument("--probs", required=True,
                         help="arc=p comma list, e.g. D_prof=0.15,D_grad=0.6")
    optimal.add_argument("--max-depth", type=int, default=None)
    optimal.set_defaults(handler=cmd_optimal)

    verify = sub.add_parser(
        "verify",
        help="run the deterministic-simulation / differential-oracle "
             "battery over seeded random worlds",
    )
    verify.add_argument("--seeds", type=int, default=20,
                        help="worlds per profile (seeds 0..N-1)")
    verify.add_argument("--base-seed", type=int, default=0,
                        help="first seed of the family")
    verify.add_argument("--profile", action="append",
                        choices=("engine", "qsqn", "pib", "pao", "serving",
                                 "chaos", "overload", "federation",
                                 "experience", "all"),
                        default=None,
                        help="profile to run (repeatable; default all)")
    EXPERIENCE_FLAGS.install(verify)
    verify.add_argument("--artifacts", default=None, metavar="DIR",
                        help="write failing WorldSpecs as JSON here "
                             "for --replay")
    verify.add_argument("--replay", default=None, metavar="WORLD_JSON",
                        help="re-run every check of one saved WorldSpec")
    verify.add_argument("--no-shrink", action="store_true",
                        help="report failing specs unshrunk")
    verify.add_argument("--coverage", action="store_true",
                        help="run the test suite under coverage with the "
                             "repo's fail-under floor (CI-only dependency)")
    verify.set_defaults(handler=cmd_verify)

    return parser


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args, out)
    except (OSError, ValueError, ReproError) as error:
        print(f"error: {error}", file=out)
        return 2


if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface: query, learn, and optimize from the shell.

Three subcommands::

    python -m repro query  --rules kb.dl --facts db.dl "instructor(manolis)?"
    python -m repro learn  --rules kb.dl --facts db.dl --queries stream.txt
    python -m repro optimal --rules kb.dl --form instructor/b \
                            --probs D_prof=0.15,D_grad=0.6

* ``query`` answers one query with the plain SLD engine and prints the
  bindings, the charged cost, and the attempted retrievals;
* ``learn`` replays a query stream (one query per line) through the
  self-optimizing processor and prints the per-form learning report;
* ``optimal`` compiles a query form's inference graph and prints
  ``Υ_AOT``'s optimal strategy for a given probability vector.

All file formats are plain Datalog (the ``--facts`` file holds ground
facts only).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from .datalog.database import Database
from .datalog.engine import TopDownEngine
from .datalog.parser import parse_program, parse_query
from .datalog.rules import QueryForm
from .graphs.builder import build_inference_graph
from .errors import ReproError
from .optimal.upsilon import upsilon_aot
from .system import SelfOptimizingQueryProcessor

__all__ = ["main", "build_parser"]


def _load_rules(path: str):
    with open(path, encoding="utf-8") as handle:
        return parse_program(handle.read())


def _load_facts(path: str) -> Database:
    with open(path, encoding="utf-8") as handle:
        return Database.from_program(handle.read())


def _parse_probs(spec: str) -> Dict[str, float]:
    probs: Dict[str, float] = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        name, _, value = item.partition("=")
        if not value:
            raise ValueError(f"bad probability entry {item!r}; use arc=p")
        probs[name.strip()] = float(value)
    return probs


def _parse_form(spec: str) -> QueryForm:
    predicate, _, pattern = spec.partition("/")
    if not pattern:
        raise ValueError(f"bad form {spec!r}; use predicate/pattern, e.g. p/bf")
    return QueryForm(predicate, pattern)


def cmd_query(args: argparse.Namespace, out) -> int:
    rules = _load_rules(args.rules)
    facts = _load_facts(args.facts)
    engine = TopDownEngine(rules, max_depth=args.max_depth)
    query = parse_query(args.query)
    answer = engine.prove(query, facts)
    print("yes" if answer.proved else "no", file=out)
    if answer.proved and len(answer.substitution):
        for variable in sorted(answer.substitution, key=lambda v: v.name):
            print(f"  {variable} = {answer.substitution[variable]}", file=out)
    print(f"cost: {answer.trace.cost:g}", file=out)
    if args.trace:
        for event in answer.trace.retrievals:
            status = "hit" if event.succeeded else "miss"
            print(f"  retrieval {event.goal}: {status}", file=out)
    return 0 if answer.proved else 1


def _resilience_from_args(args: argparse.Namespace):
    """A :class:`ResiliencePolicy` when any resilience flag is set."""
    if not (args.retries or args.deadline):
        return None
    from .resilience import ResiliencePolicy, RetryPolicy

    retry = RetryPolicy(max_attempts=args.retries or 3)
    return ResiliencePolicy(retry=retry, deadline=args.deadline)


def cmd_learn(args: argparse.Namespace, out) -> int:
    rules = _load_rules(args.rules)
    facts = _load_facts(args.facts)
    processor = SelfOptimizingQueryProcessor(
        rules,
        delta=args.delta,
        max_depth=args.max_depth,
        resilience=_resilience_from_args(args),
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
    )
    total_cost = 0.0
    count = 0
    degraded = 0
    with open(args.queries, encoding="utf-8") as handle:
        for line in handle:
            line = line.split("%", 1)[0].strip()
            if not line:
                continue
            answer = processor.query(parse_query(line), facts)
            total_cost += answer.cost
            count += 1
            if answer.degraded:
                degraded += 1
                if not args.quiet:
                    print(f"[degraded query #{count}: {answer.incident}]",
                          file=out)
            if answer.climbed and not args.quiet:
                print(f"[climb after query #{count}: {line}]", file=out)
    if args.checkpoint_dir:
        processor.checkpoint_now()
    if count == 0:
        print("no queries in the stream", file=out)
        return 1
    print(f"processed {count} queries, mean cost "
          f"{total_cost / count:.3f}", file=out)
    if degraded:
        print(f"degraded (fallback) answers: {degraded}", file=out)
    for form, info in sorted(processor.report().items()):
        print(f"form {form}:", file=out)
        for key, value in info.items():
            print(f"  {key}: {value}", file=out)
    return 0


def cmd_optimal(args: argparse.Namespace, out) -> int:
    rules = _load_rules(args.rules)
    form = _parse_form(args.form)
    graph = build_inference_graph(rules, form, max_depth=args.max_depth)
    probs = _parse_probs(args.probs)
    known = {arc.name for arc in graph.experiments()}
    missing = known - set(probs)
    if missing:
        print(f"missing probabilities for: {', '.join(sorted(missing))}",
              file=out)
        print(f"(the graph's experiments are: {', '.join(sorted(known))})",
              file=out)
        return 2
    strategy = upsilon_aot(graph, probs)
    print("graph:", file=out)
    print(graph.pretty(), file=out)
    print(f"optimal strategy: {' '.join(strategy.arc_names())}", file=out)
    from .strategies.expected_cost import expected_cost_exact

    print(f"expected cost: {expected_cost_exact(strategy, probs):.4g}",
          file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Learning efficient query processing strategies "
                    "(Greiner, PODS '92).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser("query", help="answer one query with SLD")
    query.add_argument("--rules", required=True, help="Datalog rule file")
    query.add_argument("--facts", required=True, help="Datalog fact file")
    query.add_argument("--max-depth", type=int, default=64)
    query.add_argument("--trace", action="store_true",
                       help="print attempted retrievals")
    query.add_argument("query", help='e.g. "instructor(manolis)?"')
    query.set_defaults(handler=cmd_query)

    learn = sub.add_parser(
        "learn", help="replay a query stream through the learning processor"
    )
    learn.add_argument("--rules", required=True)
    learn.add_argument("--facts", required=True)
    learn.add_argument("--queries", required=True,
                       help="file with one query per line (%% comments)")
    learn.add_argument("--delta", type=float, default=0.05,
                       help="PIB mistake budget (Theorem 1)")
    learn.add_argument("--max-depth", type=int, default=None)
    learn.add_argument("--quiet", action="store_true")
    learn.add_argument("--retries", type=int, default=0,
                       help="retry faulted retrievals up to N attempts "
                            "(enables the resilience layer)")
    learn.add_argument("--deadline", type=float, default=None,
                       help="per-query cost budget; over-budget queries "
                            "degrade to the SLD fallback")
    learn.add_argument("--checkpoint-dir", default=None,
                       help="directory for crash-safe per-form PIB "
                            "checkpoints (resumes automatically)")
    learn.add_argument("--checkpoint-every", type=int, default=25,
                       help="checkpoint each form every N queries")
    learn.set_defaults(handler=cmd_learn)

    optimal = sub.add_parser(
        "optimal", help="print Υ_AOT's optimal strategy for a query form"
    )
    optimal.add_argument("--rules", required=True)
    optimal.add_argument("--form", required=True,
                         help="query form, e.g. instructor/b")
    optimal.add_argument("--probs", required=True,
                         help="arc=p comma list, e.g. D_prof=0.15,D_grad=0.6")
    optimal.add_argument("--max-depth", type=int, default=None)
    optimal.set_defaults(handler=cmd_optimal)

    return parser


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args, out)
    except (OSError, ValueError, ReproError) as error:
        print(f"error: {error}", file=out)
        return 2


if __name__ == "__main__":
    sys.exit(main())

"""Inference graphs, contexts, and graph construction (Section 2.1)."""

from .inference_graph import Arc, ArcKind, GraphBuilder, InferenceGraph, Node
from .contexts import (
    Context,
    LazyDatalogContext,
    MemoizedDatalogContext,
    PartialContext,
    context_from_datalog,
)
from .builder import build_inference_graph
from .random_graphs import random_instance, random_probabilities, random_tree_graph
from .hypergraph import (
    AndOrGraph,
    EvalResult,
    HyperArc,
    HyperContext,
    Policy,
    build_and_or_graph,
    evaluate,
    sibling_orderings,
)

__all__ = [
    "Arc",
    "ArcKind",
    "GraphBuilder",
    "InferenceGraph",
    "Node",
    "Context",
    "LazyDatalogContext",
    "MemoizedDatalogContext",
    "PartialContext",
    "context_from_datalog",
    "build_inference_graph",
    "random_instance",
    "random_probabilities",
    "random_tree_graph",
    "AndOrGraph",
    "EvalResult",
    "HyperArc",
    "HyperContext",
    "Policy",
    "build_and_or_graph",
    "evaluate",
    "sibling_orderings",
]

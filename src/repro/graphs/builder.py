"""Compile a rule base and a query form into an inference graph.

This is the rule/goal-graph construction the paper sketches with
Figure 1: starting from the query form's prototype goal
(``instructor(B0)`` for ``instructor^(b)``), each rule whose head
unifies with a goal contributes a *reduction* arc to its body subgoal,
and every extensional subgoal contributes a *retrieval* arc to a
success box.

The builder handles the paper's simple **disjunctive** rule bases
(every body has at most one literal — Note 4); conjunctive rule bases
go through :mod:`repro.graphs.hypergraph`.  Unfolding is bounded by
``max_depth``; a recursive rule base without a depth bound raises
:class:`~repro.errors.RecursionLimitError` (Section 5.1 restricts PAO
to acyclic graphs).

A reduction arc is marked *blockable* when the rule's head is strictly
more specific than the goal pattern — e.g. ``grad(fred) :- admitted(fred, X)``
under the goal ``grad(B0)`` only applies when the runtime constant is
``fred`` (the Section 4.1 example motivating Theorem 3's "aiming").
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import GraphError, RecursionLimitError
from ..datalog.rules import QueryForm, Rule, RuleBase
from ..datalog.terms import Atom, Variable
from ..datalog.unify import fresh_variable_factory, rename_apart, unify
from .inference_graph import ArcKind, GraphBuilder, InferenceGraph

__all__ = ["build_inference_graph"]

#: Optional per-arc cost policy: (kind, rule-or-None, goal) -> cost.
CostPolicy = Callable[[ArcKind, Optional[Rule], Atom], float]


def _default_cost(kind: ArcKind, rule: Optional[Rule], goal: Atom) -> float:
    """The paper's unit cost for every reduction and retrieval."""
    return 1.0


def _is_specializing(goal: Atom, head: Atom) -> bool:
    """Whether unifying ``head`` against ``goal`` constrains the goal.

    A rule head that binds a goal variable to a *constant*, or merges
    two goal variables (directly or through a shared head variable),
    applies to only a subset of the goal's runtime instances, so the
    arc is a probabilistic experiment (blockable).  A plain
    variable-to-variable renaming does not specialize.
    """
    unifier = unify(goal, head)
    if unifier is None:
        raise GraphError("`_is_specializing` expects unifiable atoms")
    goal_vars = set(goal.variables())
    targets: Dict[object, Variable] = {}
    for var in goal_vars:
        if var not in unifier:
            continue
        target = unifier[var]
        if not isinstance(target, Variable):
            return True  # bound to a constant
        if target in goal_vars:
            return True  # merged with another goal variable
        if target in targets:
            return True  # two goal variables share one head variable
        targets[target] = var
    return False


def build_inference_graph(
    rule_base: RuleBase,
    query_form: QueryForm,
    cost_policy: Optional[CostPolicy] = None,
    max_depth: Optional[int] = None,
) -> InferenceGraph:
    """Unfold ``rule_base`` against ``query_form`` into a tree graph.

    ``cost_policy`` maps each prospective arc to its ``f`` cost
    (default: the paper's 1 unit).  ``max_depth`` bounds the number of
    reductions on any root path; it is mandatory for recursive rule
    bases and a safety net otherwise.

    Rules with conjunctive bodies raise :class:`GraphError`; compile
    those with :func:`repro.graphs.hypergraph.build_and_or_graph`.
    """
    costs = cost_policy or _default_cost
    if rule_base.is_recursive() and max_depth is None:
        raise RecursionLimitError(
            "rule base is recursive; pass max_depth to bound the unfolding"
        )
    depth_limit = max_depth if max_depth is not None else 1 << 16

    prototype = query_form.prototype()
    builder = GraphBuilder("root", root_goal=prototype)
    factory = fresh_variable_factory()
    arc_names: Dict[str, int] = {}
    node_counter = [0]
    edb = rule_base.edb_predicates()

    def unique_arc_name(base: str) -> str:
        count = arc_names.get(base, 0)
        arc_names[base] = count + 1
        return base if count == 0 else f"{base}@{count + 1}"

    def fresh_node_name(goal: Atom) -> str:
        node_counter[0] += 1
        return f"n{node_counter[0]}:{goal}"

    def expand(node_name: str, goal: Atom, depth: int) -> None:
        rules = rule_base.rules_for(goal)
        for rule in rules:
            if len(rule.body) > 1:
                raise GraphError(
                    f"rule {rule} has a conjunctive body; use "
                    "repro.graphs.hypergraph.build_and_or_graph for "
                    "non-disjunctive rule bases"
                )
            if any(not lit.positive for lit in rule.body):
                raise GraphError(
                    f"rule {rule} uses negation; inference graphs model "
                    "positive reductions only (compile the NAF subquery "
                    "as its own graph, Section 5.2)"
                )
            renamed = rename_apart(
                (rule.head,) + tuple(lit.atom for lit in rule.body), factory
            )
            head = renamed[0]
            unifier = unify(goal, head)
            if unifier is None:
                continue
            if depth >= depth_limit:
                if max_depth is None:
                    raise RecursionLimitError(
                        "unfolding exceeded the internal safety depth"
                    )
                continue  # truncate the expansion at the bound
            if rule.is_fact:
                raise GraphError(
                    f"rule base contains the fact {rule}; ground facts "
                    "belong in the Database, not the rule base, when "
                    "compiling inference graphs"
                )
            blockable = _is_specializing(goal, head)
            arc_name = unique_arc_name(rule.name or "R")
            # Express the subgoal in the *goal's* variables (B0, F1, …)
            # so context compilation can instantiate it from a concrete
            # query: unifying head-against-goal binds the fresh head
            # variables to the goal's prototype variables.
            reverse_unifier = unify(head, goal)
            subgoal = renamed[1].substitute(reverse_unifier)
            child_name = fresh_node_name(subgoal)
            builder.reduction(
                arc_name,
                node_name,
                child_name,
                cost=costs(ArcKind.REDUCTION, rule, goal),
                blockable=blockable,
                rule=rule,
                goal=subgoal,
            )
            expand(child_name, subgoal, depth + 1)

        if goal.signature in edb or not rules:
            builder.retrieval(
                unique_arc_name(f"D_{goal.predicate}"),
                node_name,
                cost=costs(ArcKind.RETRIEVAL, None, goal),
                goal=goal,
            )

    expand("root", prototype, 0)
    graph = builder.build()
    if not graph.retrieval_arcs():
        raise GraphError(
            f"query form {query_form} compiled to a graph with no retrievals"
        )
    return graph

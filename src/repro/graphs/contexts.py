"""Query-processing contexts and their arc-blocking view.

A context is a pair ``I = ⟨q, DB⟩`` (Section 2.1).  What a strategy's
cost depends on, though, is only *which arcs the context blocks*
(Note 2: contexts partition into equivalence classes identified with
the subset of unblocked arcs).  This module provides:

* :class:`Context` — the symbolic equivalence-class representative: a
  frozen map from blockable arc to blocked/unblocked, optionally
  carrying the concrete query and database it came from;
* :func:`context_from_datalog` — compile a concrete ``⟨query, DB⟩``
  pair into its :class:`Context` by checking every retrieval pattern
  (and blockable reduction) against the database;
* :class:`PartialContext` — what a monitored run actually *observed*
  (PIB sees only the arcs the current strategy attempted), plus the
  pessimistic completion used to compute the under-estimates
  ``Δ̃`` of Section 3.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from ..errors import GraphError
from ..datalog.database import Database
from ..datalog.terms import Atom
from ..datalog.unify import unify
from .inference_graph import Arc, ArcKind, InferenceGraph

__all__ = [
    "Context",
    "PartialContext",
    "LazyDatalogContext",
    "MemoizedDatalogContext",
    "context_from_datalog",
]


class Context:
    """Blocking statuses for every blockable arc of a graph.

    ``statuses`` maps arc name to ``True`` (traversable) or ``False``
    (blocked).  Non-blockable arcs are implicitly always traversable.
    ``query`` and ``database`` optionally record the concrete context
    the statuses were derived from.
    """

    __slots__ = ("_statuses", "query", "database")

    def __init__(
        self,
        graph: InferenceGraph,
        statuses: Mapping[str, bool],
        query: Optional[Atom] = None,
        database: Optional[Database] = None,
    ):
        resolved: Dict[str, bool] = {}
        for arc in graph.experiments():
            if arc.name not in statuses:
                raise GraphError(
                    f"context is missing a status for blockable arc {arc.name!r}"
                )
            resolved[arc.name] = bool(statuses[arc.name])
        unknown = set(statuses) - set(resolved)
        if unknown:
            raise GraphError(
                f"context assigns statuses to non-blockable arcs: {sorted(unknown)}"
            )
        self._statuses = resolved
        self.query = query
        self.database = database

    def traversable(self, arc: Arc) -> bool:
        """Whether the context lets the query processor traverse ``arc``."""
        if not arc.blockable:
            return True
        return self._statuses[arc.name]

    def attempt(self, arc: Arc) -> Tuple[bool, float]:
        """One attempt at ``arc``: ``(traversable, cost multiplier)``.

        The hook :func:`~repro.strategies.execution.execute_resilient`
        drives: a plain context always answers cleanly at unit charge,
        while :class:`~repro.resilience.faults.FlakyContext` overrides
        this to raise :class:`~repro.errors.RetrievalFaultError`
        transiently or to attach a latency (cost) spike.
        """
        return self.traversable(arc), 1.0

    def blocked(self, arc: Arc) -> bool:
        """Whether ``arc`` is blocked in this context."""
        return not self.traversable(arc)

    def statuses(self) -> Dict[str, bool]:
        """A copy of the explicit status map."""
        return dict(self._statuses)

    def unblocked_set(self) -> frozenset:
        """Note 2's equivalence-class key: the set of unblocked arc names."""
        return frozenset(name for name, ok in self._statuses.items() if ok)

    def __eq__(self, other) -> bool:
        return isinstance(other, Context) and self._statuses == other._statuses

    def __hash__(self) -> int:
        return hash(frozenset(self._statuses.items()))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={'ok' if ok else 'blocked'}"
            for name, ok in sorted(self._statuses.items())
        )
        return f"Context({inner})"


class PartialContext:
    """The arc statuses one monitored run revealed.

    PIB watches the *current* strategy only (Section 3: "without
    building Θ₂"), so it knows the status of exactly the arcs that run
    attempted.  :meth:`pessimistic_completion` fills in the unobserved
    arcs the way Section 3.2 prescribes for the under-estimate ``Δ̃``:
    assume the unexplored parts of the graph yield no solution at
    maximal cost — unobserved retrievals blocked, unobserved
    reductions traversable.
    """

    __slots__ = ("graph", "_observed")

    def __init__(self, graph: InferenceGraph,
                 observed: Optional[Mapping[str, bool]] = None):
        self.graph = graph
        self._observed: Dict[str, bool] = {}
        if observed:
            for name, status in observed.items():
                self.observe(graph.arc(name), status)

    def observe(self, arc: Arc, traversable: bool) -> None:
        """Record the observed status of one attempted arc."""
        if not arc.blockable:
            if not traversable:
                raise GraphError(f"non-blockable arc {arc.name!r} cannot block")
            return
        previous = self._observed.get(arc.name)
        if previous is not None and previous != bool(traversable):
            raise GraphError(f"contradictory observations for arc {arc.name!r}")
        self._observed[arc.name] = bool(traversable)

    def observed(self, arc: Arc) -> Optional[bool]:
        """The known status of ``arc``, or ``None`` if unobserved."""
        if not arc.blockable:
            return True
        return self._observed.get(arc.name)

    def is_observed(self, arc: Arc) -> bool:
        return not arc.blockable or arc.name in self._observed

    def pessimistic_completion(self) -> Context:
        """Complete unobserved arcs adversarially for candidate strategies.

        Unobserved retrieval arcs are assumed *blocked* (the unexplored
        subtree holds no solution) and unobserved blockable reductions
        assumed *traversable* (the candidate pays the full traversal
        cost before failing).

        This completion *maximizes* ``c(Θ', ·)`` over every context
        consistent with the observations, for **any** candidate ``Θ'``:
        blocking a retrieval removes a stopping opportunity without
        changing its attempt charge (in the symmetric-cost model;
        asymmetric arcs are bounded by their Chernoff-range
        ``max(f, f_blocked)``), and opening a reduction only adds
        traversal below it.  Meanwhile the monitored strategy's own
        cost is unchanged (it attempted exactly the observed arcs), so
        ``Δ̃ = c(Θ, I) − c(Θ', pessimistic) ≤ Δ`` — the soundness PIB's
        Theorem 1 rests on (property-tested in
        ``tests/test_property_costs.py``).
        """
        statuses: Dict[str, bool] = {}
        for arc in self.graph.experiments():
            known = self._observed.get(arc.name)
            if known is not None:
                statuses[arc.name] = known
            else:
                statuses[arc.name] = arc.kind is not ArcKind.RETRIEVAL
        return Context(self.graph, statuses)

    def consistent_with(self, context: Context) -> bool:
        """Whether ``context`` agrees with every observation."""
        return all(
            context._statuses[name] == status
            for name, status in self._observed.items()
        )

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={'ok' if ok else 'blocked'}"
            for name, ok in sorted(self._observed.items())
        )
        return f"PartialContext({inner})"


def _instantiate(goal: Atom, query: Atom, root_goal: Optional[Atom]) -> Atom:
    """Bind a prototype arc goal with the concrete query's constants.

    Graphs built from a query form use prototype variables (``B0`` …)
    in the root goal; unifying the root prototype against the concrete
    query yields the bindings to push down to each arc's goal pattern.
    """
    if root_goal is None:
        return goal
    unifier = unify(root_goal, query)
    if unifier is None:
        raise GraphError(
            f"query {query} does not match the graph's root goal {root_goal}"
        )
    return goal.substitute(unifier)


class LazyDatalogContext(Context):
    """A concrete ``⟨query, DB⟩`` context whose arc statuses are
    computed *on demand*.

    :func:`context_from_datalog` probes the database for every
    blockable arc up front — fine for analysis, but a deployed monitor
    must stay unobtrusive (Section 5.1): the query processor should
    touch exactly the retrievals its strategy attempts.  This class
    resolves each arc's status the first time the execution asks for
    it, caching the answer, so a satisficing run performs the same
    database work it would have performed unmonitored.
    """

    __slots__ = ("_graph",)

    def __init__(self, graph: InferenceGraph, query: Atom, database: Database):
        # Deliberately skip Context.__init__: statuses fill in lazily.
        self._graph = graph
        self._statuses = {}
        self.query = query
        self.database = database

    def traversable(self, arc: Arc) -> bool:
        if not arc.blockable:
            return True
        cached = self._statuses.get(arc.name)
        if cached is None:
            cached = self._resolve(arc)
            self._statuses[arc.name] = cached
        return cached

    def _resolve(self, arc: Arc) -> bool:
        if arc.kind is ArcKind.RETRIEVAL:
            if arc.goal is None:
                raise GraphError(
                    f"retrieval arc {arc.name!r} has no goal pattern"
                )
            pattern = _instantiate(arc.goal, self.query, self._graph.root.goal)
            return self.database.succeeds(pattern)
        if arc.rule is None or arc.source.goal is None:
            raise GraphError(
                f"blockable reduction arc {arc.name!r} needs a rule and a "
                "source-goal pattern"
            )
        goal = _instantiate(arc.source.goal, self.query, self._graph.root.goal)
        return unify(arc.rule.head, goal) is not None

    def probed(self) -> Dict[str, bool]:
        """The statuses resolved so far (for asserting unobtrusiveness)."""
        return dict(self._statuses)


class MemoizedDatalogContext(LazyDatalogContext):
    """A :class:`LazyDatalogContext` that shares retrieval-probe
    results *across queries* through a memo table (QSQN-style tabling).

    ``memo`` is any object with ``lookup(pattern, database)`` →
    ``Optional[bool]`` and ``store(pattern, database, status)`` —
    typically a :class:`repro.serving.cache.SubgoalMemo`, which keys
    entries by the database's mutation generation so fact updates
    invalidate implicitly.

    Only *retrieval* arcs are memoized: their status is a pure
    function of (pattern, database state).  Blockable reduction arcs
    stay on the inherited unification path — it touches no database.
    The strategy's cost accounting is unchanged either way: attempting
    an arc bills ``f(arc)`` whether the status came from the memo or
    from a physical probe.
    """

    __slots__ = ("_memo",)

    def __init__(
        self,
        graph: InferenceGraph,
        query: Atom,
        database: Database,
        memo,
    ):
        super().__init__(graph, query, database)
        self._memo = memo

    def _resolve(self, arc: Arc) -> bool:
        if arc.kind is not ArcKind.RETRIEVAL or arc.goal is None:
            return super()._resolve(arc)
        pattern = _instantiate(arc.goal, self.query, self._graph.root.goal)
        remembered = self._memo.lookup(pattern, self.database)
        if remembered is not None:
            return remembered
        status = self.database.succeeds(pattern)
        self._memo.store(pattern, self.database, status)
        return status


def context_from_datalog(
    graph: InferenceGraph, query: Atom, database: Database
) -> Context:
    """Compile a concrete ``⟨query, DB⟩`` pair into a :class:`Context`.

    Every blockable arc must carry a ``goal`` pattern: a retrieval arc
    is unblocked iff the instantiated pattern matches at least one fact
    of ``database``; a blockable reduction arc is unblocked iff its
    rule head unifies with the instantiated goal of its *source* node's
    pattern — exactly the ``grad(fred) :- admitted(fred, X)`` situation
    of Section 4.1, where the arc is traversable only for the query
    constant ``fred``.
    """
    root_goal = graph.root.goal
    statuses: Dict[str, bool] = {}
    for arc in graph.experiments():
        if arc.kind is ArcKind.RETRIEVAL:
            if arc.goal is None:
                raise GraphError(
                    f"retrieval arc {arc.name!r} has no goal pattern; "
                    "cannot derive its status from a database"
                )
            pattern = _instantiate(arc.goal, query, root_goal)
            statuses[arc.name] = database.succeeds(pattern)
        else:
            if arc.rule is None or arc.source.goal is None:
                raise GraphError(
                    f"blockable reduction arc {arc.name!r} needs a rule and a "
                    "source-goal pattern to derive its status"
                )
            goal = _instantiate(arc.source.goal, query, root_goal)
            statuses[arc.name] = unify(arc.rule.head, goal) is not None
    return Context(graph, statuses, query=query, database=database)

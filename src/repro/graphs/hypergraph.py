"""And-or (hyper)graphs: the Note 4 extension for conjunctive rules.

Rules whose antecedents conjoin several literals (``A :- B, C.``) do
not fit simple inference graphs: "we must use directed hypergraphs,
where each hyper-arc descends from one node to a *set* of children
nodes, where the conjunction of these nodes logically imply their
common parent" (Note 4).  The paper stays with simple graphs "for
pedagogical reasons" and defers the full strategy treatment to
[GO91, Appendix A]; this module implements the natural depth-first
fragment:

* an :class:`AndOrGraph` whose :class:`HyperArc` reductions have one or
  more child goals, plus retrieval arcs as before;
* contexts assign blocked/unblocked to retrieval arcs
  (:class:`HyperContext`);
* a :class:`Policy` orders each goal's alternatives; execution
  (:func:`evaluate`) proves a goal by trying its alternatives in policy
  order, each hyper-arc succeeding only if *every* child goal proves
  (children are attempted left to right and abandoned at the first
  failure), charging each arc traversal and retrieval attempt its
  cost;
* PIB-style policy improvement works unchanged on top — the
  :func:`sibling_orderings` helper enumerates a goal's alternative
  orders so callers can hill-climb policies with the same Chernoff
  tests (see ``examples/conjunctive_rules.py``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import GraphError, RecursionLimitError
from ..datalog.rules import QueryForm, Rule, RuleBase
from ..datalog.terms import Atom
from ..datalog.unify import fresh_variable_factory, rename_apart, unify

__all__ = [
    "HyperArc",
    "AndOrGraph",
    "HyperContext",
    "Policy",
    "EvalResult",
    "build_and_or_graph",
    "evaluate",
    "sibling_orderings",
]


@dataclass(frozen=True)
class HyperArc:
    """A reduction to a conjunction of child goals, or a retrieval.

    Retrieval arcs have an empty ``children`` tuple and a ``goal``
    pattern; reduction hyper-arcs list their child goal names in body
    order.
    """

    name: str
    source: str
    children: Tuple[str, ...]
    cost: float
    goal: Optional[Atom] = None
    rule: Optional[Rule] = None

    @property
    def is_retrieval(self) -> bool:
        return not self.children


class AndOrGraph:
    """Goal nodes with alternative (hyper-)reductions.

    ``alternatives[goal]`` lists the goal's outgoing hyper-arcs in
    declaration order — the default policy order.
    """

    def __init__(self, root: str, goals: Mapping[str, Optional[Atom]],
                 arcs: Sequence[HyperArc]):
        self.root = root
        self.goal_patterns: Dict[str, Optional[Atom]] = dict(goals)
        if root not in self.goal_patterns:
            raise GraphError("root must be among the goals")
        self.alternatives: Dict[str, List[HyperArc]] = {
            name: [] for name in self.goal_patterns
        }
        self._arcs: Dict[str, HyperArc] = {}
        for arc in arcs:
            if arc.name in self._arcs:
                raise GraphError(f"duplicate hyper-arc name {arc.name!r}")
            if arc.source not in self.goal_patterns:
                raise GraphError(f"unknown source goal {arc.source!r}")
            for child in arc.children:
                if child not in self.goal_patterns:
                    raise GraphError(f"unknown child goal {child!r}")
            if arc.cost <= 0:
                raise GraphError(f"hyper-arc {arc.name!r} needs positive cost")
            self._arcs[arc.name] = arc
            self.alternatives[arc.source].append(arc)

    def arcs(self) -> List[HyperArc]:
        return list(self._arcs.values())

    def arc(self, name: str) -> HyperArc:
        return self._arcs[name]

    def retrieval_arcs(self) -> List[HyperArc]:
        return [arc for arc in self._arcs.values() if arc.is_retrieval]

    def __repr__(self) -> str:
        return (
            f"AndOrGraph(root={self.root!r}, {len(self.goal_patterns)} goals, "
            f"{len(self._arcs)} hyper-arcs)"
        )


class HyperContext:
    """Blocking statuses for an and-or graph's retrieval arcs."""

    def __init__(self, graph: AndOrGraph, statuses: Mapping[str, bool]):
        self._statuses: Dict[str, bool] = {}
        for arc in graph.retrieval_arcs():
            if arc.name not in statuses:
                raise GraphError(f"missing status for retrieval {arc.name!r}")
            self._statuses[arc.name] = bool(statuses[arc.name])

    def succeeds(self, arc: HyperArc) -> bool:
        return self._statuses[arc.name]

    def statuses(self) -> Dict[str, bool]:
        return dict(self._statuses)


class Policy:
    """An ordering of the alternatives at each goal (the strategy analogue).

    ``orders`` maps goal name to a sequence of its hyper-arc names;
    unmentioned goals use declaration order.
    """

    def __init__(self, graph: AndOrGraph,
                 orders: Optional[Mapping[str, Sequence[str]]] = None):
        self.graph = graph
        self._orders: Dict[str, List[str]] = {}
        for goal, order in (orders or {}).items():
            declared = [arc.name for arc in graph.alternatives[goal]]
            if sorted(order) != sorted(declared):
                raise GraphError(
                    f"policy order for {goal!r} must permute {declared}"
                )
            self._orders[goal] = list(order)

    def alternatives(self, goal: str) -> List[HyperArc]:
        arcs = self.graph.alternatives[goal]
        if goal not in self._orders:
            return list(arcs)
        by_name = {arc.name: arc for arc in arcs}
        return [by_name[name] for name in self._orders[goal]]

    def with_order(self, goal: str, order: Sequence[str]) -> "Policy":
        merged = {g: list(o) for g, o in self._orders.items()}
        merged[goal] = list(order)
        return Policy(self.graph, merged)

    def orders(self) -> Dict[str, List[str]]:
        return {goal: list(order) for goal, order in self._orders.items()}


@dataclass
class EvalResult:
    """Outcome of evaluating a goal under a policy in a context."""

    succeeded: bool
    cost: float
    attempted_retrievals: List[str] = field(default_factory=list)


def evaluate(policy: Policy, context: HyperContext,
             goal: Optional[str] = None) -> EvalResult:
    """Depth-first satisficing evaluation of ``goal`` (default: root).

    OR: try alternatives in policy order until one succeeds.
    AND: prove children left to right, abandoning the hyper-arc at the
    first failed child.  Goal outcomes are memoized per evaluation, so
    a shared subgoal is only searched once (and only charged once) —
    the hypergraph analogue of reaching an already-visited node.
    """
    graph = policy.graph
    target = goal or graph.root
    memo: Dict[str, bool] = {}
    result = EvalResult(False, 0.0)

    def prove(name: str) -> bool:
        if name in memo:
            return memo[name]
        for arc in policy.alternatives(name):
            result.cost += arc.cost
            if arc.is_retrieval:
                result.attempted_retrievals.append(arc.name)
                if context.succeeds(arc):
                    memo[name] = True
                    return True
                continue
            if all(prove(child) for child in arc.children):
                memo[name] = True
                return True
        memo[name] = False
        return False

    result.succeeded = prove(target)
    return result


def sibling_orderings(graph: AndOrGraph, goal: str) -> List[List[str]]:
    """All orderings of one goal's alternatives (policy neighbourhood)."""
    names = [arc.name for arc in graph.alternatives[goal]]
    return [list(order) for order in itertools.permutations(names)]


def build_and_or_graph(
    rule_base: RuleBase,
    query_form: QueryForm,
    max_depth: Optional[int] = None,
    unit_cost: float = 1.0,
) -> AndOrGraph:
    """Unfold a (possibly conjunctive) rule base into an and-or graph.

    The analogue of :func:`repro.graphs.builder.build_inference_graph`
    for rule bases with conjunctive bodies.  Negation is not supported
    at the graph level (Section 5.2 treats NAF subqueries as separate
    satisficing problems).
    """
    if rule_base.is_recursive() and max_depth is None:
        raise RecursionLimitError(
            "rule base is recursive; pass max_depth to bound the unfolding"
        )
    depth_limit = max_depth if max_depth is not None else 1 << 16

    prototype = query_form.prototype()
    goals: Dict[str, Optional[Atom]] = {}
    arcs: List[HyperArc] = []
    factory = fresh_variable_factory()
    counters = {"node": 0, "arc": {}}
    edb = rule_base.edb_predicates()

    def arc_name(base: str) -> str:
        count = counters["arc"].get(base, 0)
        counters["arc"][base] = count + 1
        return base if count == 0 else f"{base}@{count + 1}"

    def node_name(goal_atom: Atom) -> str:
        counters["node"] += 1
        return f"n{counters['node']}:{goal_atom}"

    def expand(name: str, goal_atom: Atom, depth: int) -> None:
        goals[name] = goal_atom
        rules = rule_base.rules_for(goal_atom)
        for rule in rules:
            if rule.is_fact:
                raise GraphError(
                    f"rule base contains the fact {rule}; facts belong in "
                    "the Database when compiling graphs"
                )
            if any(not lit.positive for lit in rule.body):
                raise GraphError(
                    f"rule {rule} uses negation; and-or graphs model "
                    "positive reductions only"
                )
            renamed = rename_apart(
                (rule.head,) + tuple(lit.atom for lit in rule.body), factory
            )
            unifier = unify(goal_atom, renamed[0])
            if unifier is None:
                continue
            if depth >= depth_limit:
                continue
            child_names: List[str] = []
            child_goals: List[Atom] = []
            for body_atom in renamed[1:]:
                subgoal = body_atom.substitute(unifier)
                child = node_name(subgoal)
                child_names.append(child)
                child_goals.append(subgoal)
            arcs.append(
                HyperArc(
                    arc_name(rule.name or "R"),
                    name,
                    tuple(child_names),
                    cost=unit_cost,
                    rule=rule,
                )
            )
            for child, subgoal in zip(child_names, child_goals):
                expand(child, subgoal, depth + 1)
        if goal_atom.signature in edb or not rules:
            arcs.append(
                HyperArc(
                    arc_name(f"D_{goal_atom.predicate}"),
                    name,
                    (),
                    cost=unit_cost,
                    goal=goal_atom,
                )
            )

    expand("root", prototype, 0)
    return AndOrGraph("root", goals, arcs)

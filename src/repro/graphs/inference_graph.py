"""Inference graphs: the search space a query-processing strategy orders.

Section 2.1 of the paper defines an inference graph
``G = ⟨N, A, S, f⟩``: nodes for atomic goals, directed arcs for rule
reductions and database retrievals, success nodes ``S`` (the boxes in
the paper's Figure 1), and a positive cost ``f`` on every arc.  This
module implements that structure for the *tree-shaped* class
:math:`\\mathcal{AOT}` the paper's algorithms operate on, together with
the derived quantities of Note 5:

* ``f*`` — the cost of an arc plus everything below it;
* ``F¬`` — the cost of all arcs *off* the root-to-leaf paths through an
  arc;
* the path ``Π(e)`` from the root down to an arc (Definition 1).

Arcs can be *blockable* (the paper's "probabilistic experiments"):
database retrievals always are — the required literal may be absent
from the context's database — and rule reductions may be, as with the
``grad(fred) :- admitted(fred, X)`` rule of Section 4.1 that only
applies to one query constant.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence, Set

from ..errors import GraphError
from ..datalog.rules import Rule
from ..datalog.terms import Atom

__all__ = ["ArcKind", "Node", "Arc", "InferenceGraph", "GraphBuilder"]


class ArcKind(enum.Enum):
    """The two arc flavours of Section 2.1."""

    REDUCTION = "reduction"  # following a rule from goal to subgoal
    RETRIEVAL = "retrieval"  # an attempted database retrieval


class Node:
    """A graph node: a goal literal, or a success box under a retrieval."""

    __slots__ = ("name", "goal", "is_success")

    def __init__(self, name: str, goal: Optional[Atom] = None,
                 is_success: bool = False):
        if not isinstance(name, str) or not name:
            raise TypeError("node name must be a non-empty string")
        self.name = name
        self.goal = goal
        self.is_success = bool(is_success)

    def __repr__(self) -> str:
        flags = ", success" if self.is_success else ""
        return f"Node({self.name!r}{flags})"

    def __str__(self) -> str:
        return self.name


class Arc:
    """A directed arc with a positive cost.

    ``blockable`` marks the arc as a probabilistic experiment: a
    context may prevent its traversal.  ``goal`` carries the
    (prototype) literal a retrieval arc would look up, and ``rule`` the
    rule a reduction arc follows; both are optional for synthetic
    graphs.

    ``blocked_cost`` implements Note 4's extension — "the cost of
    traversing an arc [may] depend on … the success or failure of that
    traversal" [OG90]: a blocked attempt is charged ``blocked_cost``
    instead of ``cost`` (a failed index probe is often cheaper than a
    successful scan, or dearer when it exhausts an overflow chain).
    It defaults to ``cost``, recovering the paper's symmetric model.
    """

    __slots__ = ("name", "source", "target", "kind", "cost", "blockable",
                 "rule", "goal", "blocked_cost")

    def __init__(
        self,
        name: str,
        source: Node,
        target: Node,
        kind: ArcKind,
        cost: float = 1.0,
        blockable: Optional[bool] = None,
        rule: Optional[Rule] = None,
        goal: Optional[Atom] = None,
        blocked_cost: Optional[float] = None,
    ):
        if cost <= 0:
            raise GraphError(f"arc {name!r} must have positive cost, got {cost}")
        self.name = name
        self.source = source
        self.target = target
        self.kind = kind
        self.cost = float(cost)
        # Retrievals are always experiments; reductions only when flagged.
        if blockable is None:
            blockable = kind is ArcKind.RETRIEVAL
        if kind is ArcKind.RETRIEVAL and not blockable:
            raise GraphError(f"retrieval arc {name!r} must be blockable")
        self.blockable = bool(blockable)
        if blocked_cost is None:
            blocked_cost = self.cost
        elif blocked_cost <= 0:
            raise GraphError(
                f"arc {name!r} must have positive blocked_cost, got {blocked_cost}"
            )
        elif not self.blockable:
            raise GraphError(
                f"arc {name!r} is not blockable; blocked_cost is meaningless"
            )
        self.blocked_cost = float(blocked_cost)
        self.rule = rule
        self.goal = goal

    def expected_attempt_cost(self, success_probability: float) -> float:
        """Mean charge for one attempt: ``p·f + (1−p)·f_blocked``."""
        if not self.blockable:
            return self.cost
        return (
            success_probability * self.cost
            + (1.0 - success_probability) * self.blocked_cost
        )

    def __repr__(self) -> str:
        return (
            f"Arc({self.name!r}, {self.source.name!r} -> {self.target.name!r}, "
            f"{self.kind.value}, cost={self.cost})"
        )

    def __str__(self) -> str:
        return self.name


class InferenceGraph:
    """A tree-shaped inference graph (the paper's class ``AOT``).

    Construct via :class:`GraphBuilder` (or
    :func:`repro.graphs.builder.build_inference_graph` from a rule
    base).  The graph is immutable once built; arc iteration order is
    declaration order, which doubles as the default depth-first,
    left-to-right strategy (the paper's ``Θ_ABCD``).
    """

    def __init__(self, root: Node, nodes: Sequence[Node], arcs: Sequence[Arc]):
        self.root = root
        self._nodes: Dict[str, Node] = {}
        self._arcs: Dict[str, Arc] = {}
        self._children: Dict[str, List[Arc]] = {}
        self._incoming: Dict[str, Arc] = {}

        for node in nodes:
            if node.name in self._nodes:
                raise GraphError(f"duplicate node name {node.name!r}")
            self._nodes[node.name] = node
            self._children[node.name] = []
        if root.name not in self._nodes:
            raise GraphError("root must be among the nodes")

        for arc in arcs:
            if arc.name in self._arcs:
                raise GraphError(f"duplicate arc name {arc.name!r}")
            for endpoint in (arc.source, arc.target):
                if self._nodes.get(endpoint.name) is not endpoint:
                    raise GraphError(
                        f"arc {arc.name!r} references unknown node {endpoint.name!r}"
                    )
            if arc.target.name in self._incoming:
                raise GraphError(
                    f"node {arc.target.name!r} has two incoming arcs; "
                    "tree-shaped graphs need a unique path to every node"
                )
            if arc.target is self.root:
                raise GraphError("no arc may point back at the root")
            self._arcs[arc.name] = arc
            self._children[arc.source.name].append(arc)
            self._incoming[arc.target.name] = arc

        self._validate()
        # f* and F¬ are used as Chernoff *ranges* by the learners, so
        # under Note 4's asymmetric costs they conservatively charge
        # each arc max(f, f_blocked); with symmetric costs (the paper's
        # model) this is exactly the printed definition.
        self._f_star: Dict[str, float] = {}
        self._total_cost = sum(
            max(arc.cost, arc.blocked_cost) for arc in self._arcs.values()
        )
        for arc in reversed(list(self._arcs.values())):
            below = sum(
                self._f_star[child.name] for child in self._children[arc.target.name]
            )
            self._f_star[arc.name] = max(arc.cost, arc.blocked_cost) + below

    def _validate(self) -> None:
        """Check connectivity and the retrieval/success invariants."""
        reached: Set[str] = set()
        stack = [self.root.name]
        while stack:
            name = stack.pop()
            if name in reached:
                raise GraphError("inference graph contains a cycle")
            reached.add(name)
            stack.extend(arc.target.name for arc in self._children[name])
        unreachable = set(self._nodes) - reached
        if unreachable:
            raise GraphError(
                f"nodes unreachable from root: {sorted(unreachable)}"
            )
        for arc in self._arcs.values():
            if arc.kind is ArcKind.RETRIEVAL:
                if not arc.target.is_success:
                    raise GraphError(
                        f"retrieval arc {arc.name!r} must end in a success node"
                    )
                if self._children[arc.target.name]:
                    raise GraphError(
                        f"success node {arc.target.name!r} must be a leaf"
                    )
            elif arc.target.is_success:
                raise GraphError(
                    f"reduction arc {arc.name!r} may not end in a success node"
                )

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        return self._nodes[name]

    def arc(self, name: str) -> Arc:
        """Look up an arc by name."""
        return self._arcs[name]

    def arcs(self) -> List[Arc]:
        """All arcs in declaration (depth-first, left-to-right) order."""
        return list(self._arcs.values())

    def nodes(self) -> List[Node]:
        """All nodes in declaration order."""
        return list(self._nodes.values())

    def children(self, node: Node) -> List[Arc]:
        """Outgoing arcs of ``node`` in declaration order."""
        return list(self._children[node.name])

    def incoming(self, node: Node) -> Optional[Arc]:
        """The unique arc into ``node`` (``None`` for the root)."""
        return self._incoming.get(node.name)

    def parent_arc(self, arc: Arc) -> Optional[Arc]:
        """The arc whose traversal makes ``arc`` attemptable."""
        return self._incoming.get(arc.source.name)

    def retrieval_arcs(self) -> List[Arc]:
        """All database-retrieval arcs, in declaration order."""
        return [a for a in self._arcs.values() if a.kind is ArcKind.RETRIEVAL]

    def experiments(self) -> List[Arc]:
        """All blockable arcs (Theorem 3's probabilistic experiments)."""
        return [a for a in self._arcs.values() if a.blockable]

    def is_simple_disjunctive(self) -> bool:
        """Whether only retrieval arcs are experiments (Note 4's class)."""
        return all(
            a.kind is ArcKind.RETRIEVAL or not a.blockable
            for a in self._arcs.values()
        )

    # ------------------------------------------------------------------
    # Derived cost functions (Note 5)
    # ------------------------------------------------------------------

    @property
    def total_cost(self) -> float:
        """Sum of all arc costs."""
        return self._total_cost

    def f(self, arc: Arc) -> float:
        """The arc-cost function ``f`` of Section 2.1."""
        return arc.cost

    def f_star(self, arc: Arc) -> float:
        """``f*(a)``: cost of ``a`` plus all arcs below it (Note 5)."""
        return self._f_star[arc.name]

    def subtree_arcs(self, arc: Arc) -> List[Arc]:
        """``arc`` and every arc below it, in declaration order."""
        members: List[Arc] = []
        frontier = [arc]
        while frontier:
            current = frontier.pop()
            members.append(current)
            frontier.extend(self._children[current.target.name])
        order = {a.name: i for i, a in enumerate(self._arcs.values())}
        members.sort(key=lambda a: order[a.name])
        return members

    def ancestors(self, arc: Arc) -> List[Arc]:
        """Arcs strictly above ``arc`` on its root path, topmost first.

        This is the paper's ``Π(e)`` (Definition 1): the sequence of
        arcs descending from the root down to, but not including, ``e``.
        """
        chain: List[Arc] = []
        current = self.parent_arc(arc)
        while current is not None:
            chain.append(current)
            current = self.parent_arc(current)
        chain.reverse()
        return chain

    def pi(self, arc: Arc) -> List[Arc]:
        """Alias for :meth:`ancestors`, in the paper's ``Π(e)`` notation."""
        return self.ancestors(arc)

    def f_not(self, arc: Arc) -> float:
        """``F¬(a)``: total cost of arcs on paths *other* than ``a``'s.

        Note 5's examples fix the meaning: for ``G_A``,
        ``F¬[D_g] = f(R_p) + f(D_p)``.  Equivalently, it is the total
        graph cost minus the arcs on root-to-leaf paths through ``a``
        (its ancestors, itself, and its descendants).
        """
        on_path = sum(max(a.cost, a.blocked_cost) for a in self.ancestors(arc))
        on_path += self._f_star[arc.name]
        return self._total_cost - on_path

    def depth(self, arc: Arc) -> int:
        """Number of arcs above ``arc`` (0 for a top-level arc)."""
        return len(self.ancestors(arc))

    def __repr__(self) -> str:
        return (
            f"InferenceGraph(root={self.root.name!r}, "
            f"{len(self._nodes)} nodes, {len(self._arcs)} arcs)"
        )

    def pretty(self) -> str:
        """An indented text rendering of the tree, for debugging."""
        lines: List[str] = [self.root.name]

        def walk(node: Node, indent: int) -> None:
            for arc in self._children[node.name]:
                marker = "[]" if arc.target.is_success else arc.target.name
                lines.append(
                    "  " * indent
                    + f"--{arc.name} (f={arc.cost:g}"
                    + (", blockable" if arc.blockable else "")
                    + f")--> {marker}"
                )
                walk(arc.target, indent + 1)

        walk(self.root, 1)
        return "\n".join(lines)


class GraphBuilder:
    """Fluent constructor for tree-shaped inference graphs.

    >>> b = GraphBuilder("instructor")
    >>> b.reduction("Rp", "instructor", "prof")
    >>> b.retrieval("Dp", "prof")
    >>> b.reduction("Rg", "instructor", "grad")
    >>> b.retrieval("Dg", "grad")
    >>> g_a = b.build()

    Nodes are created on first mention.  Declaration order fixes the
    default strategy order.
    """

    def __init__(self, root_name: str, root_goal: Optional[Atom] = None):
        self._root = Node(root_name, goal=root_goal)
        self._nodes: Dict[str, Node] = {root_name: self._root}
        self._node_order: List[Node] = [self._root]
        self._arcs: List[Arc] = []
        self._success_counter = 0

    def _get_node(self, name: str, goal: Optional[Atom] = None) -> Node:
        if name not in self._nodes:
            node = Node(name, goal=goal)
            self._nodes[name] = node
            self._node_order.append(node)
        return self._nodes[name]

    def reduction(
        self,
        name: str,
        source: str,
        target: str,
        cost: float = 1.0,
        blockable: bool = False,
        rule: Optional[Rule] = None,
        goal: Optional[Atom] = None,
        blocked_cost: Optional[float] = None,
    ) -> "GraphBuilder":
        """Add a rule-reduction arc ``source -> target``."""
        arc = Arc(
            name,
            self._get_node(source),
            self._get_node(target, goal=goal),
            ArcKind.REDUCTION,
            cost=cost,
            blockable=blockable,
            rule=rule,
            goal=goal,
            blocked_cost=blocked_cost,
        )
        self._arcs.append(arc)
        return self

    def retrieval(
        self,
        name: str,
        source: str,
        cost: float = 1.0,
        goal: Optional[Atom] = None,
        blocked_cost: Optional[float] = None,
    ) -> "GraphBuilder":
        """Add a database-retrieval arc from ``source`` to a fresh success box."""
        self._success_counter += 1
        success = Node(f"_success_{self._success_counter}", is_success=True)
        self._nodes[success.name] = success
        self._node_order.append(success)
        arc = Arc(
            name,
            self._get_node(source),
            success,
            ArcKind.RETRIEVAL,
            cost=cost,
            goal=goal,
            blocked_cost=blocked_cost,
        )
        self._arcs.append(arc)
        return self

    def build(self) -> InferenceGraph:
        """Finalize and validate the graph."""
        return InferenceGraph(self._root, self._node_order, self._arcs)

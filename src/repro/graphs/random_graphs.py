"""Random tree-shaped inference graphs and probability vectors.

The theorem-validation benchmarks (Theorems 1–3, Lemma 1) need many
independent problem instances; this module generates them
reproducibly.  All randomness flows through an explicit
:class:`random.Random`, so every bench and test is seedable.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from .inference_graph import GraphBuilder, InferenceGraph

__all__ = ["random_tree_graph", "random_probabilities", "random_instance"]


def random_tree_graph(
    rng: random.Random,
    n_internal: int = 3,
    n_retrievals: int = 5,
    max_children: int = 3,
    cost_range: Tuple[float, float] = (0.5, 3.0),
    blockable_reduction_rate: float = 0.0,
    asymmetric_blocked_costs: bool = False,
) -> InferenceGraph:
    """A random tree-shaped inference graph.

    ``n_internal`` internal (goal) nodes are attached under random
    earlier nodes (respecting ``max_children``), then ``n_retrievals``
    retrieval arcs are distributed across the internal nodes — every
    *leaf* internal node receives at least one so no reduction
    dead-ends.  Arc costs are uniform in ``cost_range``;
    ``blockable_reduction_rate`` is the chance each reduction arc is a
    probabilistic experiment (Theorem 3's setting when > 0);
    ``asymmetric_blocked_costs`` draws an independent blocked-attempt
    cost per experiment (Note 4's [OG90] cost extension).
    """
    if n_internal < 1:
        raise ValueError("need at least the root internal node")
    if n_retrievals < 1:
        raise ValueError("need at least one retrieval")

    builder = GraphBuilder("g0")
    internal_names = ["g0"]
    children_count: Dict[str, int] = {"g0": 0}

    def cost() -> float:
        return rng.uniform(*cost_range)

    def blocked_cost(is_blockable: bool) -> Optional[float]:
        if is_blockable and asymmetric_blocked_costs:
            return rng.uniform(*cost_range)
        return None

    for index in range(1, n_internal):
        candidates = [
            name for name in internal_names if children_count[name] < max_children
        ]
        parent = rng.choice(candidates) if candidates else internal_names[-1]
        name = f"g{index}"
        is_blockable = rng.random() < blockable_reduction_rate
        builder.reduction(
            f"R{index}",
            parent,
            name,
            cost=cost(),
            blockable=is_blockable,
            blocked_cost=blocked_cost(is_blockable),
        )
        children_count[parent] += 1
        children_count[name] = 0
        internal_names.append(name)

    # Leaves first so that every dead-end gets a retrieval.
    leaves = [name for name in internal_names if children_count[name] == 0]
    hosts = leaves + [
        rng.choice(internal_names) for _ in range(n_retrievals - len(leaves))
    ]
    if len(hosts) > n_retrievals:
        raise ValueError(
            f"{len(leaves)} leaf goals need retrievals but only "
            f"{n_retrievals} were requested"
        )
    rng.shuffle(hosts)
    for index, host in enumerate(hosts):
        builder.retrieval(
            f"D{index}", host, cost=cost(), blocked_cost=blocked_cost(True)
        )
    return builder.build()


def random_probabilities(
    rng: random.Random,
    graph: InferenceGraph,
    low: float = 0.05,
    high: float = 0.95,
) -> Dict[str, float]:
    """Independent success probabilities for every experiment arc."""
    return {
        arc.name: rng.uniform(low, high) for arc in graph.experiments()
    }


def random_instance(
    rng: random.Random,
    n_internal: int = 3,
    n_retrievals: int = 5,
    blockable_reduction_rate: float = 0.0,
    **kwargs,
) -> Tuple[InferenceGraph, Dict[str, float]]:
    """Convenience: a random graph together with a probability vector."""
    graph = random_tree_graph(
        rng,
        n_internal=n_internal,
        n_retrievals=n_retrievals,
        blockable_reduction_rate=blockable_reduction_rate,
        **kwargs,
    )
    return graph, random_probabilities(rng, graph)

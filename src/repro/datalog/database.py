"""The extensional database: a store of ground atomic facts.

Retrieval is the unit operation the whole paper is built around — a
strategy is an ordering of *attempted retrievals* (plus the rule
reductions that reach them), and PIB/PAO's statistics count how often
each retrieval succeeds.  This module provides an indexed fact store:

* a per-relation index (``signature -> facts``), and
* per-argument hash indexes (``signature, position, constant -> facts``)
  so that bound positions of a retrieval pattern prune the scan, the
  way any real EDB access path would.

Both index levels are backed by **insertion-ordered** dicts: every
enumeration a query can observe — full relation scans and per-argument
index buckets alike — runs in insertion order, never in hash order, so
multi-answer enumeration is byte-identical across ``PYTHONHASHSEED``
values.  (The argument index originally used ``set`` buckets, which
leaked hash ordering into answer enumeration; the serving layer's
byte-identity guarantees forbid that.)

The store also keeps simple relation statistics (fact counts per
relation), which the [Smi89] fact-distribution heuristic baseline
(:mod:`repro.optimal.smith`) consumes, and caches the set of live
relation signatures so the engine's per-retrieval "is this relation
extensional?" check is O(1) instead of rebuilding a set per call.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..errors import DatalogError
from ..storage.interface import FactStore, next_store_id
from .terms import EMPTY_SUBSTITUTION, Atom, Constant, Substitution, Variable

__all__ = ["Database"]

class Database(FactStore):
    """An indexed collection of ground facts.

    Databases are mutable (facts can be added and removed) but the
    stored atoms themselves are immutable.  Iteration order is
    insertion order — including enumeration through the per-argument
    indexes — which keeps retrieval enumeration deterministic.

    Every mutation that actually changes the stored fact set bumps
    :attr:`generation` — the coherence token the serving layer's
    caches key on: a cached subgoal status or ground answer is valid
    exactly as long as the generation it was computed against.
    """

    def __init__(self, facts: Iterable[Atom] = ()):
        self._facts: Dict[Tuple[str, int], Dict[Atom, None]] = defaultdict(dict)
        # Insertion-ordered buckets (dict-as-ordered-set): enumeration
        # through an index bucket must match insertion order.
        self._arg_index: Dict[
            Tuple[str, int, int, Constant], Dict[Atom, None]
        ] = defaultdict(dict)
        self._signatures: Set[Tuple[str, int]] = set()
        self._size = 0
        self._id = next_store_id()
        self._generation = 0
        for fact in facts:
            self.add(fact)

    @property
    def generation(self) -> int:
        """Mutation counter: bumped by every effective add/remove."""
        return self._generation

    @property
    def cache_key(self) -> Tuple[int, int]:
        """A token identifying this database *state*: (identity,
        generation).  Two equal tokens guarantee identical retrieval
        behaviour, which is what cache entries are allowed to rely on.
        The identity component is a process-wide monotonic counter, not
        ``id(self)`` — ``id()`` values can be reused after garbage
        collection and alias two distinct databases."""
        return (self._id, self._generation)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_program(cls, text: str) -> "Database":
        """Build a database from Datalog source containing only facts."""
        from .parser import parse_program

        database = cls()
        for rule in parse_program(text):
            if not rule.is_fact:
                raise DatalogError(f"not a fact: {rule}")
            database.add(rule.head)
        return database

    def copy(self) -> "Database":
        """An independent copy of the database."""
        return Database(self)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, fact: Atom) -> bool:
        """Add a ground fact; returns ``False`` when already present."""
        if not isinstance(fact, Atom):
            raise TypeError("facts must be Atoms")
        if not fact.is_ground:
            raise DatalogError(f"facts must be ground, got {fact}")
        signature = fact.signature
        relation = self._facts[signature]
        if fact in relation:
            return False
        relation[fact] = None
        predicate, arity = signature
        for position, arg in enumerate(fact.args):
            self._arg_index[(predicate, arity, position, arg)][fact] = None
        self._signatures.add(signature)
        self._size += 1
        self._generation += 1
        return True

    def remove(self, fact: Atom) -> bool:
        """Remove a fact; returns ``False`` when it was absent."""
        signature = fact.signature
        relation = self._facts.get(signature)
        if not relation or fact not in relation:
            return False
        del relation[fact]
        predicate, arity = signature
        for position, arg in enumerate(fact.args):
            key = (predicate, arity, position, arg)
            bucket = self._arg_index.get(key)
            if bucket is not None:
                bucket.pop(fact, None)
                if not bucket:
                    del self._arg_index[key]
        if not relation:
            self._signatures.discard(signature)
        self._size -= 1
        self._generation += 1
        return True

    def update(self, facts: Iterable[Atom]) -> int:
        """Add many facts; returns how many were new."""
        return sum(1 for fact in facts if self.add(fact))

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------

    def __contains__(self, fact: Atom) -> bool:
        relation = self._facts.get(fact.signature)
        return bool(relation) and fact in relation

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Atom]:
        for relation in self._facts.values():
            yield from relation

    def relation(self, predicate: str, arity: int) -> List[Atom]:
        """All facts of one relation, in insertion order."""
        return list(self._facts.get((predicate, arity), ()))

    def count(self, predicate: str, arity: Optional[int] = None) -> int:
        """Number of facts for a relation.

        With ``arity=None`` the counts of all arities of ``predicate``
        are summed; this is the statistic the [Smi89] heuristic uses
        (e.g. "2,000 facts of the form ``prof^(b)``").
        """
        if arity is not None:
            return len(self._facts.get((predicate, arity), ()))
        return sum(
            len(facts)
            for (name, _arity), facts in self._facts.items()
            if name == predicate
        )

    def signatures(self) -> Set[Tuple[str, int]]:
        """All relation signatures with at least one fact.

        Returns the live cached set (maintained incrementally by
        ``add``/``remove``) — treat it as read-only.  The engine checks
        it once per attempted retrieval, so rebuilding it per call was
        a top profile frame.
        """
        return self._signatures

    def _candidates(self, pattern: Atom) -> Iterable[Atom]:
        """Facts that could match ``pattern``, using the tightest index.

        Returns an insertion-ordered mapping view, so enumeration is
        deterministic regardless of which index bucket is chosen.
        """
        relation = self._facts.get(pattern.signature)
        if not relation:
            return ()
        predicate, arity = pattern.signature
        best: Optional[Dict[Atom, None]] = None
        for position, arg in enumerate(pattern.args):
            if type(arg) is Variable:
                continue
            bucket = self._arg_index.get((predicate, arity, position, arg))
            if bucket is None:
                return ()
            if best is None or len(bucket) < len(best):
                best = bucket
        return relation if best is None else best

    def retrieve(self, pattern: Atom) -> Iterator[Substitution]:
        """Yield one substitution per fact matching ``pattern``.

        A ground pattern yields at most one (empty) substitution; a
        pattern with variables yields their bindings.  This is the
        "attempted database retrieval" of the paper: the retrieval
        *succeeds* iff the iterator is non-empty.  Enumeration order is
        fact insertion order.
        """
        if pattern.is_ground:
            if pattern in self:
                yield EMPTY_SUBSTITUTION
            return
        pattern_args = pattern.args
        for fact in self._candidates(pattern):
            bindings = {}
            for p_arg, f_arg in zip(pattern_args, fact.args):
                if type(p_arg) is Variable:
                    bound = bindings.get(p_arg)
                    if bound is None:
                        bindings[p_arg] = f_arg
                    elif bound != f_arg:
                        break
                elif p_arg != f_arg:
                    break
            else:
                yield Substitution._resolved(bindings)

    def facts_matching(self, pattern: Atom) -> Iterator[Atom]:
        """Yield the stored facts matching ``pattern``, in insertion
        order.

        Like :meth:`retrieve` but yields the facts themselves instead
        of substitutions — the bottom-up join binds its slot array
        straight from the fact argument tuples.
        """
        if pattern.is_ground:
            if pattern in self:
                yield pattern
            return
        pattern_args = pattern.args
        for fact in self._candidates(pattern):
            bindings = {}
            for p_arg, f_arg in zip(pattern_args, fact.args):
                if type(p_arg) is Variable:
                    bound = bindings.get(p_arg)
                    if bound is None:
                        bindings[p_arg] = f_arg
                    elif bound != f_arg:
                        break
                elif p_arg != f_arg:
                    break
            else:
                yield fact

    def succeeds(self, pattern: Atom) -> bool:
        """Whether at least one fact matches ``pattern`` (satisficing)."""
        for _ in self.retrieve(pattern):
            return True
        return False

    def __repr__(self) -> str:
        return f"Database({self._size} facts)"

"""Unification and matching for function-free (Datalog) atoms.

Because Datalog terms contain no function symbols, unification here is
the simple variable/constant case — no occurs check is needed beyond
rejecting a variable bound against itself, and most-general unifiers
are unique up to variable renaming.

Three operations are provided:

* :func:`unify` — most general unifier of two atoms (or ``None``);
* :func:`match` — one-sided unification: bind variables of a *pattern*
  to make it equal a (usually ground) *target*, used by the fact
  indexes for retrieval;
* :func:`rename_apart` — freshen the variables of a clause before
  resolution so distinct rule applications never share variables.

``unify`` and ``match`` are hot-path operations (one call per
reduction attempt / per candidate fact), so both build a single raw
binding dict in place and hand it to the trusted
:meth:`~repro.datalog.terms.Substitution._resolved` constructor after a
final chain-resolution pass, instead of re-validating through
``Substitution.__init__``.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

from .terms import Atom, Substitution, Term, Variable

__all__ = ["unify", "unify_terms", "match", "rename_apart", "fresh_variable_factory"]


def unify_terms(left: Term, right: Term,
                bindings: Optional[Dict[Variable, Term]] = None
                ) -> Optional[Dict[Variable, Term]]:
    """Unify two terms under existing raw ``bindings``.

    Returns the extended raw binding dict, or ``None`` when the terms
    do not unify.  The input dict is never mutated.
    """
    bindings = dict(bindings) if bindings else {}
    left = _resolve(left, bindings)
    right = _resolve(right, bindings)
    if left == right:
        return bindings
    if isinstance(left, Variable):
        bindings[left] = right
        return bindings
    if isinstance(right, Variable):
        bindings[right] = left
        return bindings
    return None  # two distinct constants


def unify(left: Atom, right: Atom) -> Optional[Substitution]:
    """Most general unifier of two atoms, or ``None`` if none exists.

    >>> from repro.datalog.terms import Atom
    >>> unify(Atom("p", ["X"]), Atom("p", ["a"]))
    {X: a}
    """
    if left.signature != right.signature:
        return None
    bindings: Dict[Variable, Term] = {}
    for l_arg, r_arg in zip(left.args, right.args):
        while type(l_arg) is Variable and l_arg in bindings:
            l_arg = bindings[l_arg]
        while type(r_arg) is Variable and r_arg in bindings:
            r_arg = bindings[r_arg]
        if l_arg is r_arg or l_arg == r_arg:
            continue
        if type(l_arg) is Variable:
            bindings[l_arg] = r_arg
        elif type(r_arg) is Variable:
            bindings[r_arg] = l_arg
        else:
            return None  # two distinct constants
    if not bindings:
        return Substitution._resolved({})
    for var, term in bindings.items():
        # Chase variable-to-variable chains so the result is resolved.
        while type(term) is Variable and term in bindings:
            term = bindings[term]
        bindings[var] = term
    return Substitution._resolved(bindings)


def match(pattern: Atom, target: Atom) -> Optional[Substitution]:
    """One-sided unification: bind ``pattern``'s variables to equal ``target``.

    Variables in ``target`` are treated as constants-like and never
    bound; retrieval from the fact database uses this with ground
    targets.  Returns ``None`` when no such binding exists.
    """
    if pattern.signature != target.signature:
        return None
    bindings: Dict[Variable, Term] = {}
    for p_arg, t_arg in zip(pattern.args, target.args):
        while type(p_arg) is Variable and p_arg in bindings:
            p_arg = bindings[p_arg]
        if type(p_arg) is Variable:
            if p_arg != t_arg:
                bindings[p_arg] = t_arg
        elif p_arg != t_arg:
            return None
    if bindings:
        for var, term in bindings.items():
            # Chains (and cycles) arise only when pattern and target
            # share variables; walk with cycle detection like
            # ``Substitution.__init__`` would.
            seen = None
            while type(term) is Variable and term in bindings:
                if seen is None:
                    seen = {var}
                if term in seen:
                    raise ValueError(f"cyclic substitution through {term}")
                seen.add(term)
                term = bindings[term]
            bindings[var] = term
    return Substitution._resolved(bindings)


def _resolve(term: Term, bindings: Dict[Variable, Term]) -> Term:
    """Follow variable bindings to the representative term."""
    while isinstance(term, Variable) and term in bindings:
        term = bindings[term]
    return term


class fresh_variable_factory:
    """Generate variables guaranteed fresh across a resolution session.

    Produced names look like ``X#3`` — the ``#`` cannot appear in parsed
    variable names, so fresh variables never collide with user ones.
    """

    def __init__(self):
        self._counter = itertools.count()

    def __call__(self, base: str = "V") -> Variable:
        root = base.split("#", 1)[0]
        return Variable(f"{root}#{next(self._counter)}")


def rename_apart(atoms: Tuple[Atom, ...],
                 factory: fresh_variable_factory) -> Tuple[Atom, ...]:
    """Return the atoms with every variable consistently replaced by a
    fresh one from ``factory``.

    Shared variables stay shared: renaming ``(p(X, Y), q(X))`` yields
    ``(p(X#i, Y#j), q(X#i))``.
    """
    mapping: Dict[Variable, Term] = {}
    for atom in atoms:
        for var in atom.variables():
            if var not in mapping:
                mapping[var] = factory(var.name)
    subst = Substitution(mapping)
    return tuple(atom.substitute(subst) for atom in atoms)

"""Query-Subquery Nets: goal-directed set-at-a-time evaluation.

The third evaluation strategy, after top-down SLD resolution
(:mod:`repro.datalog.engine`) and bottom-up fixpoints
(:mod:`repro.datalog.bottomup`).  QSQ-nets [arXiv:1201.2564] evaluate a
query *goal-directedly* like the top-down engine — only subqueries
reachable from the user's query are ever explored — but
*set-at-a-time* like the bottom-up engine: every derived fact is
tabled in a global answer relation per predicate, so recursion
terminates without loop checks or depth bounds.

The net:

* an **input relation** per predicate holds the registered subqueries
  (goal patterns), canonicalized so that variants collapse to one
  entry — the adornment structure of the QSQ literature;
* an **answer relation** per predicate tables every derived fact;
* per rule, a compiled :class:`_RuleNet` of edges — one per body
  literal, classified once as extensional or intensional, positive or
  negated — through which an *activation* propagates a subquery
  left-to-right, joining each edge against the database (extensional)
  or the answer relation (intensional) and registering child
  subqueries as it goes.

Evaluation drains a fixpoint: activations run until no activation
derives a new answer or registers a new subquery.  Stratified negation
falls back to tuple-at-a-time: when an activation reaches a negated
edge, the (partially) bound goal's *own* subquery is registered and
the strictly-lower strata are drained to completion before the
emptiness test — sound because stratification guarantees the negated
predicate's stratum lies strictly below the head's.

Everything rides the PR-7 hot-path machinery: rules are joined through
their compiled :class:`~repro.datalog.rules.RulePlan` slot arrays,
facts are enumerated via :meth:`Database.facts_matching`, and atoms
are built with the trusted :meth:`Atom._make` constructor.  All
iteration runs over insertion-ordered dicts, so answer enumeration
order and billed probe counts are byte-identical across
``PYTHONHASHSEED`` values.

Like :class:`~repro.datalog.bottomup.BottomUpEngine`, net state is
cached per database *state* (``Database.cache_key``): repeat queries
against an unmutated database reuse the tabled answers, a mutation
invalidates the whole net.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from .database import Database
from .engine import Answer, CostModel, ProofTrace
from .rules import LiteralPlan, Rule, RuleBase
from .terms import Atom, Constant, Substitution, Term, Variable

__all__ = ["QSQNEngine"]

#: Edge kinds, fixed at net-compile time from the rule base alone.
_EDB = 0       # extensional: join against the fact database
_IDB = 1       # intensional: register subquery, join against answers
_NEG_EDB = 2   # negated extensional: satisficing database probe
_NEG_IDB = 3   # negated intensional: drain lower strata, then test


class _RuleNet:
    """One rule compiled to net edges: the per-rule node/edge structure.

    ``edges`` lists the body literals in processing order — positive
    literals first (original body order), then negated literals — each
    tagged with its compile-time kind.  Processing negations after all
    positives mirrors the bottom-up join, so a negated literal's
    non-local variables are bound before the emptiness test no matter
    where the literal sits in the source rule.
    """

    __slots__ = ("rule", "plan", "edges")

    def __init__(self, rule: Rule, idb) -> None:
        self.rule = rule
        self.plan = rule.plan
        edges: List[Tuple[int, LiteralPlan]] = []
        for lp in self.plan.positive:
            edges.append((_IDB if lp.signature in idb else _EDB, lp))
        for lp in self.plan.negated:
            edges.append((_NEG_IDB if lp.signature in idb else _NEG_EDB, lp))
        self.edges = tuple(edges)


class _NetState:
    """The mutable net state for one database state.

    ``input`` maps each predicate signature to its registered
    subqueries (canonical key -> representative pattern atom);
    ``ans`` tables the derived facts per signature.  Both levels are
    insertion-ordered dicts — enumeration never touches hash order.
    ``version`` counts net growth events (new answer or new subquery);
    ``processed`` memoizes, per (signature, key, rule index), the
    version at which the activation last ran, so the fixpoint loop
    skips activations whose inputs cannot have changed.
    """

    __slots__ = ("input", "ans", "version", "processed", "activations")

    def __init__(self) -> None:
        self.input: Dict[Tuple[str, int], Dict[tuple, Atom]] = {}
        self.ans: Dict[Tuple[str, int], Dict[Atom, None]] = {}
        self.version = 0
        self.processed: Dict[Tuple[Tuple[str, int], tuple, int], int] = {}
        self.activations = 0


def _matches(fact: Atom, pattern: Atom) -> bool:
    """Whether a ground fact is an instance of ``pattern``.

    Honours repeated variables (``p(X, X)`` only matches facts whose
    two arguments coincide), which ``Database.facts_matching`` already
    does for stored facts — answer-relation scans need the same check.
    """
    bindings: Dict[Variable, Term] = {}
    for p_arg, f_arg in zip(pattern.args, fact.args):
        if type(p_arg) is Variable:
            bound = bindings.get(p_arg)
            if bound is None:
                bindings[p_arg] = f_arg
            elif bound != f_arg:
                return False
        elif p_arg != f_arg:
            return False
    return True


class QSQNEngine:
    """Goal-directed set-at-a-time evaluation over a QSQ-net.

    The public surface matches the other two engines — :meth:`prove`,
    :meth:`answers`, :meth:`holds` — and bills the same unit-cost
    model: one reduction per rule activation, one retrieval per
    database probe.  Mixed predicates (rules *and* stored facts) take
    answers from both sources, matching the inference-graph view the
    top-down engine and the bottom-up model share.
    """

    def __init__(
        self,
        rule_base: RuleBase,
        cost_model: Optional[CostModel] = None,
    ):
        self.rule_base = rule_base
        self.cost_model = cost_model or CostModel()
        self._idb = rule_base.idb_predicates()
        # Net compilation: one _RuleNet per rule, grouped by head
        # signature in rule-base order.
        self._net: Dict[Tuple[str, int], List[_RuleNet]] = {}
        for rule in rule_base:
            self._net.setdefault(rule.head.signature, []).append(
                _RuleNet(rule, self._idb)
            )
        # Stratum levels gate the nested drains under negation.  The
        # stratification raises on non-stratifiable rule bases, the
        # same contract the bottom-up engine enforces.
        self._level: Dict[Tuple[str, int], int] = {}
        for level, signatures in enumerate(rule_base.stratification()):
            for signature in signatures:
                self._level[signature] = level
        self._top_level = max(self._level.values(), default=0)
        # identity component of cache_key -> (generation, net state)
        self._cache: Dict[int, Tuple[int, _NetState]] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def prove(self, query: Atom, database: Database) -> Answer:
        """Satisficing entry point: the first tabled answer, with trace."""
        trace = ProofTrace()
        for fact in self._answer_facts(query, database, trace):
            return Answer(True, self._binding(query, fact), trace)
        return Answer(False, Substitution(), trace)

    def answers(
        self, query: Atom, database: Database, limit: Optional[int] = None
    ) -> Iterator[Answer]:
        """Yield up to ``limit`` distinct answers, sharing one trace."""
        trace = ProofTrace()
        produced = 0
        for fact in self._answer_facts(query, database, trace):
            yield Answer(True, self._binding(query, fact), trace)
            produced += 1
            if limit is not None and produced >= limit:
                return

    def holds(self, query: Atom, database: Database) -> bool:
        """Boolean convenience wrapper over :meth:`prove`."""
        return self.prove(query, database).proved

    def invalidate(self, database: Optional[Database] = None) -> None:
        """Drop cached net states (all of them, or one database's)."""
        if database is None:
            self._cache.clear()
        else:
            self._cache.pop(database.cache_key[0], None)

    # ------------------------------------------------------------------
    # Net evaluation
    # ------------------------------------------------------------------

    def _state(self, database: Database) -> _NetState:
        """The net state for this database *state* (cached, like the
        bottom-up model cache: keyed on ``(identity, generation)``)."""
        identity, generation = database.cache_key
        cached = self._cache.get(identity)
        if cached is None or cached[0] != generation:
            cached = (generation, _NetState())
            self._cache[identity] = cached
        return cached[1]

    def _answer_facts(
        self, query: Atom, database: Database, trace: ProofTrace
    ) -> Iterator[Atom]:
        """Ground instances of ``query``: database facts first (for
        extensional and mixed predicates), then tabled answers, both in
        insertion order, deduplicated."""
        signature = query.signature
        state = self._state(database)
        if signature in self._idb:
            self._register(state, signature, query)
            self._drain(state, database, trace, self._top_level)
        seen: Dict[Atom, None] = {}
        if signature not in self._net or signature in database.signatures():
            cost = self.cost_model.retrieval(query)
            found = False
            for fact in database.facts_matching(query):
                if not found:
                    trace.record_retrieval(query, True, cost)
                    found = True
                seen[fact] = None
                yield fact
            if not found:
                trace.record_retrieval(query, False, cost)
        for fact in list(state.ans.get(signature, ())):
            if fact not in seen and _matches(fact, query):
                seen[fact] = None
                yield fact

    @staticmethod
    def _binding(query: Atom, fact: Atom) -> Substitution:
        """The substitution sending ``query`` to ``fact``, restricted to
        the query's variables (consistency already checked)."""
        bindings: Dict[Variable, Term] = {}
        for q_arg, f_arg in zip(query.args, fact.args):
            if type(q_arg) is Variable and q_arg not in bindings:
                bindings[q_arg] = f_arg
        return Substitution._resolved(bindings)

    @staticmethod
    def _canonical(pattern: Atom) -> tuple:
        """The relaxed canonical subquery key: constants stay, every
        variable position becomes the free marker.

        Relaxation (dropping repeated-variable constraints from the
        *subquery*, never from the rule) is sound — any fact derived
        under the relaxed goal is still a valid consequence of the
        program — and complete, since the relaxed goal subsumes the
        original.  It collapses ``p(X, Y)`` and ``p(X, X)`` into one
        input-relation entry, which is exactly the adorned form."""
        return (pattern.predicate, pattern.arity) + tuple(
            arg if type(arg) is Constant else None for arg in pattern.args
        )

    def _register(
        self, state: _NetState, signature: Tuple[str, int], pattern: Atom
    ) -> None:
        """Add a subquery to the input relation (variant-deduplicated)."""
        key = self._canonical(pattern)
        inputs = state.input.get(signature)
        if inputs is None:
            inputs = state.input[signature] = {}
        if key not in inputs:
            inputs[key] = pattern
            state.version += 1

    def _drain(
        self,
        state: _NetState,
        database: Database,
        trace: ProofTrace,
        upto: int,
    ) -> None:
        """Run activations at strata ``<= upto`` to a fixpoint.

        Deterministic sweep order: registered signatures in insertion
        order, subqueries in registration order, rules in rule-base
        order.  The per-activation version memo keeps the sweep from
        re-running activations whose inputs cannot have grown."""
        changed = True
        while changed:
            changed = False
            for signature in list(state.input):
                if self._level.get(signature, 0) > upto:
                    continue
                nets = self._net.get(signature)
                if not nets:
                    continue
                for key in list(state.input[signature]):
                    pattern = state.input[signature][key]
                    for index, net in enumerate(nets):
                        memo = (signature, key, index)
                        if state.processed.get(memo) == state.version:
                            continue
                        before = state.version
                        self._activate(state, net, pattern, database, trace)
                        # Memoize the version the activation *started*
                        # from: an activation that grew the relations
                        # (even if only through its own emissions) must
                        # run again, since its joins snapshotted the
                        # answer relations before those facts landed.
                        state.processed[memo] = before
                        if state.version != before:
                            changed = True

    def _activate(
        self,
        state: _NetState,
        net: _RuleNet,
        subquery: Atom,
        database: Database,
        trace: ProofTrace,
    ) -> None:
        """Propagate one subquery through one rule's net edges.

        The subquery is unified (relaxed) against the head's slot
        array; the supplementary tuples then flow through the edges by
        a backtracking join that binds slots straight from fact
        argument tuples — the same representation the bottom-up join
        uses, but seeded by the subquery's constants."""
        plan = net.plan
        slots: List[Optional[Term]] = [None] * plan.nslots
        for spec, q_arg in zip(plan.head_args, subquery.args):
            if type(q_arg) is Variable:
                continue  # relaxed: a subquery variable binds nothing
            if type(spec) is int:
                current = slots[spec]
                if current is None:
                    slots[spec] = q_arg
                elif current != q_arg:
                    return  # repeated head slot vs. distinct constants
            elif spec != q_arg:
                return  # head constant conflicts with subquery constant
        state.activations += 1
        trace.record_reduction(self.cost_model.reduction(net.rule))

        slot_vars = plan.slot_vars
        edges = net.edges
        n_edges = len(edges)
        signatures = database.signatures()
        head_signature = net.rule.head.signature
        head_predicate = net.rule.head.predicate
        head_args = plan.head_args
        retrieval = self.cost_model.retrieval

        def pattern_for(lp: LiteralPlan) -> Atom:
            args: List[Term] = []
            for spec in lp.args:
                if type(spec) is int:
                    value = slots[spec]
                    args.append(value if value is not None
                                else slot_vars[spec])
                else:
                    args.append(spec)
            return Atom._make(lp.predicate, tuple(args))

        def emit() -> None:
            args: List[Term] = []
            for spec in head_args:
                if type(spec) is int:
                    value = slots[spec]
                    if value is None:
                        # Unreachable for safe rules: every head
                        # variable occurs in a positive body literal.
                        return
                    args.append(value)
                else:
                    args.append(spec)
            fact = Atom._make(head_predicate, tuple(args))
            answers = state.ans.get(head_signature)
            if answers is None:
                answers = state.ans[head_signature] = {}
            if fact not in answers:
                answers[fact] = None
                state.version += 1

        def walk(level: int) -> None:
            if level == n_edges:
                emit()
                return
            kind, lp = edges[level]
            if kind >= _NEG_EDB:
                goal = pattern_for(lp)
                if not self._negation_blocked(
                    state, goal, kind, database, trace
                ):
                    walk(level + 1)
                return
            pattern = pattern_for(lp)
            specs = lp.args

            def extend(fact: Atom) -> None:
                bound_here: List[int] = []
                for spec, f_arg in zip(specs, fact.args):
                    if type(spec) is int and slots[spec] is None:
                        slots[spec] = f_arg
                        bound_here.append(spec)
                walk(level + 1)
                for spec in bound_here:
                    slots[spec] = None

            stored = kind == _EDB or lp.signature in signatures
            if stored:
                cost = retrieval(pattern)
                found = False
                for fact in database.facts_matching(pattern):
                    if not found:
                        trace.record_retrieval(pattern, True, cost)
                        found = True
                    extend(fact)
                if not found:
                    trace.record_retrieval(pattern, False, cost)
            if kind == _IDB:
                self._register(state, lp.signature, pattern)
                for fact in list(state.ans.get(lp.signature, ())):
                    if stored and fact in database:
                        continue  # already joined from the database
                    if _matches(fact, pattern):
                        extend(fact)

        walk(0)

    def _negation_blocked(
        self,
        state: _NetState,
        goal: Atom,
        kind: int,
        database: Database,
        trace: ProofTrace,
    ) -> bool:
        """Tuple-at-a-time negation test for one supplementary tuple.

        Unbound positions of ``goal`` are the literal-local existential
        variables the safety check licenses: the negation is blocked
        iff *any* matching instance holds.  For intensional predicates
        the goal's own subquery is registered and the strictly-lower
        strata are drained to completion first, so the answer relation
        is complete for this goal before the emptiness test."""
        if kind == _NEG_IDB:
            signature = goal.signature
            self._register(state, signature, goal)
            self._drain(
                state, database, trace, self._level.get(signature, 0)
            )
            for fact in list(state.ans.get(signature, ())):
                if _matches(fact, goal):
                    return True
            if signature not in database.signatures():
                return False
        cost = self.cost_model.retrieval(goal)
        blocked = database.succeeds(goal)
        trace.record_retrieval(goal, blocked, cost)
        return blocked

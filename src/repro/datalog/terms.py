"""Core Datalog term language: constants, variables, atoms, substitutions.

The paper's knowledge bases contain a database of *ground atomic facts*
and a rule base of *Datalog rules* (function-free Horn clauses).  This
module supplies the term-level vocabulary those objects are written in:

* :class:`Constant` — an uninterpreted symbol such as ``manolis`` or an
  interpreted literal value (``42``, ``"abc"``);
* :class:`Variable` — a logic variable such as ``X``;
* :class:`Atom` — a predicate applied to terms, e.g.
  ``instructor(manolis)``;
* :class:`Substitution` — an immutable mapping from variables to terms,
  applied with :meth:`Substitution.apply`.

All objects are immutable, hashable and comparable, so they can be used
freely as dictionary keys and set members — the database indexes depend
on this.

Terms sit on the engine's hottest path (every unification, every index
probe, every trace event hashes and compares them), so the
representation is tuned accordingly:

* hashes are computed **once at construction** and stored in a slot;
* :class:`Variable` and :class:`Constant` are **interned** through a
  bounded table, so the working set compares by identity first (the
  table stops growing past its cap instead of evicting, which keeps a
  long-lived serving process from leaking through fresh-variable
  churn);
* :class:`Atom` precomputes ``signature`` and ``is_ground`` as plain
  attributes and exposes the trusted fast constructor
  :meth:`Atom._make` for callers (the compiled rule plans, the fact
  indexes) that already hold a tuple of ``Term`` arguments.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Term",
    "Constant",
    "Variable",
    "Atom",
    "Substitution",
    "EMPTY_SUBSTITUTION",
    "make_term",
    "variables_of",
]

#: Interning stops (new objects are still created, just not remembered)
#: once a table reaches this many entries, bounding memory under
#: adversarial workloads such as fresh-variable churn in a long-lived
#: serving process.
_INTERN_LIMIT = 1 << 16


class Term:
    """Abstract base class for Datalog terms (constants and variables)."""

    __slots__ = ()

    @property
    def is_ground(self) -> bool:
        """Whether the term contains no variables."""
        raise NotImplementedError

    def substitute(self, subst: "Substitution") -> "Term":
        """Return the term with ``subst`` applied."""
        raise NotImplementedError


class Constant(Term):
    """An uninterpreted constant symbol or interpreted literal value.

    The ``value`` may be any hashable Python object; in practice the
    parser produces strings, integers and floats.  Two constants are
    equal iff their values are equal and of the same type, so the
    constant ``1`` and the constant ``"1"`` are distinct.
    """

    __slots__ = ("value", "_hash")

    is_ground = True  # shadows Term.is_ground: constants are ground

    _intern: Dict[tuple, "Constant"] = {}

    def __new__(cls, value):
        if isinstance(value, Term):
            raise TypeError("Constant value must be a plain value, not a Term")
        key = (value.__class__, value)
        table = cls._intern
        cached = table.get(key)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        self.value = value
        self._hash = hash((Constant, type(value).__name__, value))
        if len(table) < _INTERN_LIMIT:
            table[key] = self
        return self

    def substitute(self, subst: "Substitution") -> "Constant":
        return self

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, Constant)
            and type(self.value) is type(other.value)
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Constant, (self.value,))

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        return str(self.value)


class Variable(Term):
    """A logic variable, identified by name.

    Variables are scoped per clause; :func:`repro.datalog.unify.rename_apart`
    freshens them before resolution.  Names beginning with ``_`` are
    conventionally anonymous but receive no special treatment here.
    """

    __slots__ = ("name", "_hash")

    is_ground = False  # shadows Term.is_ground: variables never are

    _intern: Dict[str, "Variable"] = {}

    def __new__(cls, name: str):
        table = cls._intern
        cached = table.get(name)
        if cached is not None:
            return cached
        if not isinstance(name, str) or not name:
            raise TypeError("Variable name must be a non-empty string")
        self = super().__new__(cls)
        self.name = name
        self._hash = hash((Variable, name))
        if len(table) < _INTERN_LIMIT:
            table[name] = self
        return self

    def substitute(self, subst: "Substitution") -> Term:
        return subst.get(self, self)

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Variable, (self.name,))

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name


def make_term(value) -> Term:
    """Coerce a Python value into a :class:`Term`.

    Existing terms pass through; strings that look like Datalog
    variables (leading uppercase letter or underscore) become
    :class:`Variable`; everything else becomes :class:`Constant`.
    """
    if isinstance(value, Term):
        return value
    if isinstance(value, str) and value and (value[0].isupper() or value[0] == "_"):
        return Variable(value)
    return Constant(value)


class Atom:
    """A predicate applied to a tuple of terms, e.g. ``prof(manolis)``.

    ``predicate`` is the relation name; ``args`` is the (possibly empty)
    argument tuple.  Atoms are immutable and hashable; ``signature``,
    ``is_ground`` and the hash are computed once at construction.
    """

    __slots__ = ("predicate", "args", "signature", "is_ground", "_hash")

    def __init__(self, predicate: str, args: Sequence = ()):
        if not isinstance(predicate, str) or not predicate:
            raise TypeError("predicate must be a non-empty string")
        self.predicate = predicate
        self.args: Tuple[Term, ...] = tuple(make_term(a) for a in args)
        self.signature = (predicate, len(self.args))
        self.is_ground = all(type(a) is not Variable for a in self.args)
        self._hash = hash((Atom, predicate, self.args))

    @classmethod
    def _make(cls, predicate: str, args: Tuple[Term, ...]) -> "Atom":
        """Trusted fast constructor: ``args`` must already be a tuple of
        :class:`Term` objects.  Skips coercion and validation — this is
        the constructor the compiled rule plans and indexes use."""
        atom = object.__new__(cls)
        atom.predicate = predicate
        atom.args = args
        atom.signature = (predicate, len(args))
        atom.is_ground = all(type(a) is not Variable for a in args)
        atom._hash = hash((Atom, predicate, args))
        return atom

    @property
    def arity(self) -> int:
        """Number of arguments."""
        return len(self.args)

    def variables(self) -> Iterator[Variable]:
        """Yield the variables of the atom, left to right, with repeats."""
        for arg in self.args:
            if type(arg) is Variable:
                yield arg

    def substitute(self, subst: "Substitution") -> "Atom":
        """Return the atom with ``subst`` applied to every argument."""
        if not subst:
            return self
        changed = False
        new_args = []
        for arg in self.args:
            new = arg.substitute(subst)
            if new is not arg:
                changed = True
            new_args.append(new)
        if not changed:
            return self
        return Atom._make(self.predicate, tuple(new_args))

    def binding_pattern(self) -> str:
        """The paper's query-form adornment: ``'b'``/``'f'`` per argument.

        An argument is bound (``b``) when it is a constant and free
        (``f``) when it is a variable; ``instructor(manolis)`` has
        pattern ``"b"`` and ``age(russ, X)`` has pattern ``"bf"``.
        """
        return "".join("b" if a.is_ground else "f" for a in self.args)

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, Atom)
            and self._hash == other._hash
            and self.predicate == other.predicate
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Atom, (self.predicate, self.args))

    def __repr__(self) -> str:
        return f"Atom({self.predicate!r}, {list(self.args)!r})"

    def __str__(self) -> str:
        if not self.args:
            return self.predicate
        return f"{self.predicate}({', '.join(str(a) for a in self.args)})"


class Substitution(Mapping[Variable, Term]):
    """An immutable mapping from variables to terms.

    Bindings are *fully resolved at construction*: if the raw mapping
    sends ``X -> Y`` and ``Y -> c``, the stored binding is ``X -> c``.
    This keeps :meth:`apply` a single-pass operation and makes composed
    substitutions idempotent, a property the unit tests rely on.
    """

    __slots__ = ("_bindings", "_hash")

    def __init__(self, bindings: Optional[Mapping[Variable, Term]] = None):
        resolved: Dict[Variable, Term] = {}
        raw = dict(bindings) if bindings else {}
        for var, term in raw.items():
            if not isinstance(var, Variable):
                raise TypeError(f"substitution keys must be Variables, got {var!r}")
            if not isinstance(term, Term):
                term = make_term(term)
            resolved[var] = _walk(term, raw)
        for var, term in resolved.items():
            if var == term:
                raise ValueError(f"substitution binds {var} to itself")
        self._bindings = resolved
        self._hash = None

    @classmethod
    def _resolved(cls, bindings: Dict[Variable, Term]) -> "Substitution":
        """Trusted fast constructor: ``bindings`` must already be fully
        resolved (no value is itself a bound variable) and free of
        identity bindings.  The dict is adopted, not copied — callers
        must hand over ownership."""
        sub = object.__new__(cls)
        sub._bindings = bindings
        sub._hash = None
        return sub

    def __getitem__(self, var: Variable) -> Term:
        return self._bindings[var]

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._bindings)

    def __len__(self) -> int:
        return len(self._bindings)

    def get(self, var: Variable, default=None):
        return self._bindings.get(var, default)

    def apply(self, target: Union[Term, Atom]) -> Union[Term, Atom]:
        """Apply the substitution to a term or atom."""
        return target.substitute(self)

    def compose(self, other: "Substitution") -> "Substitution":
        """Return ``self`` followed by ``other`` (``other ∘ self``).

        Applying the result is equivalent to applying ``self`` and then
        ``other``.
        """
        mine = self._bindings
        theirs = other._bindings
        if not theirs:
            return self
        if not mine:
            return other
        merged: Dict[Variable, Term] = {}
        for var, term in mine.items():
            # Both inputs are fully resolved, so one substitution step
            # fully resolves the composed binding.
            new = term.substitute(other) if type(term) is Variable else term
            if var is not new and var != new:
                merged[var] = new
        for var, term in theirs.items():
            if var not in merged and var not in mine:
                merged[var] = term
        return Substitution._resolved(merged)

    def restrict(self, variables: Iterable[Variable]) -> "Substitution":
        """Project the substitution onto ``variables``."""
        bindings = self._bindings
        return Substitution._resolved(
            {v: bindings[v] for v in set(variables) if v in bindings}
        )

    def is_ground(self) -> bool:
        """Whether every binding maps to a ground term."""
        return all(t.is_ground for t in self._bindings.values())

    def __eq__(self, other) -> bool:
        return isinstance(other, Substitution) and self._bindings == other._bindings

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._bindings.items()))
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{v}: {t}" for v, t in sorted(
            self._bindings.items(), key=lambda item: item[0].name))
        return "{" + inner + "}"


def _walk(term: Term, bindings: Mapping[Variable, Term]) -> Term:
    """Chase variable-to-variable links in ``bindings`` to a fixed point."""
    seen = set()
    while isinstance(term, Variable) and term in bindings:
        if term in seen:
            raise ValueError(f"cyclic substitution through {term}")
        seen.add(term)
        term = bindings[term]
        if not isinstance(term, Term):
            term = make_term(term)
    return term


EMPTY_SUBSTITUTION = Substitution()


def variables_of(*items: Union[Term, Atom]) -> "set[Variable]":
    """Collect the set of variables occurring in the given terms/atoms."""
    found: set = set()
    for item in items:
        if isinstance(item, Variable):
            found.add(item)
        elif isinstance(item, Atom):
            found.update(item.variables())
    return found

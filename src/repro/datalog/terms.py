"""Core Datalog term language: constants, variables, atoms, substitutions.

The paper's knowledge bases contain a database of *ground atomic facts*
and a rule base of *Datalog rules* (function-free Horn clauses).  This
module supplies the term-level vocabulary those objects are written in:

* :class:`Constant` — an uninterpreted symbol such as ``manolis`` or an
  interpreted literal value (``42``, ``"abc"``);
* :class:`Variable` — a logic variable such as ``X``;
* :class:`Atom` — a predicate applied to terms, e.g.
  ``instructor(manolis)``;
* :class:`Substitution` — an immutable mapping from variables to terms,
  applied with :meth:`Substitution.apply`.

All objects are immutable, hashable and comparable, so they can be used
freely as dictionary keys and set members — the database indexes depend
on this.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Term",
    "Constant",
    "Variable",
    "Atom",
    "Substitution",
    "EMPTY_SUBSTITUTION",
    "make_term",
    "variables_of",
]


class Term:
    """Abstract base class for Datalog terms (constants and variables)."""

    __slots__ = ()

    @property
    def is_ground(self) -> bool:
        """Whether the term contains no variables."""
        raise NotImplementedError

    def substitute(self, subst: "Substitution") -> "Term":
        """Return the term with ``subst`` applied."""
        raise NotImplementedError


class Constant(Term):
    """An uninterpreted constant symbol or interpreted literal value.

    The ``value`` may be any hashable Python object; in practice the
    parser produces strings, integers and floats.  Two constants are
    equal iff their values are equal and of the same type, so the
    constant ``1`` and the constant ``"1"`` are distinct.
    """

    __slots__ = ("value",)

    def __init__(self, value):
        if isinstance(value, Term):
            raise TypeError("Constant value must be a plain value, not a Term")
        self.value = value

    @property
    def is_ground(self) -> bool:
        return True

    def substitute(self, subst: "Substitution") -> "Constant":
        return self

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Constant)
            and type(self.value) is type(other.value)
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((Constant, type(self.value).__name__, self.value))

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        return str(self.value)


class Variable(Term):
    """A logic variable, identified by name.

    Variables are scoped per clause; :func:`repro.datalog.unify.rename_apart`
    freshens them before resolution.  Names beginning with ``_`` are
    conventionally anonymous but receive no special treatment here.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise TypeError("Variable name must be a non-empty string")
        self.name = name

    @property
    def is_ground(self) -> bool:
        return False

    def substitute(self, subst: "Substitution") -> Term:
        return subst.get(self, self)

    def __eq__(self, other) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return hash((Variable, self.name))

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name


def make_term(value) -> Term:
    """Coerce a Python value into a :class:`Term`.

    Existing terms pass through; strings that look like Datalog
    variables (leading uppercase letter or underscore) become
    :class:`Variable`; everything else becomes :class:`Constant`.
    """
    if isinstance(value, Term):
        return value
    if isinstance(value, str) and value and (value[0].isupper() or value[0] == "_"):
        return Variable(value)
    return Constant(value)


class Atom:
    """A predicate applied to a tuple of terms, e.g. ``prof(manolis)``.

    ``predicate`` is the relation name; ``args`` is the (possibly empty)
    argument tuple.  Atoms are immutable and hashable.
    """

    __slots__ = ("predicate", "args", "_hash")

    def __init__(self, predicate: str, args: Sequence = ()):
        if not isinstance(predicate, str) or not predicate:
            raise TypeError("predicate must be a non-empty string")
        self.predicate = predicate
        self.args: Tuple[Term, ...] = tuple(make_term(a) for a in args)
        self._hash = hash((Atom, predicate, self.args))

    @property
    def arity(self) -> int:
        """Number of arguments."""
        return len(self.args)

    @property
    def signature(self) -> Tuple[str, int]:
        """``(predicate, arity)`` pair identifying the relation."""
        return (self.predicate, len(self.args))

    @property
    def is_ground(self) -> bool:
        """Whether every argument is a constant."""
        return all(a.is_ground for a in self.args)

    def variables(self) -> Iterator[Variable]:
        """Yield the variables of the atom, left to right, with repeats."""
        for arg in self.args:
            if isinstance(arg, Variable):
                yield arg

    def substitute(self, subst: "Substitution") -> "Atom":
        """Return the atom with ``subst`` applied to every argument."""
        if not subst:
            return self
        return Atom(self.predicate, tuple(a.substitute(subst) for a in self.args))

    def binding_pattern(self) -> str:
        """The paper's query-form adornment: ``'b'``/``'f'`` per argument.

        An argument is bound (``b``) when it is a constant and free
        (``f``) when it is a variable; ``instructor(manolis)`` has
        pattern ``"b"`` and ``age(russ, X)`` has pattern ``"bf"``.
        """
        return "".join("b" if a.is_ground else "f" for a in self.args)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Atom)
            and self.predicate == other.predicate
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Atom({self.predicate!r}, {list(self.args)!r})"

    def __str__(self) -> str:
        if not self.args:
            return self.predicate
        return f"{self.predicate}({', '.join(str(a) for a in self.args)})"


class Substitution(Mapping[Variable, Term]):
    """An immutable mapping from variables to terms.

    Bindings are *fully resolved at construction*: if the raw mapping
    sends ``X -> Y`` and ``Y -> c``, the stored binding is ``X -> c``.
    This keeps :meth:`apply` a single-pass operation and makes composed
    substitutions idempotent, a property the unit tests rely on.
    """

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Optional[Mapping[Variable, Term]] = None):
        resolved: Dict[Variable, Term] = {}
        raw = dict(bindings) if bindings else {}
        for var, term in raw.items():
            if not isinstance(var, Variable):
                raise TypeError(f"substitution keys must be Variables, got {var!r}")
            if not isinstance(term, Term):
                term = make_term(term)
            resolved[var] = _walk(term, raw)
        for var, term in resolved.items():
            if var == term:
                raise ValueError(f"substitution binds {var} to itself")
        self._bindings = resolved

    def __getitem__(self, var: Variable) -> Term:
        return self._bindings[var]

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._bindings)

    def __len__(self) -> int:
        return len(self._bindings)

    def apply(self, target: Union[Term, Atom]) -> Union[Term, Atom]:
        """Apply the substitution to a term or atom."""
        return target.substitute(self)

    def compose(self, other: "Substitution") -> "Substitution":
        """Return ``self`` followed by ``other`` (``other ∘ self``).

        Applying the result is equivalent to applying ``self`` and then
        ``other``.
        """
        merged: Dict[Variable, Term] = {}
        for var, term in self._bindings.items():
            merged[var] = term.substitute(other)
        for var, term in other._bindings.items():
            if var not in merged:
                merged[var] = term
        # Drop identity bindings introduced by the composition.
        merged = {v: t for v, t in merged.items() if v != t}
        return Substitution(merged)

    def restrict(self, variables: Iterable[Variable]) -> "Substitution":
        """Project the substitution onto ``variables``."""
        keep = set(variables)
        return Substitution({v: t for v, t in self._bindings.items() if v in keep})

    def is_ground(self) -> bool:
        """Whether every binding maps to a ground term."""
        return all(t.is_ground for t in self._bindings.values())

    def __eq__(self, other) -> bool:
        return isinstance(other, Substitution) and self._bindings == other._bindings

    def __hash__(self) -> int:
        return hash(frozenset(self._bindings.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{v}: {t}" for v, t in sorted(
            self._bindings.items(), key=lambda item: item[0].name))
        return "{" + inner + "}"


def _walk(term: Term, bindings: Mapping[Variable, Term]) -> Term:
    """Chase variable-to-variable links in ``bindings`` to a fixed point."""
    seen = set()
    while isinstance(term, Variable) and term in bindings:
        if term in seen:
            raise ValueError(f"cyclic substitution through {term}")
        seen.add(term)
        term = bindings[term]
        if not isinstance(term, Term):
            term = make_term(term)
    return term


EMPTY_SUBSTITUTION = Substitution()


def variables_of(*items: Union[Term, Atom]) -> "set[Variable]":
    """Collect the set of variables occurring in the given terms/atoms."""
    found: set = set()
    for item in items:
        if isinstance(item, Variable):
            found.add(item)
        elif isinstance(item, Atom):
            found.update(item.variables())
    return found

"""Top-down SLD resolution: the paper's query processor substrate.

The query processor of the paper "uses the rules in a rule base to
reduce a given query to a series of attempted retrievals from a
database of facts".  This module implements that reduction:

* :class:`TopDownEngine` performs SLD resolution with the leftmost
  literal selection rule, negation-as-failure for ground negated
  subgoals, a depth bound, and a pluggable *rule-ordering policy* (the
  ordering is exactly the strategic choice PIB and PAO learn);
* :class:`CostModel` charges each rule reduction and each attempted
  retrieval, reproducing the paper's unit-cost accounting
  ("assume that each reduction … and each atomic retrieval costs 1
  unit");
* :class:`ProofTrace` records every attempted retrieval and its
  outcome — the only statistics PIB and PAO ever need (Section 5.1:
  "recording (at most) the number of times a query processor attempts
  each database retrieval and how often that retrieval succeeds").

The satisficing entry point is :meth:`TopDownEngine.prove`; the
all-answers generator :meth:`TopDownEngine.answers` supports the
substrate tests and the first-``k`` variant of Section 5.2.

Reduction attempts run over the compiled
:class:`~repro.datalog.rules.RulePlan` of each rule: the goal is
unified against the plan's positional head slots directly, and fresh
variables are minted only for body slots the goal left unbound.  This
replaces the original per-attempt ``rename_apart`` + ``unify`` +
``Substitution`` churn, which dominated the engine profile, while
charging the identical cost and producing the identical trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from .database import Database
from .rules import Rule, RuleBase
from .terms import (
    EMPTY_SUBSTITUTION,
    Atom,
    Substitution,
    Term,
    Variable,
    variables_of,
)
from .unify import fresh_variable_factory

__all__ = ["CostModel", "RetrievalEvent", "ProofTrace", "Answer", "TopDownEngine"]

#: A rule-ordering policy: given the goal and the candidate rules, return
#: the rules in the order they should be tried.  The default preserves
#: rule-base order (the paper's depth-first left-to-right strategies).
RuleOrder = Callable[[Atom, Sequence[Rule]], Sequence[Rule]]


@dataclass(frozen=True)
class CostModel:
    """Charges for the two unit operations of the paper's cost model.

    ``reduction_cost`` is paid each time a rule is used to reduce a
    goal to its body; ``retrieval_cost`` is paid for each *attempted*
    database retrieval, successful or not.  Both default to the paper's
    1 unit.  ``retrieval_cost`` may be a mapping from predicate name to
    cost for non-uniform access paths.
    """

    reduction_cost: float = 1.0
    retrieval_cost: float = 1.0
    per_predicate_retrieval: Optional[Dict[str, float]] = None

    def reduction(self, rule: Rule) -> float:
        return self.reduction_cost

    def retrieval(self, goal: Atom) -> float:
        if self.per_predicate_retrieval is not None:
            return self.per_predicate_retrieval.get(
                goal.predicate, self.retrieval_cost
            )
        return self.retrieval_cost


@dataclass(frozen=True)
class RetrievalEvent:
    """One attempted retrieval: the instantiated goal and its outcome."""

    goal: Atom
    succeeded: bool
    cost: float


@dataclass
class ProofTrace:
    """Everything observed while processing one query.

    ``cost`` is the total charged cost; ``retrievals`` lists each
    attempted retrieval in order; ``reductions`` counts rule uses.
    """

    cost: float = 0.0
    retrievals: List[RetrievalEvent] = field(default_factory=list)
    reductions: int = 0

    def record_retrieval(self, goal: Atom, succeeded: bool, cost: float) -> None:
        self.retrievals.append(RetrievalEvent(goal, succeeded, cost))
        self.cost += cost

    def record_reduction(self, cost: float) -> None:
        self.reductions += 1
        self.cost += cost

    def success_counts(self) -> Dict[Tuple[str, int], Tuple[int, int]]:
        """Per-signature ``(attempts, successes)`` counters.

        These are exactly the counters PIB maintains per retrieval.
        Counters are keyed by the full ``(predicate, arity)``
        signature: ``p/1`` and ``p/2`` are distinct retrievals and
        their statistics must never collide.
        """
        counts: Dict[Tuple[str, int], Tuple[int, int]] = {}
        for event in self.retrievals:
            signature = event.goal.signature
            attempts, successes = counts.get(signature, (0, 0))
            counts[signature] = (
                attempts + 1,
                successes + (1 if event.succeeded else 0),
            )
        return counts


@dataclass(frozen=True)
class Answer:
    """A satisficing answer: the binding found and the trace behind it.

    ``substitution`` is restricted to the query's own variables;
    ``proved`` is ``False`` for the "no" answer (trace still populated:
    a failed search has a cost, which is what the learners care about).
    """

    proved: bool
    substitution: Substitution
    trace: ProofTrace


#: A pending subgoal on the resolution stack: the (possibly non-ground)
#: atom, its polarity, and the canonical keys of its branch ancestors.
_Goal = Tuple[Atom, bool, FrozenSet[tuple]]


def _deref(term: Term, outer: Dict[Variable, Term]) -> Term:
    """Follow goal-variable bindings made during one head unification."""
    while type(term) is Variable:
        bound = outer.get(term)
        if bound is None:
            return term
        term = bound
    return term


class TopDownEngine:
    """SLD resolution over a rule base with pluggable rule ordering.

    The engine treats predicates with no defining rules as extensional
    (database retrievals); predicates defined by rules are reduced.  A
    predicate that has both rules and facts is tried against the rules
    *and* the database, rules first, mirroring the inference-graph view
    where a goal node can have both reduction and retrieval arcs.
    """

    def __init__(
        self,
        rule_base: RuleBase,
        cost_model: Optional[CostModel] = None,
        rule_order: Optional[RuleOrder] = None,
        max_depth: int = 64,
    ):
        self.rule_base = rule_base
        self.cost_model = cost_model or CostModel()
        self.rule_order = rule_order or (lambda goal, rules: rules)
        if max_depth <= 0:
            raise ValueError("max_depth must be positive")
        self.max_depth = max_depth
        # One factory for the engine's lifetime: fresh variables must
        # never collide across recursion depths of a single proof.
        self._factory = fresh_variable_factory()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def prove(self, query: Atom, database: Database) -> Answer:
        """Satisficing search: return the first answer found, with trace.

        This is the paper's query-processor run: follow rules and
        attempt retrievals, in strategy order, until one derivation
        succeeds or the space is exhausted.
        """
        trace = ProofTrace()
        for substitution in self._solve(
            [(query, True, frozenset())],
            EMPTY_SUBSTITUTION, database, trace, self.max_depth,
        ):
            answer = substitution.restrict(variables_of(query))
            return Answer(True, answer, trace)
        return Answer(False, EMPTY_SUBSTITUTION, trace)

    def answers(
        self, query: Atom, database: Database, limit: Optional[int] = None
    ) -> Iterator[Answer]:
        """Yield up to ``limit`` distinct answers (first-k of Section 5.2).

        Each yielded :class:`Answer` shares one cumulative trace, so the
        trace cost after consuming ``k`` answers is the cost of the
        first-``k`` search.
        """
        trace = ProofTrace()
        seen = set()
        produced = 0
        for substitution in self._solve(
            [(query, True, frozenset())],
            EMPTY_SUBSTITUTION, database, trace, self.max_depth,
        ):
            answer = substitution.restrict(variables_of(query))
            key = answer.apply(query)
            if key in seen:
                continue
            seen.add(key)
            yield Answer(True, answer, trace)
            produced += 1
            if limit is not None and produced >= limit:
                return

    def holds(self, query: Atom, database: Database) -> bool:
        """Boolean convenience wrapper over :meth:`prove`."""
        return self.prove(query, database).proved

    # ------------------------------------------------------------------
    # Resolution core
    # ------------------------------------------------------------------

    @staticmethod
    def _canonical(atom: Atom) -> tuple:
        """A variant-invariant key: variables numbered by first occurrence.

        Two atoms are variants (equal up to variable renaming) iff
        their canonical keys coincide; the loop check below uses this
        to recognize a subgoal that repeats one of its own ancestors.
        The key is a tuple of the predicate plus, per argument, the
        occurrence index for a variable or the constant itself — no
        string rendering (``int`` never equals ``Constant``, so the
        two kinds of entry cannot collide).
        """
        mapping: Dict[Variable, int] = {}
        parts: List[object] = [atom.predicate]
        for arg in atom.args:
            if type(arg) is Variable:
                index = mapping.get(arg)
                if index is None:
                    index = mapping[arg] = len(mapping)
                parts.append(index)
            else:
                parts.append(arg)
        return tuple(parts)

    def _reduce(
        self, rule: Rule, goal: Atom, ancestry: FrozenSet[tuple]
    ) -> Optional[Tuple[Substitution, List[_Goal]]]:
        """Attempt one rule reduction of ``goal`` via the compiled plan.

        Returns ``None`` when the head does not unify; otherwise the
        unifier restricted to the *goal's* variables plus the
        instantiated body as new pending goals.  Fresh variables are
        created only for plan slots the goal left unbound.
        """
        plan = rule.plan
        slots: List[Optional[Term]] = [None] * plan.nslots
        outer: Dict[Variable, Term] = {}

        for spec, garg in zip(plan.head_args, goal.args):
            if outer and type(garg) is Variable:
                garg = _deref(garg, outer)
            if type(spec) is int:
                cur = slots[spec]
                if cur is None:
                    slots[spec] = garg
                    continue
                if outer and type(cur) is Variable:
                    cur = _deref(cur, outer)
                if cur is garg or cur == garg:
                    continue
                if type(garg) is Variable:
                    outer[garg] = cur
                elif type(cur) is Variable:
                    outer[cur] = garg
                    slots[spec] = garg
                else:
                    return None  # two distinct constants
            else:  # head position is a constant
                if type(garg) is Variable:
                    outer[garg] = spec
                elif garg != spec:
                    return None

        if outer:
            for var, term in outer.items():
                while type(term) is Variable and term in outer:
                    term = outer[term]
                outer[var] = term
            unifier = Substitution._resolved(outer)
        else:
            unifier = EMPTY_SUBSTITUTION

        factory = self._factory
        body: List[_Goal] = []
        for lp in plan.body:
            args: List[Term] = []
            for spec in lp.args:
                if type(spec) is int:
                    value = slots[spec]
                    if value is None:
                        # First body occurrence of an unbound slot:
                        # mint one fresh variable, shared thereafter.
                        value = slots[spec] = factory(plan.slot_vars[spec].name)
                    args.append(value)
                else:
                    args.append(spec)
            body.append((Atom._make(lp.predicate, tuple(args)), lp.positive,
                         ancestry))
        return unifier, body

    def _solve(
        self,
        goals: List[_Goal],
        bindings: Substitution,
        database: Database,
        trace: ProofTrace,
        depth: int,
    ) -> Iterator[Substitution]:
        """Prove the conjunction ``goals`` under ``bindings`` (generator).

        Each pending goal carries the canonical keys of its *branch
        ancestors*; a selected subgoal that is a variant of one of them
        is pruned (the standard Datalog loop check — any proof through
        a repeated variant subgoal has a shorter proof without it), so
        recursive rule bases terminate without relying on the depth
        bound.
        """
        if not goals:
            yield bindings
            return
        if depth <= 0:
            return

        pending, positive, ancestry = goals[0]
        goal = pending.substitute(bindings)
        rest = goals[1:]

        if not positive:
            yield from self._solve_negation(
                goal, rest, bindings, database, trace, depth
            )
            return

        key = self._canonical(goal)
        if key in ancestry:
            return  # variant loop: this branch cannot make progress
        child_ancestry = ancestry | {key}
        rules = self.rule_base.rules_for(goal)

        # Rule reductions first (inference-graph order: reduction arcs
        # above retrieval arcs), then the database retrieval if the
        # relation is extensional or mixed.
        for rule in self.rule_order(goal, rules):
            reduced = self._reduce(rule, goal, child_ancestry)
            if reduced is None:
                continue
            unifier, body = reduced
            trace.record_reduction(self.cost_model.reduction(rule))
            yield from self._solve(
                body + rest, bindings.compose(unifier), database, trace,
                depth - 1,
            )

        if not rules or goal.signature in database.signatures():
            cost = self.cost_model.retrieval(goal)
            found = False
            compose = bindings.compose
            for fact_binding in database.retrieve(goal):
                if not found:
                    trace.record_retrieval(goal, True, cost)
                    found = True
                yield from self._solve(
                    rest, compose(fact_binding), database, trace, depth
                )
            if not found:
                trace.record_retrieval(goal, False, cost)

    def _solve_negation(
        self,
        atom: Atom,
        rest: List[_Goal],
        bindings: Substitution,
        database: Database,
        trace: ProofTrace,
        depth: int,
    ) -> Iterator[Substitution]:
        """Negation-as-failure: succeed iff the subgoal has no proof.

        Free variables remaining in the subgoal are read as
        existentially quantified *inside* the negation (the rule safety
        check guarantees they are local to the literal), so
        ``not owns(x, Y)`` succeeds iff ``x`` owns nothing.  The inner
        satisficing search is itself the pattern Section 5.2
        highlights — one owned item suffices to refute pauperhood.
        """
        for _ in self._solve(
            [(atom, True, frozenset())],
            EMPTY_SUBSTITUTION, database, trace, depth - 1,
        ):
            return  # a proof exists, so the negation fails
        yield from self._solve(rest, bindings, database, trace, depth)

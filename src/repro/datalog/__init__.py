"""Datalog substrate: terms, rules, parser, database, and evaluation.

This subpackage implements the knowledge-base machinery the paper's
query processor runs on: a database of ground atomic facts plus a rule
base of Datalog rules (Section 2), a top-down satisficing SLD engine,
a bottom-up semi-naive oracle, and a goal-directed set-at-a-time
query-subquery-net engine.
"""

from .terms import Atom, Constant, Substitution, Term, Variable, variables_of
from .unify import match, rename_apart, unify
from .rules import Literal, QueryForm, Rule, RuleBase
from .parser import parse_atom, parse_program, parse_query, parse_rule
from .database import Database
from .engine import Answer, CostModel, ProofTrace, RetrievalEvent, TopDownEngine
from .bottomup import BottomUpEngine, naive_evaluate, seminaive_evaluate
from .qsqn import QSQNEngine

__all__ = [
    "Atom",
    "Constant",
    "Substitution",
    "Term",
    "Variable",
    "variables_of",
    "match",
    "rename_apart",
    "unify",
    "Literal",
    "QueryForm",
    "Rule",
    "RuleBase",
    "parse_atom",
    "parse_program",
    "parse_query",
    "parse_rule",
    "Database",
    "Answer",
    "CostModel",
    "ProofTrace",
    "RetrievalEvent",
    "TopDownEngine",
    "BottomUpEngine",
    "QSQNEngine",
    "naive_evaluate",
    "seminaive_evaluate",
]

"""Rules, rule bases, query forms, safety and stratification.

A *rule* is a function-free definite clause ``head :- body`` whose body
is a conjunction of literals; a literal is an atom, possibly negated
(negation-as-failure, Section 5.2 of the paper).  A *rule base* is an
ordered collection of rules plus the derived predicate-level metadata
the rest of the library needs:

* which predicates are intensional (IDB: appear in some head) versus
  extensional (EDB: only ever retrieved from the fact database);
* the predicate dependency graph, recursion detection, and a
  stratification for rule bases that use negation;
* lookup of the rules whose head may unify with a goal.

Query forms (``q^(b,f,...)``, Section 2 of the paper) are modelled by
:class:`QueryForm`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import EvaluationError, StratificationError
from .terms import Atom, Substitution, Variable, variables_of

__all__ = ["Literal", "Rule", "RuleBase", "QueryForm", "RulePlan", "LiteralPlan"]


class Literal:
    """An atom with a polarity: positive, or negated (negation-as-failure)."""

    __slots__ = ("atom", "positive")

    def __init__(self, atom: Atom, positive: bool = True):
        if not isinstance(atom, Atom):
            raise TypeError("Literal wraps an Atom")
        self.atom = atom
        self.positive = bool(positive)

    def substitute(self, subst: Substitution) -> "Literal":
        return Literal(self.atom.substitute(subst), self.positive)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Literal)
            and self.atom == other.atom
            and self.positive == other.positive
        )

    def __hash__(self) -> int:
        return hash((Literal, self.atom, self.positive))

    def __repr__(self) -> str:
        return f"Literal({self.atom!r}, positive={self.positive})"

    def __str__(self) -> str:
        return str(self.atom) if self.positive else f"not {self.atom}"


class LiteralPlan:
    """One body literal of a :class:`RulePlan`, in positional form.

    ``args`` holds an ``int`` slot index per variable position and the
    :class:`~repro.datalog.terms.Constant` itself per constant
    position; ``signature`` is precomputed so join loops never rebuild
    the ``(predicate, arity)`` tuple.
    """

    __slots__ = ("predicate", "signature", "positive", "args")

    def __init__(self, atom: Atom, positive: bool, slot_of) -> None:
        self.predicate = atom.predicate
        self.signature = atom.signature
        self.positive = positive
        self.args = tuple(
            slot_of[arg] if isinstance(arg, Variable) else arg
            for arg in atom.args
        )

    def __repr__(self) -> str:
        return (f"LiteralPlan({self.predicate!r}, args={self.args!r}, "
                f"positive={self.positive})")


class RulePlan:
    """A rule precompiled to positional variable slots.

    Compiling replaces every variable of the rule by a small integer
    slot, once, so the engines stop paying per-attempt
    ``rename_apart`` + ``unify`` + string churn:

    * the top-down engine unifies a goal against ``head_args`` directly
      into a slot array, creating fresh variables only for the slots
      that remain unbound and only when they occur in the body;
    * the bottom-up engine joins ``positive`` literals over the fact
      indexes with the same slot array, binding slots from fact
      argument tuples instead of building ``Substitution`` objects.

    ``slot_vars[i]`` is the rule's original variable for slot ``i`` —
    the placeholder the bottom-up join uses in retrieval patterns.
    """

    __slots__ = ("nslots", "slot_vars", "head_args", "body",
                 "positive", "negated")

    def __init__(self, rule: "Rule") -> None:
        # Slot numbering must be deterministic (first occurrence, left
        # to right) — never via a set, whose order is hash-dependent.
        slot_of: Dict[Variable, int] = {}
        for var in rule.head.variables():
            slot_of.setdefault(var, len(slot_of))
        for literal in rule.body:
            for var in literal.atom.variables():
                slot_of.setdefault(var, len(slot_of))
        self.nslots = len(slot_of)
        self.slot_vars = tuple(slot_of)  # insertion order == slot index
        self.head_args = tuple(
            slot_of[arg] if isinstance(arg, Variable) else arg
            for arg in rule.head.args
        )
        self.body = tuple(
            LiteralPlan(literal.atom, literal.positive, slot_of)
            for literal in rule.body
        )
        self.positive = tuple(lp for lp in self.body if lp.positive)
        self.negated = tuple(lp for lp in self.body if not lp.positive)

    def __repr__(self) -> str:
        return f"RulePlan({self.nslots} slots, {len(self.body)} literals)"


class Rule:
    """A Datalog rule ``head :- body`` (facts are rules with empty body).

    ``name`` is an optional label used when rendering inference graphs;
    the paper labels its rules :math:`\\mathcal{R}_p`,
    :math:`\\mathcal{R}_g` and so on.
    """

    __slots__ = ("head", "body", "name", "_plan")

    def __init__(self, head: Atom, body: Sequence[Literal] = (),
                 name: Optional[str] = None):
        if not isinstance(head, Atom):
            raise TypeError("rule head must be an Atom")
        normalized: List[Literal] = []
        for item in body:
            if isinstance(item, Atom):
                item = Literal(item)
            if not isinstance(item, Literal):
                raise TypeError("rule body items must be Atoms or Literals")
            normalized.append(item)
        self.head = head
        self.body: Tuple[Literal, ...] = tuple(normalized)
        self.name = name
        self._plan: Optional[RulePlan] = None

    @property
    def is_fact(self) -> bool:
        """Whether the rule has an empty body (i.e. is a ground fact rule)."""
        return not self.body

    @property
    def plan(self) -> RulePlan:
        """The rule's compiled :class:`RulePlan` (built once, cached).

        Rules are immutable, so the plan is a pure function of the rule
        and safe to share across engines.
        """
        plan = self._plan
        if plan is None:
            plan = self._plan = RulePlan(self)
        return plan

    @property
    def is_disjunctive_simple(self) -> bool:
        """Whether the body has at most one literal.

        The paper's "simple disjunctive inference graphs" (Note 4) arise
        from rule bases in which every rule satisfies this predicate.
        """
        return len(self.body) <= 1

    def variables(self) -> Set[Variable]:
        """All variables occurring anywhere in the rule."""
        found = variables_of(self.head)
        for literal in self.body:
            found |= variables_of(literal.atom)
        return found

    def check_safety(self) -> None:
        """Raise :class:`EvaluationError` unless the rule is range-restricted.

        Safety requires every head variable to occur in some positive
        body literal.  A variable of a negated literal must either occur
        positively or be *local* to that single literal, in which case
        it is read as existentially quantified inside the negation —
        the reading the paper's ``pauper(X) :- not owns(X, Y)`` example
        (Section 5.2) requires.
        """
        positive_vars: Set[Variable] = set()
        for literal in self.body:
            if literal.positive:
                positive_vars |= variables_of(literal.atom)
        unsafe = variables_of(self.head) - positive_vars
        occurrences: Dict[Variable, int] = defaultdict(int)
        for literal in self.body:
            for var in set(variables_of(literal.atom)):
                occurrences[var] += 1
        occurrences_in_head = variables_of(self.head)
        for literal in self.body:
            if literal.positive:
                continue
            for var in variables_of(literal.atom) - positive_vars:
                if occurrences[var] > 1 or var in occurrences_in_head:
                    unsafe.add(var)
        if unsafe:
            names = ", ".join(sorted(v.name for v in unsafe))
            raise EvaluationError(f"unsafe rule {self}: unbound variables {names}")

    def substitute(self, subst: Substitution) -> "Rule":
        return Rule(
            self.head.substitute(subst),
            tuple(lit.substitute(subst) for lit in self.body),
            name=self.name,
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Rule)
            and self.head == other.head
            and self.body == other.body
        )

    def __hash__(self) -> int:
        return hash((Rule, self.head, self.body))

    def __repr__(self) -> str:
        return f"Rule({self.head!r}, {list(self.body)!r}, name={self.name!r})"

    def __str__(self) -> str:
        if self.is_fact:
            return f"{self.head}."
        body = ", ".join(str(lit) for lit in self.body)
        return f"{self.head} :- {body}."


class QueryForm:
    """A query form ``q^α`` (Section 2): relation plus binding pattern.

    ``pattern`` is a string over ``{'b', 'f'}`` with one character per
    argument position; ``instructor^(b)`` is
    ``QueryForm("instructor", "b")``.
    """

    __slots__ = ("predicate", "pattern")

    def __init__(self, predicate: str, pattern: str):
        if not isinstance(predicate, str) or not predicate:
            raise TypeError("predicate must be a non-empty string")
        if any(ch not in "bf" for ch in pattern):
            raise ValueError("binding pattern must contain only 'b' and 'f'")
        self.predicate = predicate
        self.pattern = pattern

    @property
    def arity(self) -> int:
        return len(self.pattern)

    @property
    def signature(self) -> Tuple[str, int]:
        return (self.predicate, self.arity)

    @classmethod
    def of(cls, query: Atom) -> "QueryForm":
        """The query form a concrete query atom belongs to."""
        return cls(query.predicate, query.binding_pattern())

    def matches(self, query: Atom) -> bool:
        """Whether ``query`` is an instance of this form."""
        return (
            query.predicate == self.predicate
            and query.binding_pattern() == self.pattern
        )

    def prototype(self) -> Atom:
        """A canonical non-ground atom of this form.

        Bound positions get distinguished variables named ``B0, B1, …``
        (stand-ins for the runtime constants), free positions get
        ``F0, F1, …``; the graph builder unfolds rules against this
        prototype.
        """
        args = [
            Variable(f"B{i}") if ch == "b" else Variable(f"F{i}")
            for i, ch in enumerate(self.pattern)
        ]
        return Atom(self.predicate, args)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, QueryForm)
            and self.predicate == other.predicate
            and self.pattern == other.pattern
        )

    def __hash__(self) -> int:
        return hash((QueryForm, self.predicate, self.pattern))

    def __repr__(self) -> str:
        return f"QueryForm({self.predicate!r}, {self.pattern!r})"

    def __str__(self) -> str:
        return f"{self.predicate}^({','.join(self.pattern)})"


class RuleBase:
    """An ordered collection of rules with derived predicate metadata.

    The rule base is the *static* part of the paper's knowledge base
    (Section 2.1: "the rule base, encoded as the inference graph G, is
    static"); the fact database varies per context.
    """

    def __init__(self, rules: Iterable[Rule] = ()):
        self._rules: List[Rule] = []
        self._by_head: Dict[Tuple[str, int], List[Rule]] = defaultdict(list)
        self._name_counter = 0
        for rule in rules:
            self.add(rule)

    def add(self, rule: Rule) -> Rule:
        """Add a rule, auto-naming it ``R<k>`` when it has no name."""
        if not isinstance(rule, Rule):
            raise TypeError("RuleBase holds Rule objects")
        rule.check_safety()
        if rule.name is None:
            self._name_counter += 1
            rule = Rule(rule.head, rule.body, name=f"R{self._name_counter}")
        self._rules.append(rule)
        self._by_head[rule.head.signature].append(rule)
        return rule

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def rules_for(self, goal: Atom) -> List[Rule]:
        """Rules whose head has the same signature as ``goal``."""
        return list(self._by_head.get(goal.signature, ()))

    def rule_named(self, name: str) -> Rule:
        """Look up a rule by its label; raises :class:`KeyError` if absent."""
        for rule in self._rules:
            if rule.name == name:
                return rule
        raise KeyError(f"no rule named {name!r}")

    # ------------------------------------------------------------------
    # Predicate-level metadata
    # ------------------------------------------------------------------

    def idb_predicates(self) -> Set[Tuple[str, int]]:
        """Signatures defined by at least one rule head (intensional)."""
        return set(self._by_head)

    def edb_predicates(self) -> Set[Tuple[str, int]]:
        """Signatures referenced in bodies but never defined (extensional).

        These are exactly the relations answered by database retrieval
        arcs in the inference graph.
        """
        idb = self.idb_predicates()
        edb: Set[Tuple[str, int]] = set()
        for rule in self._rules:
            for literal in rule.body:
                if literal.atom.signature not in idb:
                    edb.add(literal.atom.signature)
        return edb

    def dependency_graph(self) -> Dict[Tuple[str, int], Set[Tuple[str, int]]]:
        """Predicate dependency graph: head signature -> body signatures."""
        graph: Dict[Tuple[str, int], Set[Tuple[str, int]]] = defaultdict(set)
        for rule in self._rules:
            graph[rule.head.signature].update(
                literal.atom.signature for literal in rule.body
            )
        return dict(graph)

    def is_recursive(self) -> bool:
        """Whether any predicate (transitively) depends on itself."""
        graph = self.dependency_graph()
        visiting: Set[Tuple[str, int]] = set()
        done: Set[Tuple[str, int]] = set()

        def visit(node: Tuple[str, int]) -> bool:
            if node in done:
                return False
            if node in visiting:
                return True
            visiting.add(node)
            for child in graph.get(node, ()):
                if visit(child):
                    return True
            visiting.discard(node)
            done.add(node)
            return False

        return any(visit(signature) for signature in graph)

    def stratification(self) -> List[Set[Tuple[str, int]]]:
        """Partition the predicates into strata for stratified negation.

        Returns a list of strata, lowest first, such that every positive
        dependency stays within or below its stratum and every negative
        dependency points strictly below.  Raises
        :class:`StratificationError` when negation occurs inside a
        recursive cycle.
        """
        signatures: Set[Tuple[str, int]] = set(self._by_head)
        for rule in self._rules:
            for literal in rule.body:
                signatures.add(literal.atom.signature)

        stratum: Dict[Tuple[str, int], int] = {sig: 0 for sig in signatures}
        total = len(signatures)
        changed = True
        iterations = 0
        while changed:
            changed = False
            iterations += 1
            if iterations > total + 1:
                raise StratificationError(
                    "rule base is not stratifiable (negation through recursion)"
                )
            for rule in self._rules:
                head_sig = rule.head.signature
                for literal in rule.body:
                    body_sig = literal.atom.signature
                    required = stratum[body_sig] + (0 if literal.positive else 1)
                    if stratum[head_sig] < required:
                        stratum[head_sig] = required
                        changed = True

        count = max(stratum.values(), default=0) + 1
        strata: List[Set[Tuple[str, int]]] = [set() for _ in range(count)]
        for signature, level in stratum.items():
            strata[level].add(signature)
        return strata

    def uses_negation(self) -> bool:
        """Whether any rule body contains a negated literal."""
        return any(
            not literal.positive for rule in self._rules for literal in rule.body
        )

    def __repr__(self) -> str:
        return f"RuleBase({len(self._rules)} rules)"

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self._rules)

"""A small recursive-descent parser for Datalog programs and queries.

Grammar (``%`` starts a line comment)::

    program   := clause*
    clause    := ["@" NAME] atom [":-" literals] "."
    literals  := literal ("," literal)*
    literal   := ["not" | "\\+"] atom
    atom      := NAME ["(" term ("," term)* ")"]
    term      := NAME | VARIABLE | NUMBER | STRING

Identifiers beginning with a lowercase letter are predicate/constant
symbols; identifiers beginning with an uppercase letter or underscore
are variables.  The optional ``@name`` annotation labels a rule, which
is how the worked examples name the paper's rules
(``@Rp instructor(X) :- prof(X).``).

Entry points: :func:`parse_program`, :func:`parse_rule`,
:func:`parse_atom`, :func:`parse_query`.
"""

from __future__ import annotations

import re
from typing import Iterator, List, NamedTuple, Optional

from ..errors import ParseError
from .rules import Literal, Rule, RuleBase
from .terms import Atom, Constant, Term, Variable

__all__ = ["parse_program", "parse_rule", "parse_atom", "parse_query", "tokenize"]


class Token(NamedTuple):
    kind: str
    text: str
    line: int
    column: int


_TOKEN_RE = re.compile(
    r"""
    (?P<COMMENT>%[^\n]*)
  | (?P<WS>\s+)
  | (?P<IMPLIES>:-)
  | (?P<NAF>\\\+)
  | (?P<AT>@)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
  | (?P<DOT>\.(?!\d))
  | (?P<NUMBER>-?\d+(?:\.\d+)?)
  | (?P<STRING>"(?:[^"\\]|\\.)*")
  | (?P<NAME>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> Iterator[Token]:
    """Yield tokens; raises :class:`ParseError` on unknown characters."""
    line = 1
    line_start = 0
    position = 0
    while position < len(text):
        matched = _TOKEN_RE.match(text, position)
        if matched is None:
            raise ParseError(
                f"unexpected character {text[position]!r}",
                line=line,
                column=position - line_start + 1,
            )
        kind = matched.lastgroup
        token_text = matched.group()
        if kind not in ("WS", "COMMENT"):
            yield Token(kind, token_text, line, matched.start() - line_start + 1)
        newlines = token_text.count("\n")
        if newlines:
            line += newlines
            line_start = matched.start() + token_text.rfind("\n") + 1
        position = matched.end()
    yield Token("EOF", "", line, position - line_start + 1)


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str):
        self._tokens: List[Token] = list(tokenize(text))
        self._index = 0

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind != "EOF":
            self._index += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._current
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.kind} ({token.text!r})",
                line=token.line,
                column=token.column,
            )
        return self._advance()

    def _at(self, kind: str) -> bool:
        return self._current.kind == kind

    # -- grammar productions -----------------------------------------

    def program(self) -> List[Rule]:
        clauses: List[Rule] = []
        while not self._at("EOF"):
            clauses.append(self.clause())
        return clauses

    def clause(self) -> Rule:
        name: Optional[str] = None
        if self._at("AT"):
            self._advance()
            name = self._expect("NAME").text
        head = self.atom()
        body: List[Literal] = []
        if self._at("IMPLIES"):
            self._advance()
            body.append(self.literal())
            while self._at("COMMA"):
                self._advance()
                body.append(self.literal())
        self._expect("DOT")
        return Rule(head, body, name=name)

    def literal(self) -> Literal:
        positive = True
        if self._at("NAF"):
            self._advance()
            positive = False
        elif self._at("NAME") and self._current.text == "not":
            # 'not' is a keyword only in literal position followed by an atom.
            lookahead = self._tokens[self._index + 1]
            if lookahead.kind == "NAME":
                self._advance()
                positive = False
        return Literal(self.atom(), positive=positive)

    def atom(self) -> Atom:
        name_token = self._expect("NAME")
        if name_token.text[0].isupper() or name_token.text[0] == "_":
            raise ParseError(
                f"predicate names must start lowercase, got {name_token.text!r}",
                line=name_token.line,
                column=name_token.column,
            )
        args: List[Term] = []
        if self._at("LPAREN"):
            self._advance()
            args.append(self.term())
            while self._at("COMMA"):
                self._advance()
                args.append(self.term())
            self._expect("RPAREN")
        return Atom(name_token.text, args)

    def term(self) -> Term:
        token = self._current
        if token.kind == "NAME":
            self._advance()
            if token.text[0].isupper() or token.text[0] == "_":
                return Variable(token.text)
            return Constant(token.text)
        if token.kind == "NUMBER":
            self._advance()
            value = float(token.text) if "." in token.text else int(token.text)
            return Constant(value)
        if token.kind == "STRING":
            self._advance()
            raw = token.text[1:-1]
            return Constant(raw.replace('\\"', '"').replace("\\\\", "\\"))
        raise ParseError(
            f"expected a term, found {token.kind} ({token.text!r})",
            line=token.line,
            column=token.column,
        )


def parse_program(text: str) -> RuleBase:
    """Parse a full Datalog program into a :class:`RuleBase`.

    Ground facts written in the program become body-less rules; callers
    that want them in a :class:`~repro.datalog.database.Database`
    instead can use :meth:`Database.from_program`.
    """
    return RuleBase(_Parser(text).program())


def parse_rule(text: str) -> Rule:
    """Parse exactly one clause (rule or fact)."""
    parser = _Parser(text)
    rule = parser.clause()
    parser._expect("EOF")
    return rule


def parse_atom(text: str) -> Atom:
    """Parse a single atom, without a trailing dot."""
    parser = _Parser(text)
    atom = parser.atom()
    parser._expect("EOF")
    return atom


def parse_query(text: str) -> Atom:
    """Parse a query: an atom with an optional trailing ``.`` or ``?``."""
    stripped = text.strip()
    if stripped.endswith("?") or stripped.endswith("."):
        stripped = stripped[:-1]
    return parse_atom(stripped)

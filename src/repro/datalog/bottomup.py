"""Bottom-up Datalog evaluation: naive and semi-naive, with stratified
negation.

The paper's query processor is top-down, but a reproduction needs a
ground-truth oracle: bottom-up evaluation computes the *complete* model
of the program, so the substrate tests can check that the satisficing
top-down engine answers "yes" exactly when the model contains a
matching fact, and the benchmarks can report the engine-level speedup
satisficing search buys over exhaustive evaluation.

Semi-naive evaluation is the standard delta-driven fixpoint [BR86]; the
naive fixpoint is retained both as the correctness oracle for the
semi-naive one (property-tested equal) and as a baseline in the engine
bench.

Rule joins run over the compiled
:class:`~repro.datalog.rules.RulePlan`: body literals are joined
through the database's per-argument hash indexes into a positional
slot array (no ``Substitution`` objects, no per-level atom
re-substitution), and the join order is chosen greedily by
bound-position selectivity — most bound positions first, smaller
relation on ties — which is deterministic and independent of hash
seeds.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import EvaluationError
from .database import Database
from .rules import LiteralPlan, Rule, RuleBase
from .terms import Atom

__all__ = ["naive_evaluate", "seminaive_evaluate", "BottomUpEngine"]


def _join_order(
    positives: Tuple[LiteralPlan, ...], facts: Database
) -> Tuple[LiteralPlan, ...]:
    """Greedy bound-position-selectivity join order.

    Repeatedly pick the literal with the most bound argument positions
    (constants, or slots bound by already-ordered literals); break ties
    toward the smaller relation, then original body order.  Fully
    deterministic: no hash-order input reaches the choice.
    """
    if len(positives) <= 1:
        return positives
    remaining = list(enumerate(positives))
    bound_slots: set = set()
    ordered: List[LiteralPlan] = []
    while remaining:
        best_at = 0
        best_key: Optional[Tuple[int, int, int]] = None
        for at, (index, lp) in enumerate(remaining):
            bound = sum(
                1 for spec in lp.args
                if type(spec) is not int or spec in bound_slots
            )
            key = (-bound, facts.count(*lp.signature), index)
            if best_key is None or key < best_key:
                best_key = key
                best_at = at
        _, chosen = remaining.pop(best_at)
        ordered.append(chosen)
        for spec in chosen.args:
            if type(spec) is int:
                bound_slots.add(spec)
    return tuple(ordered)


def _join_rule(rule: Rule, facts: Database, required: Optional[Database] = None,
               negatives: Optional[Database] = None) -> Iterator[Atom]:
    """All head instances derivable from ``rule`` over ``facts``.

    When ``required`` is given (semi-naive delta), at least one positive
    body literal must match a fact in ``required``.  Negated literals
    are checked against ``negatives`` (the finished lower strata) —
    callers guarantee stratification, so this is sound.
    """
    negatives = negatives if negatives is not None else facts
    plan = rule.plan
    positives = _join_order(plan.positive, facts)
    negateds = plan.negated
    slots: List[Optional[object]] = [None] * plan.nslots
    slot_vars = plan.slot_vars
    n_positive = len(positives)
    # Wrapped databases (e.g. fault injectors) may not expose the
    # fact-level iterator; fall back to enumerating via retrieve.
    facts_matching = getattr(facts, "facts_matching", None) \
        or (lambda pattern: _matching_via_retrieve(facts, pattern))

    def blocked_by_negation() -> bool:
        for lp in negateds:
            args: List[object] = []
            ground = True
            for spec in lp.args:
                if type(spec) is int:
                    value = slots[spec]
                    if value is None:
                        # Existential local variable: blocked iff any
                        # fact matches the partially bound goal.
                        value = slot_vars[spec]
                        ground = False
                    args.append(value)
                else:
                    args.append(spec)
            goal = Atom._make(lp.predicate, tuple(args))
            if not ground:
                if negatives.succeeds(goal):
                    return True
            elif goal in negatives:
                return True
        return False

    def join(level: int, used_delta: bool) -> Iterator[bool]:
        if level == n_positive:
            if required is not None and not used_delta:
                return
            if not blocked_by_negation():
                yield True
            return
        lp = positives[level]
        specs = lp.args
        args = []
        for spec in specs:
            if type(spec) is int:
                value = slots[spec]
                args.append(value if value is not None else slot_vars[spec])
            else:
                args.append(spec)
        pattern = Atom._make(lp.predicate, tuple(args))
        for fact in facts_matching(pattern):
            bound_here: List[int] = []
            for spec, f_arg in zip(specs, fact.args):
                if type(spec) is int and slots[spec] is None:
                    slots[spec] = f_arg
                    bound_here.append(spec)
            in_delta = used_delta or (required is not None and fact in required)
            yield from join(level + 1, in_delta)
            for spec in bound_here:
                slots[spec] = None

    head_predicate = rule.head.predicate
    head_args = plan.head_args
    for _ in join(0, False):
        args = []
        for spec in head_args:
            if type(spec) is int:
                value = slots[spec]
                if value is None:
                    raise EvaluationError(
                        f"derived non-ground head from {rule}"
                    )
                args.append(value)
            else:
                args.append(spec)
        yield Atom._make(head_predicate, tuple(args))


def _matching_via_retrieve(facts, pattern: Atom) -> Iterator[Atom]:
    """Fact enumeration through the public ``retrieve`` API only."""
    for binding in facts.retrieve(pattern):
        yield pattern.substitute(binding)


def _strata_rules(rule_base: RuleBase) -> List[List[Rule]]:
    """Group rules by the stratum of their head predicate."""
    strata = rule_base.stratification()
    level_of: Dict[Tuple[str, int], int] = {}
    for level, signatures in enumerate(strata):
        for signature in signatures:
            level_of[signature] = level
    grouped: List[List[Rule]] = [[] for _ in strata]
    for rule in rule_base:
        grouped[level_of[rule.head.signature]].append(rule)
    return grouped


def naive_evaluate(rule_base: RuleBase, database: Database) -> Database:
    """Naive fixpoint: repeat all rules until nothing new derives.

    Returns a new database containing the EDB facts plus every
    derivable IDB fact, stratum by stratum.
    """
    model = database.copy()
    for rules in _strata_rules(rule_base):
        changed = True
        while changed:
            changed = False
            for rule in rules:
                for head in list(_join_rule(rule, model)):
                    if model.add(head):
                        changed = True
    return model


def seminaive_evaluate(rule_base: RuleBase, database: Database) -> Database:
    """Semi-naive fixpoint: only re-derive through last round's deltas."""
    model = database.copy()
    for rules in _strata_rules(rule_base):
        # Seed round: full join within the stratum.
        delta = Database()
        for rule in rules:
            for head in list(_join_rule(rule, model)):
                if head not in model:
                    delta.add(head)
        model.update(delta)
        while len(delta):
            new_delta = Database()
            for rule in rules:
                for head in list(_join_rule(rule, model, required=delta)):
                    if head not in model:
                        new_delta.add(head)
            model.update(new_delta)
            delta = new_delta
    return model


class BottomUpEngine:
    """Query interface over a materialized bottom-up model.

    Evaluation is lazy and cached per database *state*: the first
    query against a database pays for the fixpoint, later ones are
    index lookups.  The cache is keyed on ``Database.cache_key`` —
    ``(identity, generation)`` — exactly like the serving caches, so a
    mutated database is re-evaluated on its next query instead of
    returning a stale model, and recycled ``id()`` values can never
    alias two distinct databases.
    """

    def __init__(self, rule_base: RuleBase, seminaive: bool = True):
        self.rule_base = rule_base
        self.seminaive = seminaive
        # identity component of cache_key -> (generation, model)
        self._cache: Dict[int, Tuple[int, Database]] = {}

    def model(self, database: Database) -> Database:
        """The full model of the program over ``database`` (cached)."""
        identity, generation = database.cache_key
        cached = self._cache.get(identity)
        if cached is None or cached[0] != generation:
            evaluate = seminaive_evaluate if self.seminaive else naive_evaluate
            cached = (generation, evaluate(self.rule_base, database))
            self._cache[identity] = cached
        return cached[1]

    def holds(self, query: Atom, database: Database) -> bool:
        """Whether any instance of ``query`` is in the model."""
        return self.model(database).succeeds(query)

    def answers(self, query: Atom, database: Database) -> List["object"]:
        """All bindings of ``query``'s variables in the model."""
        return list(self.model(database).retrieve(query))

    def invalidate(self, database: Optional[Database] = None) -> None:
        """Drop cached models (all of them, or one database's)."""
        if database is None:
            self._cache.clear()
        else:
            self._cache.pop(database.cache_key[0], None)

"""Bottom-up Datalog evaluation: naive and semi-naive, with stratified
negation.

The paper's query processor is top-down, but a reproduction needs a
ground-truth oracle: bottom-up evaluation computes the *complete* model
of the program, so the substrate tests can check that the satisficing
top-down engine answers "yes" exactly when the model contains a
matching fact, and the benchmarks can report the engine-level speedup
satisficing search buys over exhaustive evaluation.

Semi-naive evaluation is the standard delta-driven fixpoint [BR86]; the
naive fixpoint is retained both as the correctness oracle for the
semi-naive one (property-tested equal) and as a baseline in the engine
bench.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import EvaluationError
from .database import Database
from .rules import Rule, RuleBase
from .terms import Atom, Substitution

__all__ = ["naive_evaluate", "seminaive_evaluate", "BottomUpEngine"]


def _join_rule(rule: Rule, facts: Database, required: Optional[Database] = None,
               negatives: Optional[Database] = None) -> Iterator[Atom]:
    """All head instances derivable from ``rule`` over ``facts``.

    When ``required`` is given (semi-naive delta), at least one positive
    body literal must match a fact in ``required``.  Negated literals
    are checked against ``negatives`` (the finished lower strata) —
    callers guarantee stratification, so this is sound.
    """
    negatives = negatives if negatives is not None else facts
    positive = [lit for lit in rule.body if lit.positive]
    negated = [lit for lit in rule.body if not lit.positive]

    def extend(index: int, binding: Substitution,
               used_delta: bool) -> Iterator[Substitution]:
        if index == len(positive):
            if required is not None and not used_delta:
                return
            for literal in negated:
                goal = literal.atom.substitute(binding)
                if not goal.is_ground:
                    # Existential local variables: blocked iff any match.
                    if negatives.succeeds(goal):
                        return
                elif goal in negatives:
                    return
            yield binding
            return
        goal = positive[index].atom.substitute(binding)
        for fact_binding in facts.retrieve(goal):
            resolved = goal.substitute(fact_binding)
            in_delta = required is not None and resolved in required
            yield from extend(index + 1, binding.compose(fact_binding),
                              used_delta or in_delta)

    for binding in extend(0, Substitution(), False):
        head = rule.head.substitute(binding)
        if head.is_ground:
            yield head
        else:
            raise EvaluationError(f"derived non-ground head {head} from {rule}")


def _strata_rules(rule_base: RuleBase) -> List[List[Rule]]:
    """Group rules by the stratum of their head predicate."""
    strata = rule_base.stratification()
    level_of: Dict[Tuple[str, int], int] = {}
    for level, signatures in enumerate(strata):
        for signature in signatures:
            level_of[signature] = level
    grouped: List[List[Rule]] = [[] for _ in strata]
    for rule in rule_base:
        grouped[level_of[rule.head.signature]].append(rule)
    return grouped


def naive_evaluate(rule_base: RuleBase, database: Database) -> Database:
    """Naive fixpoint: repeat all rules until nothing new derives.

    Returns a new database containing the EDB facts plus every
    derivable IDB fact, stratum by stratum.
    """
    model = database.copy()
    for rules in _strata_rules(rule_base):
        changed = True
        while changed:
            changed = False
            for rule in rules:
                for head in list(_join_rule(rule, model)):
                    if model.add(head):
                        changed = True
    return model


def seminaive_evaluate(rule_base: RuleBase, database: Database) -> Database:
    """Semi-naive fixpoint: only re-derive through last round's deltas."""
    model = database.copy()
    for rules in _strata_rules(rule_base):
        # Seed round: full join within the stratum.
        delta = Database()
        for rule in rules:
            for head in list(_join_rule(rule, model)):
                if head not in model:
                    delta.add(head)
        model.update(delta)
        while len(delta):
            new_delta = Database()
            for rule in rules:
                for head in list(_join_rule(rule, model, required=delta)):
                    if head not in model:
                        new_delta.add(head)
            model.update(new_delta)
            delta = new_delta
    return model


class BottomUpEngine:
    """Query interface over a materialized bottom-up model.

    Evaluation is lazy and cached per database identity: the first
    query against a database pays for the fixpoint, later ones are
    index lookups.
    """

    def __init__(self, rule_base: RuleBase, seminaive: bool = True):
        self.rule_base = rule_base
        self.seminaive = seminaive
        self._cache: Dict[int, Database] = {}

    def model(self, database: Database) -> Database:
        """The full model of the program over ``database`` (cached)."""
        key = id(database)
        if key not in self._cache:
            evaluate = seminaive_evaluate if self.seminaive else naive_evaluate
            self._cache[key] = evaluate(self.rule_base, database)
        return self._cache[key]

    def holds(self, query: Atom, database: Database) -> bool:
        """Whether any instance of ``query`` is in the model."""
        return self.model(database).succeeds(query)

    def answers(self, query: Atom, database: Database) -> List[Substitution]:
        """All bindings of ``query``'s variables in the model."""
        return list(self.model(database).retrieve(query))

    def invalidate(self, database: Optional[Database] = None) -> None:
        """Drop cached models (all of them, or one database's)."""
        if database is None:
            self._cache.clear()
        else:
            self._cache.pop(id(database), None)

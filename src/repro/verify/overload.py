"""Overload verification: seeded burst worlds through admission control.

The ``overload`` profile drives the real
:class:`~repro.serving.server.QueryServer` — not a simulator — because
admission control was *built* deterministic: token buckets tick per
arrival, dispatch latency runs on per-form virtual cost clocks, and
shed decisions are pure functions of the arrival sequence.  That makes
the full stack (quota → queue → shed policy → dispatch → learner)
replayable byte-for-byte from a :class:`~repro.verify.worldgen.WorldSpec`,
and these oracles hold it to that:

* :func:`check_overload_determinism` — two fresh runs of one spec
  produce identical outcome fingerprints and identical tracer events;
* :func:`check_overload_worker_parity` — outcomes are identical across
  worker counts (forms dispatch independently, so parallelism must not
  change a single admission or latency figure);
* :func:`check_overload_conservation` — every request gets exactly one
  typed outcome, statuses partition, queue peaks stay within capacity,
  rejected outcomes carry no answer, degraded ones are flagged;
* :func:`check_overload_isolation` — the learner-isolation invariant:
  replaying only the *served* queries per form through a fresh
  processor reproduces the admission run's answers and climbs exactly
  (shed requests contributed no PIB sample);
* :func:`check_overload_fairness` — under the ``reject-over-quota``
  policy no demanding tenant starves, and with a rate quota no tenant
  exceeds its token-bucket ceiling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..datalog.rules import QueryForm
from ..observability import Tracer
from ..serving.admission import Request, RequestOutcome
from ..serving.config import AdmissionConfig, CacheConfig, ServingConfig, \
    SessionConfig
from ..serving.server import QueryServer
from ..system import SelfOptimizingQueryProcessor
from .worldgen import KBWorld, WorldSpec, build_kb_world

__all__ = [
    "OverloadRun",
    "simulate_overload",
    "check_overload_determinism",
    "check_overload_worker_parity",
    "check_overload_conservation",
    "check_overload_isolation",
    "check_overload_fairness",
]


@dataclass
class OverloadRun:
    """One admission-controlled burst: outcomes + trace + server state."""

    spec: WorldSpec
    requests: List[Request]
    outcomes: List[RequestOutcome]
    server: QueryServer
    tracer: Tracer

    def fingerprint(self) -> str:
        """The determinism fingerprint: one JSON line per outcome."""
        lines = []
        for index, outcome in enumerate(self.outcomes):
            answer = outcome.answer
            lines.append(json.dumps({
                "i": index,
                "tenant": outcome.request.tenant,
                "status": outcome.status,
                "reason": outcome.reason,
                "latency": round(outcome.latency, 9),
                "proved": answer.proved if answer is not None else None,
                "cost": (round(answer.cost, 9)
                         if answer is not None else None),
            }, sort_keys=True, separators=(",", ":")))
        return "\n".join(lines)

    def trace_bytes(self) -> str:
        return json.dumps(self.tracer.events, sort_keys=True)


def _burst_requests(spec: WorldSpec, world: KBWorld) -> List[Request]:
    """The spec's burst: the query stream repeated ``burst_factor``
    times, tenants assigned round-robin — every tenant demands."""
    requests: List[Request] = []
    tenants = max(spec.tenants, 1)
    index = 0
    for _ in range(max(spec.burst_factor, 1)):
        for query in world.queries:
            requests.append(Request(query, tenant=f"t{index % tenants}"))
            index += 1
    return requests


def simulate_overload(
    spec: WorldSpec, workers: Optional[int] = None
) -> OverloadRun:
    """Run the spec's burst through a fresh admission-controlled server."""
    world = build_kb_world(spec)
    tracer = Tracer(margin_events=False)
    processor = SelfOptimizingQueryProcessor(
        world.rules, config=SessionConfig(delta=spec.delta), recorder=tracer
    )
    admission = AdmissionConfig(
        queue_capacity=spec.queue_capacity,
        tenant_rate=spec.tenant_rate,
        shed_policy=spec.shed_policy,
        deadline=spec.request_deadline,
    )
    server = QueryServer(
        processor,
        serving=ServingConfig(
            workers=workers if workers is not None else 1,
            admission=admission,
        ),
        cache=CacheConfig(
            answer_capacity=spec.answer_cache,
            subgoal_capacity=spec.subgoal_memo,
        ) if (spec.answer_cache or spec.subgoal_memo) else CacheConfig(),
    )
    requests = _burst_requests(spec, world)
    outcomes = server.run_requests(requests, world.database)
    return OverloadRun(spec, requests, outcomes, server, tracer)


# ----------------------------------------------------------------------
# Checks (each returns an error message or None)
# ----------------------------------------------------------------------


def check_overload_determinism(spec: WorldSpec) -> Optional[str]:
    """Two fresh runs must match byte-for-byte: outcomes and trace."""
    first = simulate_overload(spec)
    second = simulate_overload(spec)
    if first.fingerprint() != second.fingerprint():
        first_lines = first.fingerprint().splitlines()
        second_lines = second.fingerprint().splitlines()
        for number, (left, right) in enumerate(
            zip(first_lines, second_lines)
        ):
            if left != right:
                return (f"overload replay diverged at outcome #{number}: "
                        f"{left!r} != {right!r}")
        return "overload replay produced different outcome counts"
    if first.trace_bytes() != second.trace_bytes():
        return "overload replay produced a different event trace"
    return None


def check_overload_worker_parity(spec: WorldSpec) -> Optional[str]:
    """Outcomes must be identical across worker counts.

    Admission happens before dispatch and dispatch runs per-form
    virtual clocks, so threading the form queues over a pool must not
    change a single status, reason, or latency.
    """
    serial = simulate_overload(spec, workers=1)
    parallel = simulate_overload(spec, workers=3)
    if serial.fingerprint() != parallel.fingerprint():
        serial_lines = serial.fingerprint().splitlines()
        parallel_lines = parallel.fingerprint().splitlines()
        for number, (left, right) in enumerate(
            zip(serial_lines, parallel_lines)
        ):
            if left != right:
                return (f"worker parity broken at outcome #{number}: "
                        f"workers=1 {left!r} vs workers=3 {right!r}")
        return "worker parity broken: different outcome counts"
    return None


def check_overload_conservation(spec: WorldSpec) -> Optional[str]:
    """Typed-outcome bookkeeping: nothing lost, nothing invented."""
    run = simulate_overload(spec)
    if len(run.outcomes) != len(run.requests):
        return (f"{len(run.requests)} requests produced "
                f"{len(run.outcomes)} outcomes")
    for index, outcome in enumerate(run.outcomes):
        if outcome.status not in ("served", "degraded", "rejected"):
            return f"outcome #{index} has unknown status {outcome.status!r}"
        if outcome.rejected and outcome.answer is not None:
            return f"rejected outcome #{index} carries an answer"
        if outcome.served and outcome.answer is None:
            return f"served outcome #{index} carries no answer"
        if outcome.degraded:
            if outcome.answer is None:
                return f"degraded outcome #{index} carries no answer"
            if not outcome.answer.degraded:
                return (f"degraded outcome #{index}'s answer is not "
                        f"flagged degraded")
        if not outcome.served and outcome.reason is None:
            return f"shed outcome #{index} carries no reason"
    snapshot = run.server.snapshot()
    admission = snapshot["admission"]
    for form, info in admission["queues"].items():  # type: ignore[index]
        if info["peak_depth"] > spec.queue_capacity:
            return (f"queue {form} peaked at {info['peak_depth']} "
                    f"with capacity {spec.queue_capacity}")
    shed_total = sum(
        admission["shedder"]["shed"].values()  # type: ignore[index]
    )
    not_served = sum(1 for o in run.outcomes if not o.served)
    if shed_total != not_served:
        return (f"shedder counted {shed_total} sheds but "
                f"{not_served} outcomes were not served")
    return None


def check_overload_isolation(spec: WorldSpec) -> Optional[str]:
    """Shed requests leave no trace in the learner.

    A fresh processor replaying only the served queries — per form, in
    dispatch order — must reproduce the admission run's answers and
    per-form climb counts exactly.  If a shed or degraded request had
    fed PIB a sample, the Δ̃ evidence (and eventually a climb decision)
    would differ.
    """
    # Caches off: an answer-cache hit legitimately bypasses the
    # learner, which would make the served-query replay ambiguous.
    bare = spec.replace(answer_cache=0, subgoal_memo=0)
    run = simulate_overload(bare)
    served: Dict[QueryForm, List[RequestOutcome]] = {}
    for outcome in run.outcomes:
        if outcome.served and not outcome.answer.cached:
            form = QueryForm.of(outcome.request.query)
            served.setdefault(form, []).append(outcome)
    # Dispatch order within a form is monotone in latency (the form's
    # virtual clock only advances), so sorting recovers it.
    world = build_kb_world(bare)
    reference = SelfOptimizingQueryProcessor(
        world.rules, config=SessionConfig(delta=bare.delta)
    )
    for form in served:
        ordered = sorted(served[form], key=lambda o: o.latency)
        for outcome in ordered:
            answer = reference.query(outcome.request.query, world.database)
            if (answer.proved, round(answer.cost, 9)) != (
                outcome.answer.proved, round(outcome.answer.cost, 9)
            ):
                return (
                    f"learner isolation broken for {form}: served query "
                    f"{outcome.request.query} answered "
                    f"({outcome.answer.proved}, {outcome.answer.cost}) "
                    f"under admission but ({answer.proved}, {answer.cost}) "
                    f"in the sequential replay"
                )
    admission_report = run.server.processor.report()
    reference_report = reference.report()
    for form_name, info in reference_report.items():
        admission_info = admission_report.get(form_name)
        if admission_info is None:
            return f"form {form_name} missing from the admission report"
        if info.get("climbs") != admission_info.get("climbs"):
            return (
                f"climb parity broken for {form_name}: sequential replay "
                f"of served queries climbed {info.get('climbs')} times, "
                f"admission run {admission_info.get('climbs')}"
            )
    return None


def check_overload_fairness(spec: WorldSpec) -> Optional[str]:
    """No starvation under the fairness policy; quotas actually bind."""
    fair_spec = spec.replace(shed_policy="reject-over-quota")
    run = simulate_overload(fair_spec)
    tenants = max(fair_spec.tenants, 1)
    demanded: Dict[str, int] = {}
    progressed: Dict[str, int] = {}
    for outcome in run.outcomes:
        tenant = outcome.request.tenant
        demanded[tenant] = demanded.get(tenant, 0) + 1
        if not outcome.rejected:
            progressed[tenant] = progressed.get(tenant, 0) + 1
    if fair_spec.queue_capacity >= tenants:
        for tenant, count in sorted(demanded.items()):
            if count > 0 and progressed.get(tenant, 0) == 0:
                return (
                    f"tenant {tenant} demanded {count} requests and was "
                    f"served none — starvation under reject-over-quota"
                )
    if fair_spec.tenant_rate > 0:
        ticks = len(run.outcomes)
        ceiling = (AdmissionConfig().tenant_burst
                   + fair_spec.tenant_rate * ticks)
        for outcome_tenant, count in sorted(progressed.items()):
            if count > ceiling:
                return (
                    f"tenant {outcome_tenant} progressed {count} requests, "
                    f"over the token-bucket ceiling {ceiling:.1f}"
                )
    return None

"""Experience-store checks: the priors-only contract, seeded.

The warm-start layer's whole promise is that it changes *nothing* but
Θ₀: the Theorem 1 schedule, the Equation 6 cadence, and the answers a
query stream produces must be indistinguishable from a cold run.
These checks drive random PIB worlds through the real store and
warm-start code paths and fail on any observable deviation:

``experience-priors-only``
    An empty store warm-starts nobody; a cold run replays
    byte-identically; recording the cold outcome and warm-starting an
    identical world yields an exact hit whose strategy *is* the cold
    winner; the warm run proves exactly the contexts the cold run
    proved, consumes the Equation 6 test schedule at exactly the cold
    run's cadence, and never needs more climbs than the cold run.

``experience-nn-determinism``
    Nearest-neighbour rankings are a pure function of the record set:
    insertion order, dict iteration order, and a JSON round-trip leave
    the ranking untouched, and fingerprints are reproducible from a
    freshly rebuilt world (``PYTHONHASHSEED`` independence).

``experience-store-recovery``
    The crash-safety ladder: a corrupt main file falls back to its
    ``.bak`` with no record loss; corrupting both degrades to an empty
    store flagged ``recovered`` that can immediately save cleanly.

Each check accepts the optional :class:`~repro.serving.config.ExperienceConfig`
the CLI's ``--experience-*`` flags build, so ``repro verify --profile
experience --experience-neighbours 5`` exercises non-default knobs.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from typing import List, Optional, Tuple

from ..experience.fingerprint import form_profile
from ..experience.store import ExperienceStore
from ..experience.warmstart import record_from_learner, warm_start
from ..learning.pib import PIB
from ..serving.config import ExperienceConfig
from .worldgen import WorldSpec, build_graph_world, context_rng

__all__ = [
    "check_experience_priors",
    "check_experience_determinism",
    "check_experience_recovery",
]


def _knobs(config: Optional[ExperienceConfig]) -> ExperienceConfig:
    return config if config is not None else ExperienceConfig()


def _run_pib(
    spec: WorldSpec, initial_strategy=None
) -> Tuple[object, PIB, List[bool], List[int]]:
    """One seeded PIB run; returns (world, learner, proved, test schedule).

    ``proved`` is the per-context success verdict (the "final answers"
    of the run); the test schedule is ``total_tests`` sampled after
    every context — the exact cadence at which Equation 6 evidence
    accumulates.
    """
    world = build_graph_world(spec)
    learner = PIB(
        world.graph, delta=spec.delta, initial_strategy=initial_strategy
    )
    rng = context_rng(spec)
    proved: List[bool] = []
    schedule: List[int] = []
    for _ in range(spec.contexts):
        result = learner.process(world.distribution.sample(rng))
        proved.append(result.succeeded)
        schedule.append(learner.total_tests)
    return world, learner, proved, schedule


def _record_for(spec: WorldSpec, contexts: Optional[int] = None):
    """A settled experience record from one cold run of ``spec``."""
    if contexts is not None:
        spec = dataclasses.replace(spec, contexts=contexts)
    world, learner, _, _ = _run_pib(spec)
    profile = form_profile(world.graph)
    return record_from_learner(profile, f"world-{spec.seed}", learner)


def check_experience_priors(
    spec: WorldSpec, config: Optional[ExperienceConfig] = None
) -> Optional[str]:
    """Warm-start must set Θ₀ and nothing else."""
    knobs = _knobs(config)
    world = build_graph_world(spec)
    profile = form_profile(world.graph)

    empty = ExperienceStore()
    if warm_start(empty, profile, world.graph) is not None:
        return "an empty store produced a warm start"

    _, cold, cold_proved, cold_schedule = _run_pib(spec)
    _, rerun, rerun_proved, rerun_schedule = _run_pib(spec)
    if cold_proved != rerun_proved or cold_schedule != rerun_schedule:
        return "cold PIB replay diverged (baseline nondeterminism)"
    if cold.strategy.arc_names() != rerun.strategy.arc_names():
        return "cold PIB replay settled on a different strategy"

    record = record_from_learner(profile, f"world-{spec.seed}", cold)
    if record is None:
        return "cold run produced no contributable record"
    store = ExperienceStore()
    if not store.add(record):
        return "fresh store rejected the cold run's record"

    warm = warm_start(
        store,
        profile,
        world.graph,
        k=knobs.neighbour_k,
        floor=knobs.similarity_floor,
        pattern_weight=knobs.pattern_weight,
        similarity_weight=knobs.similarity_weight,
    )
    if warm is None:
        return "identical world missed its own record"
    if not warm.exact or warm.distance != 0.0:
        return (
            f"identical world matched at distance {warm.distance} "
            "instead of exactly"
        )
    cold_final = tuple(a.name for a in cold.strategy.retrieval_order())
    warm_names = tuple(a.name for a in warm.strategy.retrieval_order())
    if warm_names != cold_final:
        return (
            f"exact warm start replayed {warm_names} but the cold run "
            f"settled on {cold_final}"
        )

    _, warm_pib, warm_proved, warm_schedule = _run_pib(
        spec, initial_strategy=warm.strategy
    )
    if warm_proved != cold_proved:
        for number, (left, right) in enumerate(
            zip(cold_proved, warm_proved)
        ):
            if left != right:
                return (
                    f"context #{number}: cold proved={left} but the "
                    "warm-started run disagreed — warm start changed "
                    "an answer"
                )
        return "warm run produced a different number of answers"
    if warm_schedule != cold_schedule:
        return (
            "warm start changed the Equation 6 test schedule "
            f"(cold ends at {cold_schedule[-1]} tests, warm at "
            f"{warm_schedule[-1]})"
        )
    if warm_pib.climbs > cold.climbs:
        return (
            f"warm start from the settled winner climbed "
            f"{warm_pib.climbs} times vs the cold run's {cold.climbs}"
        )
    return None


def check_experience_determinism(
    spec: WorldSpec, config: Optional[ExperienceConfig] = None
) -> Optional[str]:
    """Rankings and fingerprints are pure functions of their inputs."""
    knobs = _knobs(config)
    world = build_graph_world(spec)
    profile = form_profile(world.graph)
    rebuilt = form_profile(build_graph_world(spec).graph)
    if profile != rebuilt or profile.fingerprint != rebuilt.fingerprint:
        return "fingerprint changed across a world rebuild"

    # Shorter sibling runs keep the check cheap; their records only
    # need to exist, not to be well-trained.
    records = []
    for offset in (0, 101, 202, 303):
        sibling = dataclasses.replace(
            spec,
            seed=spec.seed + offset,
            n_retrievals=3 + (spec.seed + offset) % 3,
        )
        record = _record_for(sibling, contexts=20)
        if record is not None:
            records.append(record)
    if not records:
        return "no sibling world produced a record"

    forward, backward = ExperienceStore(), ExperienceStore()
    for record in records:
        forward.add(record)
    for record in reversed(records):
        backward.add(record)
    kwargs = dict(
        k=max(knobs.neighbour_k, len(records)),
        floor=0.0,
        pattern_weight=knobs.pattern_weight,
        similarity_weight=knobs.similarity_weight,
    )
    first = forward.nearest(profile, **kwargs)
    second = backward.nearest(profile, **kwargs)
    if first != second:
        return "nearest() ranking depends on insertion order"

    roundtrip = ExperienceStore.from_payload(
        json.loads(json.dumps(forward.to_payload()))
    )
    if roundtrip.nearest(profile, **kwargs) != first:
        return "nearest() ranking changed across a JSON round-trip"
    if roundtrip.records() != forward.records():
        return "record set changed across a JSON round-trip"
    return None


def check_experience_recovery(
    spec: WorldSpec, config: Optional[ExperienceConfig] = None
) -> Optional[str]:
    """Corrupt stores degrade gracefully and never lose the backup."""
    del config
    record = _record_for(spec, contexts=20)
    if record is None:
        return "cold run produced no contributable record"
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "experience.json")
        store = ExperienceStore(path=path)
        store.add(record)
        store.save()
        store.save()  # rotates the first save into the .bak
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"torn": ')
        recovered = ExperienceStore.open(path)
        if recovered.recovered or len(recovered) != 1:
            return "corrupt main file did not fall back to the backup"
        if recovered.records() != store.records():
            return "backup fallback lost or altered records"
        with open(path + ".bak", "w", encoding="utf-8") as handle:
            handle.write("not json either")
        empty = ExperienceStore.open(path)
        if not empty.recovered or len(empty) != 0:
            return (
                "doubly-corrupt store should degrade to empty with "
                "recovered=True"
            )
        empty.add(record)
        if empty.save() != path:
            return "recovered store failed to save"
        reopened = ExperienceStore.open(path)
        if reopened.recovered or reopened.records() != [record]:
            return "store saved after recovery did not reopen cleanly"
    return None

"""Federation oracles: cross-backend equivalence, partial soundness.

Three deterministic checks close the loop on the pluggable-storage
refactor (DESIGN §13):

* **Backend equivalence** — the same seeded knowledge base answered
  through the in-memory :class:`~repro.datalog.database.Database`, the
  :class:`~repro.storage.sqlite.SQLiteFactStore`, and a *healthy*
  :class:`~repro.storage.federation.FederatedStore` must produce the
  same answers **in the same order** (the enumeration-order contract,
  not just set equality).
* **Partial soundness** — under injected shard faults, every answer
  the federated store yields must belong to the complete answer set
  (shards hide facts, never invent them); a lost answer must be
  accompanied by a partial :class:`~repro.storage.interface.Completeness`
  verdict naming real shards, and — for base-relation queries, whose
  facts live on exactly one shard — naming the owning shard; a
  ``complete`` verdict must mean the full answer set.  The probe path
  must never raise.
* **Byte determinism** — replaying the same faulty federated world
  (same spec, fresh store) reproduces the same answers, verdicts,
  billed latencies, probe counts, and final breaker states.

Federation worlds keep ``negation_rate`` at 0: under
negation-as-failure a hidden fact could *flip a negated subgoal to
true*, so partial retrieval is only guaranteed to under-approximate on
positive programs.  That boundary is part of the contract and is
documented in DESIGN §13.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..datalog.engine import TopDownEngine
from ..resilience.faults import FaultSpec
from ..storage.federation import FederatedStore
from ..storage.sqlite import SQLiteFactStore
from .worldgen import KBWorld, WorldSpec, build_kb_world

__all__ = [
    "check_federation_equivalence",
    "check_federation_partial",
    "check_federation_determinism",
]


def _answers(engine: TopDownEngine, query, store) -> Tuple:
    """The query's ground answer instances, in enumeration order."""
    return tuple(
        query.substitute(answer.substitution)
        for answer in engine.answers(query, store)
    )


def _faulty_store(spec: WorldSpec, world: KBWorld) -> FederatedStore:
    """The spec's faulty federated backend over the world's facts."""
    return FederatedStore.from_program(
        "\n".join(world.fact_text),
        shards=max(spec.n_shards, 1),
        seed=spec.seed,
        fault=FaultSpec(
            fault_rate=spec.fault_rate, timeout_rate=spec.timeout_rate
        ),
        replicas=spec.shard_replicas,
        retry_budget=max(spec.retries - 1, 0),
    )


def check_federation_equivalence(spec: WorldSpec) -> Optional[str]:
    """Memory vs SQLite vs healthy-federated: same answers, same order."""
    world = build_kb_world(spec)
    engine = TopDownEngine(world.rules)
    facts = "\n".join(world.fact_text)
    sqlite = SQLiteFactStore.from_program(facts)
    federated = FederatedStore.from_program(
        facts,
        shards=max(spec.n_shards, 1),
        seed=spec.seed,
        replicas=spec.shard_replicas,
    )
    try:
        for query in world.queries:
            baseline = _answers(engine, query, world.database)
            for label, store in (("sqlite", sqlite), ("federated", federated)):
                got = _answers(engine, query, store)
                if got != baseline:
                    return (
                        f"{label} backend diverges on {query}: "
                        f"{[str(a) for a in got]} != "
                        f"{[str(a) for a in baseline]}"
                    )
        if federated.dark_probes:
            return (
                f"healthy federated store went dark "
                f"{federated.dark_probes} times with no faults configured"
            )
    finally:
        sqlite.close()
    return None


def check_federation_partial(spec: WorldSpec) -> Optional[str]:
    """Partial answers under shard faults: subset, attributed, no raise."""
    world = build_kb_world(spec)
    engine = TopDownEngine(world.rules)
    store = _faulty_store(spec, world)
    shard_names = set(store.shard_names())
    base_signatures = set(world.database.signatures())
    for query in world.queries:
        complete_set = {
            query.substitute(answer.substitution)
            for answer in engine.answers(query, world.database)
        }
        store.begin_probe_window()
        try:
            got = {
                query.substitute(answer.substitution)
                for answer in engine.answers(query, store)
            }
        except Exception as error:  # the probe path must never raise
            return f"federated retrieval raised on {query}: {error!r}"
        finally:
            window = store.end_probe_window()
        verdict = window.completeness
        missing = set(verdict.missing_shards)
        if not missing <= shard_names:
            return (
                f"verdict for {query} names unknown shards "
                f"{sorted(missing - shard_names)}"
            )
        invented = got - complete_set
        if invented:
            return (
                f"partial answer invented bindings on {query}: "
                f"{sorted(str(a) for a in invented)}"
            )
        if got != complete_set:
            if verdict.complete:
                return (
                    f"answers lost on {query} but the verdict claims "
                    f"completeness"
                )
            if query.signature in base_signatures:
                owner = store.shard_for(query.signature).name
                if owner not in missing:
                    return (
                        f"lost base-relation answers on {query} but owning "
                        f"shard {owner} is not attributed (missing="
                        f"{sorted(missing)})"
                    )
        if window.billed_cost < 0.0:
            return f"negative billed latency {window.billed_cost} on {query}"
    return None


def _federation_fingerprint(spec: WorldSpec) -> List[Tuple]:
    """One faulty run's byte-determinism fingerprint."""
    world = build_kb_world(spec)
    engine = TopDownEngine(world.rules)
    store = _faulty_store(spec, world)
    rows: List[Tuple] = []
    for query in world.queries:
        store.begin_probe_window()
        try:
            got = tuple(
                str(query.substitute(answer.substitution))
                for answer in engine.answers(query, store)
            )
        finally:
            window = store.end_probe_window()
        rows.append(
            (
                str(query),
                got,
                window.completeness.missing_shards,
                round(window.billed_cost, 9),
                window.probes,
            )
        )
    rows.append(
        (
            "telemetry",
            store.probes,
            store.dark_probes,
            store.hedged_reads,
            round(store.billed_cost, 9),
            tuple(sorted(store.breaker_states().items())),
        )
    )
    return rows


def check_federation_determinism(spec: WorldSpec) -> Optional[str]:
    """Same spec, fresh store: the faulty replay must be byte-identical."""
    try:
        first = _federation_fingerprint(spec)
        second = _federation_fingerprint(spec)
    except Exception as error:
        return f"federated replay raised: {error!r}"
    if first != second:
        for number, (left, right) in enumerate(zip(first, second)):
            if left != right:
                return (
                    f"federated replay diverged at row #{number}: "
                    f"{left} != {right}"
                )
        return "federated replay produced different row counts"
    return None

"""The verification subsystem: deterministic simulation + differential oracles.

Nothing in a hand-written unit test hunts for the *statistical*
failures the paper's theorems forbid — a PIB climb that makes the
strategy worse, a PAO output more than ``ε`` from ``Υ_AOT``'s optimum,
a serving batch whose answers depend on thread timing.  This package
generates whole seeded worlds (knowledge base + inference graph +
context distribution + fault plan + query stream), runs the system
end-to-end, and differentially checks every result against the
brute-force oracles in :mod:`repro.optimal`:

* :mod:`repro.verify.worldgen` — the :class:`WorldSpec` (a compact,
  JSON-round-tripping description of one world; any failure is a
  one-line repro) plus a delta-debugging shrinker;
* :mod:`repro.verify.oracles` — exhaustive-enumeration cost checks,
  top-down vs. bottom-up answer-set equivalence, the three-way
  top-down/bottom-up/QSQN oracle over the hostile world zoo, and
  Clopper–Pearson contract checkers for Theorem 1 (PIB) and
  Theorems 2/3 (PAO);
* :mod:`repro.verify.simulator` — a virtual-clock, single-threaded
  replay of serving-layer batches, byte-deterministic from the seed;
* :mod:`repro.verify.invariants` — always-on runtime invariants
  (Δ̃ conservatism, Equation 6 schedule monotonicity, breaker state
  legality, cache generation coherence) assertable in any test;
* :mod:`repro.verify.overload` — seeded burst worlds through the real
  admission-controlled server: outcome byte-determinism, worker-count
  parity, learner isolation, no-starvation and quota ceilings;
* :mod:`repro.verify.federation` — cross-backend answer equivalence
  (memory vs SQLite vs healthy-federated), partial-answer soundness
  under shard faults, and faulty-replay byte-determinism;
* :mod:`repro.verify.runner` — the profile runner behind
  ``repro verify --seeds N --profile
  {engine,qsqn,pib,pao,serving,chaos,overload,federation}``.
"""

from .invariants import (
    ConservatismWatcher,
    InvariantMonitor,
    InvariantViolation,
    check_cache_generation_coherence,
    verify_invariants,
)
from .oracles import (
    OracleFailure,
    OracleReport,
    check_answer_equivalence,
    check_cost_oracle,
    check_three_way_equivalence,
    clopper_pearson,
    pao_contract,
    pib_contract,
)
from .federation import (
    check_federation_determinism,
    check_federation_equivalence,
    check_federation_partial,
)
from .overload import OverloadRun, simulate_overload
from .runner import PROFILES, VerifyReport, replay_spec, run_verify
from .simulator import SimulatedBatch, simulate
from .worldgen import GraphWorld, KBWorld, WorldSpec, build_graph_world, build_kb_world, shrink

__all__ = [
    "ConservatismWatcher",
    "GraphWorld",
    "InvariantMonitor",
    "InvariantViolation",
    "KBWorld",
    "OracleFailure",
    "OracleReport",
    "OverloadRun",
    "PROFILES",
    "SimulatedBatch",
    "VerifyReport",
    "WorldSpec",
    "build_graph_world",
    "build_kb_world",
    "check_answer_equivalence",
    "check_cache_generation_coherence",
    "check_cost_oracle",
    "check_federation_determinism",
    "check_federation_equivalence",
    "check_federation_partial",
    "check_three_way_equivalence",
    "clopper_pearson",
    "pao_contract",
    "pib_contract",
    "replay_spec",
    "run_verify",
    "shrink",
    "simulate",
    "simulate_overload",
    "verify_invariants",
]

"""Differential oracles: brute force, engine equivalence, contracts.

Three families of checks, all driven by :class:`~repro.verify.worldgen.WorldSpec`:

* **Exhaustive cost oracle** — on small graphs the optimal strategy is
  computable by enumeration (:mod:`repro.optimal.brute_force`); the
  oracle cross-checks ``Υ_AOT`` against it exactly.
* **Answer-set equivalence** — the top-down SLD engine and the
  semi-naive bottom-up engine implement the same semantics by two
  unrelated algorithms; on every generated knowledge base and query
  their answer sets must coincide.
* **Statistical contracts** — Theorem 1 (every PIB climb is a true
  improvement w.p. ≥ 1−δ) and Theorems 2/3 (PAO lands within ε of the
  optimum w.p. ≥ 1−δ) are probabilistic: a single bad run proves
  nothing.  The contract checkers run N seeded worlds, count the bad
  ones, and reject only when the Clopper–Pearson *lower* confidence
  bound on the bad-run rate exceeds δ — so a correct implementation
  essentially never fails, while a seeded bug (e.g. the flipped
  Equation 6 test) is caught in a handful of worlds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..datalog.bottomup import BottomUpEngine
from ..datalog.engine import TopDownEngine
from ..datalog.parser import parse_atom
from ..datalog.qsqn import QSQNEngine
from ..errors import SampleBudgetExceeded
from ..learning import pib as pib_module
from ..learning.pao import pao, sample_requirements
from ..optimal.brute_force import optimal_strategy_brute_force
from ..optimal.upsilon import upsilon_aot
from ..strategies.engines import BottomUpProofAdapter
from ..strategies.execution import execute
from ..strategies.expected_cost import expected_cost_exact
from ..strategies.strategy import Strategy
from ..workloads.hostile import mutation_storm
from .invariants import ConservatismWatcher, InvariantMonitor, InvariantViolation
from .worldgen import WorldSpec, build_graph_world, build_kb_world, context_rng

__all__ = [
    "OracleFailure",
    "OracleReport",
    "clopper_pearson",
    "check_cost_oracle",
    "check_answer_equivalence",
    "check_three_way_equivalence",
    "pib_run_world",
    "pib_contract",
    "pao_contract",
]

#: Cost-equality slack for exact expected-cost comparisons.
TOLERANCE = 1e-9


@dataclass
class OracleFailure:
    """One verified failure, always carrying a replayable spec."""

    spec: WorldSpec
    message: str

    def __str__(self) -> str:
        return f"seed {self.spec.seed}: {self.message}"


@dataclass
class OracleReport:
    """The outcome of one oracle over a batch of worlds."""

    name: str
    worlds: int = 0
    skipped: int = 0
    failures: List[OracleFailure] = field(default_factory=list)
    stats: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        verdict = "ok" if self.ok else f"FAIL ({len(self.failures)})"
        extra = "".join(
            f", {key}={value}" for key, value in sorted(self.stats.items())
        )
        skipped = f", skipped {self.skipped}" if self.skipped else ""
        return f"{self.name}: {verdict} over {self.worlds} worlds{skipped}{extra}"


# ----------------------------------------------------------------------
# Clopper–Pearson (exact binomial) interval — pure python, no scipy
# ----------------------------------------------------------------------


def _binom_tail_ge(k: int, n: int, p: float) -> float:
    """``P[X ≥ k]`` for ``X ~ Binomial(n, p)`` via exact summation."""
    if k <= 0:
        return 1.0
    if p <= 0.0:
        return 0.0
    if p >= 1.0:
        return 1.0
    return sum(
        math.comb(n, i) * (p ** i) * ((1.0 - p) ** (n - i))
        for i in range(k, n + 1)
    )


def _bisect(predicate, low: float, high: float, iterations: int = 60) -> float:
    """Smallest ``x`` in [low, high] with ``predicate(x)`` true, assuming
    monotonicity."""
    for _ in range(iterations):
        mid = (low + high) / 2.0
        if predicate(mid):
            high = mid
        else:
            low = mid
    return (low + high) / 2.0


def clopper_pearson(
    k: int, n: int, confidence: float = 0.999
) -> Tuple[float, float]:
    """The exact (Clopper–Pearson) two-sided confidence interval for a
    binomial proportion, from ``k`` successes in ``n`` trials.

    Implemented with exact binomial tails (:func:`math.comb`) and
    bisection — no external statistics dependency.  The contract
    checkers use the *lower* bound: a contract with mistake budget δ
    is rejected only when even the lower bound on the observed bad-run
    rate exceeds δ.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not 0 <= k <= n:
        raise ValueError(f"k must be in [0, {n}], got {k}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    alpha = 1.0 - confidence
    if k == 0:
        lower = 0.0
    else:
        # P[X ≥ k | p] grows in p; lower bound solves tail = α/2.
        lower = _bisect(
            lambda p: _binom_tail_ge(k, n, p) >= alpha / 2.0, 0.0, 1.0
        )
    if k == n:
        upper = 1.0
    else:
        # P[X ≤ k | p] shrinks in p; upper bound solves tail = α/2.
        upper = _bisect(
            lambda p: 1.0 - _binom_tail_ge(k + 1, n, p) <= alpha / 2.0,
            0.0,
            1.0,
        )
    return lower, upper


# ----------------------------------------------------------------------
# Exhaustive cost oracle
# ----------------------------------------------------------------------


def check_cost_oracle(spec: WorldSpec) -> Optional[str]:
    """``Υ_AOT`` against the exhaustive path-structured enumeration.

    Returns an error message, or ``None`` when the world passes.
    """
    world = build_graph_world(spec)
    upsilon = upsilon_aot(world.graph, world.probs)
    upsilon_cost = expected_cost_exact(upsilon, world.probs)
    _, brute_cost = optimal_strategy_brute_force(world.graph, world.probs)
    if upsilon_cost > brute_cost + max(TOLERANCE, 1e-7 * abs(brute_cost)):
        return (
            f"upsilon_aot cost {upsilon_cost:.9g} exceeds brute-force "
            f"optimum {brute_cost:.9g} "
            f"(strategy {' '.join(upsilon.arc_names())})"
        )
    return None


# ----------------------------------------------------------------------
# Top-down vs. bottom-up answer-set equivalence
# ----------------------------------------------------------------------


def check_answer_equivalence(spec: WorldSpec) -> Optional[str]:
    """The SLD engine against semi-naive bottom-up evaluation.

    For every query in the world both engines must agree on provability
    *and* produce the same set of ground answer instances.
    """
    world = build_kb_world(spec)
    top_down = TopDownEngine(world.rules)
    bottom_up = BottomUpEngine(world.rules)
    for query in world.queries:
        td_instances = {
            query.substitute(answer.substitution)
            for answer in top_down.answers(query, world.database)
        }
        bu_instances = {
            query.substitute(substitution)
            for substitution in bottom_up.answers(query, world.database)
        }
        if td_instances != bu_instances:
            only_td = sorted(str(a) for a in td_instances - bu_instances)
            only_bu = sorted(str(a) for a in bu_instances - td_instances)
            return (
                f"answer sets differ on {query}: "
                f"top-down-only={only_td} bottom-up-only={only_bu}"
            )
        proved = top_down.prove(query, world.database).proved
        holds = bottom_up.holds(query, world.database)
        if proved != holds or proved != bool(td_instances):
            return (
                f"provability disagrees on {query}: "
                f"prove={proved} holds={holds} answers={len(td_instances)}"
            )
    return None


# ----------------------------------------------------------------------
# Three-way equivalence (top-down vs. bottom-up vs. QSQN)
# ----------------------------------------------------------------------


def _answer_sets_agree(engines, queries, database) -> Optional[str]:
    """All engines must produce the same ground answer-instance set and
    the same provability verdict for every query.  ``engines`` is a
    sequence of ``(name, engine)`` pairs sharing the prove/answers
    protocol of :mod:`repro.strategies.engines`."""
    for query in queries:
        results = []
        for name, engine in engines:
            instances = frozenset(
                query.substitute(answer.substitution)
                for answer in engine.answers(query, database)
            )
            results.append((name, instances, engine.prove(query, database).proved))
        base_name, base_instances, _ = results[0]
        for name, instances, _ in results[1:]:
            if instances != base_instances:
                only_base = sorted(str(a) for a in base_instances - instances)
                only_other = sorted(str(a) for a in instances - base_instances)
                return (
                    f"answer sets differ on {query}: "
                    f"{base_name}-only={only_base} {name}-only={only_other}"
                )
        for name, instances, proved in results:
            if proved != bool(base_instances):
                return (
                    f"provability disagrees on {query}: {name} "
                    f"prove={proved} but answers={len(base_instances)}"
                )
    return None


def check_three_way_equivalence(spec: WorldSpec) -> Optional[str]:
    """SLD vs. semi-naive bottom-up vs. QSQN on one world.

    The three engines implement the same stratified semantics by three
    unrelated algorithms (tuple-at-a-time resolution, blind saturation,
    goal-directed set-at-a-time nets); any pairwise disagreement on
    ground answer instances or provability is a bug in at least one of
    them.  With ``mutation_steps > 0`` the world's database is then
    mutated one seeded storm step at a time and the full comparison
    re-run after every step against the *same* engine objects — so
    state cached across a generation bump fails loudly rather than
    silently serving stale answers.
    """
    world = build_kb_world(spec)
    engines = (
        ("top-down", TopDownEngine(world.rules)),
        ("bottom-up", BottomUpProofAdapter(world.rules)),
        ("qsqn", QSQNEngine(world.rules)),
    )
    message = _answer_sets_agree(engines, world.queries, world.database)
    if message is not None:
        return message
    if spec.mutation_steps > 0:
        ops = mutation_storm(spec.seed, world.fact_text, spec.mutation_steps)
        for number, (op, text) in enumerate(ops):
            fact = parse_atom(text)
            if op == "add":
                world.database.add(fact)
            else:
                world.database.remove(fact)
            message = _answer_sets_agree(engines, world.queries,
                                         world.database)
            if message is not None:
                return f"after storm step #{number} ({op} {text}): {message}"
    return None


# ----------------------------------------------------------------------
# PIB contract (Theorem 1)
# ----------------------------------------------------------------------


@dataclass
class PIBWorldResult:
    """One seeded PIB run, judged against exact expected costs."""

    spec: WorldSpec
    climbs: int
    bad_climbs: int
    detail: Optional[str] = None
    invariant_error: Optional[str] = None


def pib_run_world(
    spec: WorldSpec, check_invariants: bool = True
) -> PIBWorldResult:
    """Run PIB on one world and judge every climb it takes.

    The world's distribution is independent, so the true expected cost
    of any strategy is exact (:func:`expected_cost_exact`) — a climb
    from ``Θ`` to ``Θ'`` is *bad* iff ``C[Θ'] > C[Θ]``.  When
    ``check_invariants`` is on, the run also asserts Δ̃ conservatism
    per sample and Equation 6 schedule monotonicity per neighbour.
    """
    world = build_graph_world(spec)
    monitor = InvariantMonitor() if check_invariants else None
    learner = pib_module.PIB(
        world.graph,
        delta=spec.delta,
        recorder=monitor if monitor is not None else pib_module.NULL_RECORDER,
    )
    watcher = ConservatismWatcher() if check_invariants else None
    sampler = world.distribution.sampler(context_rng(spec))
    climbs = 0
    bad = 0
    detail: Optional[str] = None
    invariant_error: Optional[str] = None
    try:
        for _ in range(spec.contexts):
            context = sampler()
            before = learner.strategy
            result = execute(before, context)
            if watcher is not None:
                watcher.observe(learner, result)
            learner.record(result)
            if learner.strategy is not before:
                climbs += 1
                gain = expected_cost_exact(
                    before, world.probs
                ) - expected_cost_exact(learner.strategy, world.probs)
                if gain < -TOLERANCE:
                    bad += 1
                    if detail is None:
                        detail = (
                            f"climb #{climbs} worsened expected cost by "
                            f"{-gain:.6g} "
                            f"({' '.join(before.arc_names())} -> "
                            f"{' '.join(learner.strategy.arc_names())})"
                        )
        if monitor is not None:
            monitor.check()
    except InvariantViolation as violation:
        invariant_error = str(violation)
    return PIBWorldResult(spec, climbs, bad, detail, invariant_error)


def pib_contract(
    specs: Sequence[WorldSpec],
    confidence: float = 0.999,
    check_invariants: bool = True,
) -> OracleReport:
    """Theorem 1 as a falsifiable contract over many seeded worlds.

    A world is *bad* when any of its climbs worsened the true expected
    cost.  Theorem 1 bounds the per-run probability of that event by
    the run's δ, so the contract rejects only when the Clopper–Pearson
    lower bound on the bad-run rate exceeds δ.  Invariant violations
    (Δ̃ conservatism, Equation 6 monotonicity) are deterministic bugs
    and fail immediately.
    """
    report = OracleReport("pib-contract")
    if not specs:
        return report
    delta = specs[0].delta
    bad_runs = 0
    total_climbs = 0
    first_bad: Optional[PIBWorldResult] = None
    for spec in specs:
        outcome = pib_run_world(spec, check_invariants=check_invariants)
        report.worlds += 1
        total_climbs += outcome.climbs
        if outcome.invariant_error is not None:
            report.failures.append(
                OracleFailure(spec, f"invariant: {outcome.invariant_error}")
            )
            continue
        if outcome.bad_climbs:
            bad_runs += 1
            if first_bad is None:
                first_bad = outcome
    lower, upper = clopper_pearson(bad_runs, max(report.worlds, 1), confidence)
    report.stats.update(
        climbs=total_climbs,
        bad_runs=bad_runs,
        delta=delta,
        bad_rate_interval=(round(lower, 4), round(upper, 4)),
    )
    if lower > delta and first_bad is not None:
        report.failures.append(
            OracleFailure(
                first_bad.spec,
                f"bad-climb rate {bad_runs}/{report.worlds} "
                f"(CP lower bound {lower:.4f}) exceeds delta={delta}; "
                f"first bad world: {first_bad.detail}",
            )
        )
    return report


# ----------------------------------------------------------------------
# PAO contract (Theorems 2/3)
# ----------------------------------------------------------------------


def pao_contract(
    specs: Sequence[WorldSpec],
    confidence: float = 0.999,
    budget_cap: int = 60_000,
) -> OracleReport:
    """Theorems 2/3 as a falsifiable contract over many seeded worlds.

    Per world: fix ``ε`` as ``epsilon_fraction`` of the depth-first
    strategy's true cost, draw PAO's Equation 7/8 budgets, run the
    pipeline, and compare ``C[Θ_pao]`` against the brute-force optimum
    plus ε.  Worlds whose worst-case budget exceeds ``budget_cap``
    oracle draws are skipped (and counted — no silent caps).  The
    ε-violation rate is bounded against δ with Clopper–Pearson.
    """
    report = OracleReport("pao-contract")
    if not specs:
        return report
    delta = specs[0].delta
    violations = 0
    first_bad: Optional[Tuple[WorldSpec, str]] = None
    for spec in specs:
        world = build_graph_world(spec)
        aiming = spec.blockable_reduction_rate > 0.0
        baseline = Strategy.depth_first(world.graph)
        epsilon = max(
            spec.epsilon_fraction
            * expected_cost_exact(baseline, world.probs),
            0.25,
        )
        requirements = sample_requirements(
            world.graph, epsilon, spec.delta, aiming=aiming
        )
        if sum(requirements.values()) > budget_cap:
            report.skipped += 1
            continue
        report.worlds += 1
        try:
            result = pao(
                world.graph,
                epsilon,
                spec.delta,
                world.distribution.sampler(context_rng(spec)),
                aiming=aiming,
                max_contexts=budget_cap * 4,
            )
        except SampleBudgetExceeded as error:
            report.failures.append(
                OracleFailure(spec, f"sampling never converged: {error}")
            )
            continue
        pao_cost = expected_cost_exact(result.strategy, world.probs)
        _, optimal_cost = optimal_strategy_brute_force(
            world.graph, world.probs
        )
        if pao_cost > optimal_cost + epsilon + TOLERANCE:
            violations += 1
            if first_bad is None:
                first_bad = (
                    spec,
                    f"C[PAO]={pao_cost:.6g} > C[opt]+eps="
                    f"{optimal_cost + epsilon:.6g} "
                    f"(contexts used: {result.contexts_used})",
                )
    if report.worlds:
        lower, upper = clopper_pearson(violations, report.worlds, confidence)
        report.stats.update(
            violations=violations,
            delta=delta,
            violation_rate_interval=(round(lower, 4), round(upper, 4)),
        )
        if lower > delta and first_bad is not None:
            report.failures.append(
                OracleFailure(
                    first_bad[0],
                    f"epsilon-violation rate {violations}/{report.worlds} "
                    f"(CP lower bound {lower:.4f}) exceeds delta={delta}; "
                    f"first violating world: {first_bad[1]}",
                )
            )
    return report

"""Virtual-clock, single-threaded replay of serving-layer batches.

The real :class:`~repro.serving.server.QueryServer` runs batches over
an OS thread pool; its determinism contract (per-form submission
order ⇒ per-form climb parity) is asserted by the
``serving_determinism`` tests, but thread scheduling itself is not
reproducible.  This simulator replays the same sharded execution with
**simulated** workers under a virtual clock:

* queries are grouped by form (exactly the server's sharding key) and
  assigned round-robin to ``spec.workers`` simulated workers;
* a single-threaded event loop always advances the worker whose
  virtual clock is lowest (ties broken by worker index), charging each
  query's billed cost as its service time;
* every serve is logged as one JSON line (virtual time, worker, form,
  query, outcome, cost, cache status) — the whole trace is
  byte-deterministic from the :class:`~repro.verify.worldgen.WorldSpec`.

Because scheduling is a pure function of the spec, two simulations of
the same spec must produce identical bytes; and because per-form order
is preserved, a run with caches disabled must agree answer-for-answer
with a plain sequential loop over the processor.  Both properties are
checked by :func:`check_byte_determinism` / :func:`check_sequential_parity`;
:func:`check_cache_effects` adds the cache tiers and asserts hits only
ever change cost accounting, never answers, and
:func:`check_generation_coherence` asserts mutation invalidates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..datalog.rules import QueryForm
from ..serving.cache import AnswerCache
from ..serving.config import CacheConfig, ServingConfig, SessionConfig
from ..serving.server import QueryServer
from ..system import SelfOptimizingQueryProcessor, SystemAnswer
from .invariants import InvariantViolation, check_cache_generation_coherence
from .worldgen import KBWorld, WorldSpec, build_kb_world

__all__ = [
    "SimulatedBatch",
    "simulate",
    "check_byte_determinism",
    "check_sequential_parity",
    "check_cache_effects",
    "check_generation_coherence",
]


@dataclass
class SimulatedBatch:
    """One simulated serving run: answers (input order) + JSONL trace."""

    spec: WorldSpec
    answers: List[SystemAnswer]
    trace: str
    virtual_time: float
    report: Dict[str, Dict[str, object]]

    def answer_keys(self) -> List[Tuple[bool, str, float]]:
        """The comparison view of each answer: proved, bindings, cost."""
        return [
            (answer.proved, repr(answer.substitution), round(answer.cost, 9))
            for answer in self.answers
        ]


def _build_server(
    spec: WorldSpec, world: KBWorld, caches: bool
) -> QueryServer:
    processor = SelfOptimizingQueryProcessor(
        world.rules, config=SessionConfig(delta=spec.delta)
    )
    cache = (
        CacheConfig(
            answer_capacity=spec.answer_cache,
            subgoal_capacity=spec.subgoal_memo,
        )
        if caches
        else CacheConfig()
    )
    # workers=1: the simulator owns the schedule, the server just
    # serves submissions (its thread pool is never used).
    return QueryServer(processor, serving=ServingConfig(workers=1), cache=cache)


def simulate(spec: WorldSpec, caches: Optional[bool] = None) -> SimulatedBatch:
    """Run the spec's query batch under the virtual-clock scheduler.

    ``caches`` overrides the spec's cache configuration (``None``
    keeps it).  The batch is replayed ``spec.repeats`` times against
    one server — the second pass is where a configured answer cache
    starts hitting.
    """
    world = build_kb_world(spec)
    use_caches = (
        caches
        if caches is not None
        else bool(spec.answer_cache or spec.subgoal_memo)
    )
    server = _build_server(spec, world, use_caches)

    # Shard by form in first-appearance order, exactly like the server.
    groups: Dict[QueryForm, List[int]] = {}
    for index, query in enumerate(world.queries):
        groups.setdefault(QueryForm.of(query), []).append(index)
    workers = max(1, spec.workers)
    assignments: List[List[QueryForm]] = [[] for _ in range(workers)]
    for position, form in enumerate(groups):
        assignments[position % workers].append(form)

    events: List[Dict[str, object]] = []
    answers: List[Optional[SystemAnswer]] = [None] * len(world.queries)
    clock = [0.0] * workers
    total_time = 0.0

    for pass_number in range(1, max(spec.repeats, 1) + 1):
        pending: List[Tuple[int, List[int]]] = [
            (worker, [i for form in forms for i in groups[form]])
            for worker, forms in enumerate(assignments)
            if forms
        ]
        cursors = {worker: 0 for worker, _ in pending}
        queue = {worker: indexes for worker, indexes in pending}
        while True:
            # The worker with the lowest virtual clock serves next —
            # deterministic simulated parallelism, one real thread.
            ready = [
                worker
                for worker, indexes in queue.items()
                if cursors[worker] < len(indexes)
            ]
            if not ready:
                break
            worker = min(ready, key=lambda w: (clock[w], w))
            index = queue[worker][cursors[worker]]
            cursors[worker] += 1
            query = world.queries[index]
            answer = server.submit(query, world.database)
            service = max(answer.cost, 0.0)
            started = clock[worker]
            clock[worker] = started + service + 1.0  # +1: fixed overhead tick
            answers[index] = answer
            events.append(
                {
                    "t": round(started, 9),
                    "pass": pass_number,
                    "worker": worker,
                    "form": str(QueryForm.of(query)),
                    "query": str(query),
                    "proved": answer.proved,
                    "cost": round(answer.cost, 9),
                    "cached": answer.cached,
                    "degraded": answer.degraded,
                    "climbed": answer.climbed,
                }
            )
        total_time = max(total_time, max(clock) if workers else 0.0)

    trace = "".join(
        json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
        for event in events
    )
    return SimulatedBatch(
        spec,
        [answer for answer in answers if answer is not None],
        trace,
        total_time,
        server.processor.report(),
    )


# ----------------------------------------------------------------------
# Checks (each returns an error message or None)
# ----------------------------------------------------------------------


def check_byte_determinism(spec: WorldSpec) -> Optional[str]:
    """Two fresh simulations of one spec must be byte-identical.

    This is the serving layer's JSONL-trace identity check transplanted
    onto the simulator: everything — scheduling, caching, learning —
    must derive from the spec alone.
    """
    first = simulate(spec)
    second = simulate(spec)
    if first.trace != second.trace:
        first_lines = first.trace.splitlines()
        second_lines = second.trace.splitlines()
        for number, (left, right) in enumerate(
            zip(first_lines, second_lines)
        ):
            if left != right:
                return (
                    f"traces diverge at line {number}: {left!r} != {right!r}"
                )
        return (
            f"traces differ in length: {len(first_lines)} vs "
            f"{len(second_lines)} events"
        )
    return None


def check_sequential_parity(spec: WorldSpec) -> Optional[str]:
    """With caches off, simulated sharding must equal a plain loop.

    Per-form submission order is preserved by construction, so every
    answer (provability, bindings, billed cost) and every per-form
    climb count must match the strictly sequential reference run.
    """
    bare = spec.replace(answer_cache=0, subgoal_memo=0, repeats=1)
    simulated = simulate(bare, caches=False)

    world = build_kb_world(bare)
    processor = SelfOptimizingQueryProcessor(
        world.rules, config=SessionConfig(delta=bare.delta)
    )
    reference = [
        processor.query(query, world.database) for query in world.queries
    ]
    if len(reference) != len(simulated.answers):
        return (
            f"answer counts differ: sequential {len(reference)} vs "
            f"simulated {len(simulated.answers)}"
        )
    for index, (seq, sim) in enumerate(zip(reference, simulated.answers)):
        if (seq.proved, repr(seq.substitution)) != (
            sim.proved,
            repr(sim.substitution),
        ):
            return (
                f"answer #{index} differs: sequential "
                f"({seq.proved}, {seq.substitution}) vs simulated "
                f"({sim.proved}, {sim.substitution})"
            )
        if abs(seq.cost - sim.cost) > 1e-9:
            return (
                f"answer #{index} billed differently: sequential "
                f"{seq.cost} vs simulated {sim.cost}"
            )
    sequential_report = processor.report()
    for form, info in sequential_report.items():
        simulated_info = simulated.report.get(form)
        if simulated_info is None:
            return f"form {form} missing from the simulated report"
        if info.get("climbs") != simulated_info.get("climbs"):
            return (
                f"climb parity broken for {form}: sequential "
                f"{info.get('climbs')} vs simulated "
                f"{simulated_info.get('climbs')}"
            )
    return None


def check_cache_effects(spec: WorldSpec) -> Optional[str]:
    """Caches may change cost accounting, never answers.

    Runs the batch with the spec's cache tiers enabled and with both
    disabled; per query, provability and bindings must agree, a cached
    answer must be billed zero, and no degraded answer may be served
    from cache.
    """
    cached_spec = (
        spec
        if spec.answer_cache or spec.subgoal_memo
        else spec.replace(answer_cache=64, subgoal_memo=256)
    )
    with_caches = simulate(cached_spec, caches=True)
    without = simulate(cached_spec.replace(repeats=1), caches=False)

    batch = len(without.answers)
    if len(with_caches.answers) != batch:
        return "cache run served a different number of queries"
    for index, cached_answer in enumerate(with_caches.answers):
        reference = without.answers[index % batch]
        if (cached_answer.proved, repr(cached_answer.substitution)) != (
            reference.proved,
            repr(reference.substitution),
        ):
            return (
                f"cache changed answer #{index}: "
                f"({cached_answer.proved}, {cached_answer.substitution}) "
                f"vs uncached ({reference.proved}, {reference.substitution})"
            )
        if cached_answer.cached and cached_answer.cost != 0.0:
            return (
                f"cached answer #{index} billed {cached_answer.cost} "
                f"instead of zero"
            )
        if cached_answer.cached and cached_answer.degraded:
            return f"degraded answer #{index} was served from cache"
    return None


def check_generation_coherence(spec: WorldSpec) -> Optional[str]:
    """A warm answer cache must go cold when the database mutates."""
    world = build_kb_world(spec)
    cache = AnswerCache(capacity=64)
    processor = SelfOptimizingQueryProcessor(
        world.rules, config=SessionConfig(delta=spec.delta)
    )
    query = world.queries[0] if world.queries else None
    if query is None:
        return None
    answer = processor.query(query, world.database)
    cache.store(query, world.database, answer)
    try:
        check_cache_generation_coherence(cache, query, world.database)
    except InvariantViolation as violation:
        return str(violation)
    return None

"""Seeded world generation: the :class:`WorldSpec` and its shrinker.

A *world* is everything one end-to-end verification run needs:

* a random tree-shaped inference graph with an independent blocking
  distribution (via :mod:`repro.graphs.random_graphs`) — the symbolic
  level PIB/PAO and the cost oracles run on;
* a random stratified Datalog knowledge base (rules + facts) with a
  query stream — the concrete level the engine-equivalence oracle and
  the serving simulator run on;
* a fault plan — the chaos profile's injected storage failures.

All of it derives deterministically from a :class:`WorldSpec`, a flat
frozen dataclass that round-trips through JSON: a failing seed is a
one-line repro (``repro verify --replay world.json``).  The shrinker
materializes the knowledge base into explicit fact/rule/query text on
the spec and delta-debugs the lists down while the failure reproduces,
so a bug found in a 40-fact world comes back as a handful of lines.
"""

from __future__ import annotations

import dataclasses
import json
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..datalog.database import Database
from ..datalog.parser import parse_program, parse_query
from ..datalog.rules import RuleBase
from ..datalog.terms import Atom
from ..errors import ReproError
from ..graphs.inference_graph import InferenceGraph
from ..graphs.random_graphs import random_probabilities, random_tree_graph
from ..resilience.faults import FaultPlan, FaultSpec
from ..workloads.distributions import IndependentDistribution
from ..workloads.hostile import (
    KB_SHAPES,
    deep_recursion_program,
    hot_key_stream,
    negation_mix_program,
    same_generation_program,
)

__all__ = [
    "WorldSpec",
    "GraphWorld",
    "KBWorld",
    "build_graph_world",
    "build_kb_world",
    "materialize",
    "shifted_distribution",
    "shrink",
]

#: The verification profiles a spec can target.
PROFILE_NAMES = (
    "engine", "qsqn", "pib", "pao", "serving", "chaos", "overload",
    "federation", "experience",
)


@dataclass(frozen=True)
class WorldSpec:
    """A compact, JSON-round-tripping description of one random world.

    Every stochastic choice in the generated world flows from ``seed``
    through private :class:`random.Random` streams, so equal specs
    build byte-identical worlds.  ``kb_facts`` / ``kb_rules`` /
    ``kb_queries`` are normally ``None`` (the knowledge base is
    generated); the shrinker fills them with explicit Datalog text so
    a minimized failure stays replayable without the generator.
    """

    seed: int
    profile: str = "pib"
    # --- inference graph / distribution ------------------------------
    n_internal: int = 3
    n_retrievals: int = 4
    max_children: int = 3
    blockable_reduction_rate: float = 0.0
    prob_low: float = 0.1
    prob_high: float = 0.9
    # --- learning ------------------------------------------------------
    contexts: int = 120
    delta: float = 0.2
    epsilon_fraction: float = 0.5
    # --- knowledge base ------------------------------------------------
    n_base_relations: int = 3
    n_derived: int = 4
    universe: int = 8
    selectivity: float = 0.45
    max_body: int = 2
    negation_rate: float = 0.0
    n_queries: int = 12
    #: Knowledge-base shape: "layered" is the acyclic generator below;
    #: the hostile shapes ("deep-recursion", "same-generation",
    #: "negation-mix") come from :mod:`repro.workloads.hostile`.
    kb_shape: str = "layered"
    #: Cache-busting storm length: checks that understand it apply this
    #: many seeded add/remove mutations, re-judging after each one.
    mutation_steps: int = 0
    #: Hot-key skew: fraction of the query stream concentrated on one
    #: seeded hot query (0 = the plain generated stream).
    hot_key_skew: float = 0.0
    # --- serving -------------------------------------------------------
    workers: int = 2
    answer_cache: int = 0
    subgoal_memo: int = 0
    repeats: int = 2
    # --- chaos ---------------------------------------------------------
    fault_rate: float = 0.0
    timeout_rate: float = 0.0
    retries: int = 3
    #: Blend factor toward a second seeded probability draw applied at
    #: the run's midpoint (0 = stationary): the combined
    #: drift+faults+burst chaos world.
    drift_shift: float = 0.0
    #: Burst multiplier: chaos repeats each sampled context this many
    #: times; overload repeats the query stream this many times.
    burst_factor: int = 1
    # --- overload ------------------------------------------------------
    tenants: int = 3
    queue_capacity: int = 8
    tenant_rate: float = 0.0
    shed_policy: str = "reject-newest"
    request_deadline: Optional[float] = None
    # --- federation ----------------------------------------------------
    #: Shard count for federation worlds (the shard fault streams reuse
    #: ``fault_rate``/``timeout_rate``; ``retries`` maps to the store's
    #: retry budget).
    n_shards: int = 3
    shard_replicas: bool = False
    # --- explicit overrides (installed by the shrinker) ---------------
    kb_rules: Optional[Tuple[str, ...]] = None
    kb_facts: Optional[Tuple[str, ...]] = None
    kb_queries: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.profile not in PROFILE_NAMES:
            raise ReproError(
                f"unknown profile {self.profile!r}; "
                f"expected one of {', '.join(PROFILE_NAMES)}"
            )
        if self.kb_shape not in KB_SHAPES:
            raise ReproError(
                f"unknown kb_shape {self.kb_shape!r}; "
                f"expected one of {', '.join(KB_SHAPES)}"
            )
        # JSON round-trips lists as tuples-to-be; normalize eagerly so
        # equality (and therefore shrink caching) is structural.
        for field in ("kb_rules", "kb_facts", "kb_queries"):
            value = getattr(self, field)
            if value is not None and not isinstance(value, tuple):
                object.__setattr__(self, field, tuple(value))

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Only the fields that differ from the defaults (plus seed and
        profile) — the one-line repro stays one line."""
        compact: Dict[str, object] = {}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if field.name in ("seed", "profile") or value != field.default:
                compact[field.name] = (
                    list(value) if isinstance(value, tuple) else value
                )
        return compact

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WorldSpec":
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ReproError(f"unknown WorldSpec fields: {sorted(unknown)}")
        if "seed" not in data:
            raise ReproError("WorldSpec JSON must carry a 'seed'")
        return cls(**data)  # type: ignore[arg-type]

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WorldSpec":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ReproError("WorldSpec JSON must be an object")
        return cls.from_dict(data)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "WorldSpec":
        with open(path, encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def replace(self, **changes: object) -> "WorldSpec":
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Graph worlds (PIB / PAO / chaos)
# ----------------------------------------------------------------------


@dataclass
class GraphWorld:
    """The symbolic level: graph, probabilities, distribution, faults."""

    spec: WorldSpec
    graph: InferenceGraph
    probs: Dict[str, float]
    distribution: IndependentDistribution
    fault_plan: Optional[FaultPlan]


def build_graph_world(spec: WorldSpec) -> GraphWorld:
    """Materialize the spec's inference-graph world.

    The graph/probability stream and the context-sampling stream are
    separate ``Random`` instances so the graph shape never depends on
    how many contexts a check draws.
    """
    rng = random.Random(spec.seed)
    graph = random_tree_graph(
        rng,
        n_internal=spec.n_internal,
        n_retrievals=spec.n_retrievals,
        max_children=spec.max_children,
        blockable_reduction_rate=spec.blockable_reduction_rate,
    )
    probs = random_probabilities(
        rng, graph, low=spec.prob_low, high=spec.prob_high
    )
    distribution = IndependentDistribution(graph, probs)
    fault_plan = None
    if spec.fault_rate > 0.0 or spec.timeout_rate > 0.0:
        fault_plan = FaultPlan(
            seed=spec.seed,
            default=FaultSpec(
                fault_rate=spec.fault_rate, timeout_rate=spec.timeout_rate
            ),
        )
    return GraphWorld(spec, graph, probs, distribution, fault_plan)


def context_rng(spec: WorldSpec) -> random.Random:
    """The context-sampling stream, decoupled from world construction."""
    return random.Random((spec.seed << 16) ^ 0x5EED)


def shifted_distribution(
    spec: WorldSpec, world: GraphWorld
) -> IndependentDistribution:
    """The post-drift regime for combined chaos worlds: the world's
    probabilities blended ``drift_shift`` of the way toward a second
    seeded draw.  Deterministic in the spec, like everything else."""
    rng = random.Random((spec.seed << 4) ^ 0xD51F7)
    target = random_probabilities(
        rng, world.graph, low=spec.prob_low, high=spec.prob_high
    )
    blended = {
        name: (1.0 - spec.drift_shift) * prob
        + spec.drift_shift * target[name]
        for name, prob in world.probs.items()
    }
    return IndependentDistribution(world.graph, blended)


# ----------------------------------------------------------------------
# Knowledge-base worlds (engine / serving)
# ----------------------------------------------------------------------


@dataclass
class KBWorld:
    """The concrete level: rules, facts, and a query stream.

    ``rule_text`` / ``fact_text`` / ``query_text`` are the exact lines
    the shrinker edits; parsing them back yields ``rules`` /
    ``database`` / ``queries``.
    """

    spec: WorldSpec
    rules: RuleBase
    database: Database
    queries: List[Atom]
    rule_text: Tuple[str, ...]
    fact_text: Tuple[str, ...]
    query_text: Tuple[str, ...]


def _generate_kb_text(
    spec: WorldSpec,
) -> Tuple[Tuple[str, ...], Tuple[str, ...], Tuple[str, ...]]:
    """Random stratified (acyclic, range-restricted) Datalog as text.

    Predicates are generated in dependency order — derived predicate
    ``p_i`` only ever references base relations and earlier ``p_j`` —
    so the program is trivially stratified and the top-down engine
    terminates without leaning on its loop check.  Negated body
    literals (rate-controlled) use only variables already bound by a
    positive literal, keeping rules safe.

    The hostile ``kb_shape`` values dispatch to the seeded generators
    in :mod:`repro.workloads.hostile` instead (same return shape).
    """
    if spec.kb_shape == "deep-recursion":
        return deep_recursion_program(spec.seed, n_queries=spec.n_queries)
    if spec.kb_shape == "same-generation":
        return same_generation_program(spec.seed, n_queries=spec.n_queries)
    if spec.kb_shape == "negation-mix":
        return negation_mix_program(
            spec.seed, universe=spec.universe, n_queries=spec.n_queries
        )
    rng = random.Random((spec.seed << 8) ^ 0xDA7A)
    universe = [f"c{index}" for index in range(spec.universe)]
    base = [
        (f"e{index}", rng.choice((1, 1, 2)))
        for index in range(spec.n_base_relations)
    ]

    facts: List[str] = []
    for name, arity in base:
        if arity == 1:
            for constant in universe:
                if rng.random() < spec.selectivity:
                    facts.append(f"{name}({constant}).")
        else:
            # Sparser pairs: aim for roughly `selectivity * universe`
            # tuples so binary relations don't dominate the world.
            for left in universe:
                for right in universe:
                    if rng.random() < spec.selectivity / max(len(universe) / 2, 1):
                        facts.append(f"{name}({left}, {right}).")

    available: List[Tuple[str, int]] = list(base)
    rules: List[str] = []
    derived: List[Tuple[str, int]] = []
    for index in range(spec.n_derived):
        head_name = f"p{index}"
        head_arity = 1
        clauses = rng.choice((1, 1, 2))
        for _ in range(clauses):
            body: List[str] = []
            bound = ["X"]
            length = rng.randint(1, max(spec.max_body, 1))
            for position in range(length):
                pred, arity = rng.choice(available)
                if arity == 1:
                    args = [rng.choice(bound)]
                else:
                    first = rng.choice(bound)
                    if rng.random() < 0.5 or len(bound) > 2:
                        second = rng.choice(bound + ["Y"])
                    else:
                        second = "Y"
                    args = [first, second]
                    if "Y" in args and "Y" not in bound:
                        bound.append("Y")
                negate = (
                    position > 0
                    and rng.random() < spec.negation_rate
                    and all(arg in bound[:1] for arg in args)
                )
                literal = f"{pred}({', '.join(args)})"
                body.append(f"not {literal}" if negate else literal)
            # Range restriction: X must occur in a positive literal.
            if not any("X" in part and not part.startswith("not ")
                       for part in body):
                anchor, anchor_arity = rng.choice(base)
                anchor_args = "X" if anchor_arity == 1 else "X, X"
                body.insert(0, f"{anchor}({anchor_args})")
            rules.append(f"{head_name}(X) :- {', '.join(body)}.")
        derived.append((head_name, head_arity))
        available.append((head_name, head_arity))

    queries: List[str] = []
    askable = derived + base
    for _ in range(spec.n_queries):
        pred, arity = rng.choice(askable)
        args = []
        for _ in range(arity):
            if rng.random() < 0.5:
                args.append(rng.choice(universe))
            else:
                args.append("X" if "X" not in args else "Y")
        queries.append(f"{pred}({', '.join(args)})?")
    return tuple(rules), tuple(facts), tuple(queries)


def build_kb_world(spec: WorldSpec) -> KBWorld:
    """Materialize the spec's knowledge-base world.

    Explicit ``kb_*`` overrides (set by the shrinker or a hand-edited
    repro file) win over generation.
    """
    if spec.kb_rules is not None:
        rule_text = tuple(spec.kb_rules)
        fact_text = tuple(spec.kb_facts or ())
        query_text = tuple(spec.kb_queries or ())
    else:
        rule_text, fact_text, query_text = _generate_kb_text(spec)
    rules = parse_program("\n".join(rule_text))
    database = Database.from_program("\n".join(fact_text))
    stream = query_text
    if spec.hot_key_skew > 0.0 and query_text:
        # The skewed stream is derived, not stored: the shrinkable
        # ``query_text`` stays the compact base list.
        stream = hot_key_stream(
            spec.seed, query_text, hot_fraction=spec.hot_key_skew
        )
    queries = [parse_query(text) for text in stream]
    return KBWorld(spec, rules, database, queries, rule_text, fact_text,
                   query_text)


def materialize(spec: WorldSpec) -> WorldSpec:
    """The spec with its knowledge base frozen into explicit text —
    the starting point for shrinking."""
    if spec.kb_rules is not None:
        return spec
    world = build_kb_world(spec)
    return spec.replace(
        kb_rules=world.rule_text,
        kb_facts=world.fact_text,
        kb_queries=world.query_text,
    )


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------


def _shrink_list(
    items: Sequence[str],
    rebuild: Callable[[Tuple[str, ...]], WorldSpec],
    fails: Callable[[WorldSpec], bool],
    keep_at_least: int = 0,
) -> Tuple[str, ...]:
    """Greedy ddmin: drop chunks (halving granularity) while the
    failure reproduces."""
    current = list(items)
    chunk = max(len(current) // 2, 1)
    while True:
        removed_any = False
        index = 0
        while index < len(current):
            candidate = current[:index] + current[index + chunk:]
            if len(candidate) >= keep_at_least and fails(
                rebuild(tuple(candidate))
            ):
                current = candidate
                removed_any = True
            else:
                index += chunk
        if chunk == 1 and not removed_any:
            return tuple(current)
        chunk = max(chunk // 2, 1)


def _shrink_int(
    spec: WorldSpec,
    field: str,
    floor: int,
    fails: Callable[[WorldSpec], bool],
) -> WorldSpec:
    """Halve an integer field toward ``floor`` while the failure holds."""
    while getattr(spec, field) > floor:
        smaller = max(getattr(spec, field) // 2, floor)
        candidate = spec.replace(**{field: smaller})
        if fails(candidate):
            spec = candidate
        else:
            return spec
    return spec


def shrink(
    spec: WorldSpec,
    fails: Callable[[WorldSpec], bool],
    max_checks: int = 2000,
) -> WorldSpec:
    """Minimize a failing spec while ``fails`` keeps returning True.

    For knowledge-base worlds the facts, rules, and queries are
    materialized into explicit text and delta-debugged line by line;
    for graph worlds the structural sizes (retrievals, internal nodes,
    contexts) are halved.  ``fails`` must be deterministic in the spec
    (all verification checks are — everything derives from the seed).
    Raises :class:`~repro.errors.ReproError` when the input spec does
    not fail to begin with.
    """
    budget = {"left": max_checks}

    def checked_fails(candidate: WorldSpec) -> bool:
        if budget["left"] <= 0:
            return False
        budget["left"] -= 1
        try:
            return bool(fails(candidate))
        except Exception:
            # A crash while checking a *shrunk* candidate is itself a
            # reproduction of "something is wrong with this world".
            return True

    if not checked_fails(spec):
        raise ReproError("shrink() called with a spec that does not fail")

    spec = (materialize(spec)
            if spec.profile in ("engine", "qsqn", "serving", "overload",
                                "federation")
            else spec)
    if spec.kb_rules is not None:
        for field in ("kb_facts", "kb_queries", "kb_rules"):
            value = getattr(spec, field) or ()
            keep = 1 if field == "kb_queries" else 0
            shrunk = _shrink_list(
                value,
                lambda items, f=field: spec.replace(**{f: items}),
                checked_fails,
                keep_at_least=keep,
            )
            candidate = spec.replace(**{field: shrunk})
            if checked_fails(candidate):
                spec = candidate
    else:
        for field, floor in (
            ("n_retrievals", 1),
            ("n_internal", 1),
            ("contexts", 1),
            ("n_queries", 1),
        ):
            spec = _shrink_int(spec, field, floor, checked_fails)
    return spec

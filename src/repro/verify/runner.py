"""The verify runner: profiles, chaos checks, artifacts, replay.

``repro verify --seeds N --profile P`` funnels here.  A *profile* is a
named family of seeded worlds plus the oracles that judge them:

=========  ==========================================================
profile    what is checked
=========  ==========================================================
engine     top-down vs. bottom-up answer-set equivalence on random
           stratified knowledge bases (with negation)
qsqn       three-way answer-set equivalence (top-down vs. bottom-up
           vs. QSQN nets) over the hostile world zoo: layered,
           deep-recursion, same-generation, and negation-mix shapes,
           with hot-key-skewed query streams and cache-busting
           mutation storms on alternating seeds
pib        the Υ/brute-force cost oracle per world, then Theorem 1 as
           a Clopper–Pearson contract (plus Δ̃ conservatism and
           Equation 6 monotonicity invariants on every run)
pao        Theorems 2/3 as a Clopper–Pearson contract against the
           brute-force optimum (plain and aiming worlds alternate)
serving    the virtual-clock simulator: trace byte-determinism,
           sequential parity, cache transparency, generation coherence
chaos      fault-plan worlds through the resilient executor: settled
           observations match ground truth, billed ≥ settled cost,
           byte-deterministic reruns, breaker state legality; every
           fourth seed is a combined drift+faults+burst world (the
           distribution shifts mid-run and contexts repeat in bursts)
overload   seeded burst worlds through admission control: outcome and
           trace byte-determinism, worker-count parity, typed-outcome
           conservation, learner isolation (shed requests feed no PIB
           sample), no-starvation and quota ceilings under
           reject-over-quota
federation cross-backend answer equivalence (memory vs SQLite vs
           healthy-federated, same answers in the same order), partial
           answers under shard faults are sound subsets with
           correctly-attributed missing shards, and faulty federated
           replays are byte-deterministic
experience the warm-start priors-only contract: identical answers and
           Equation 6 test schedule with/without warm-start, exact
           self-matches, insertion-order/hash-seed-independent
           nearest-neighbour rankings, and corrupt-store recovery
           through the ``.bak`` ladder
=========  ==========================================================

Deterministic failures are shrunk (``worldgen.shrink``) before being
reported, and every reported failure carries a `WorldSpec`; with
``--artifacts DIR`` each one is also written as ``worldspec-*.json``
for ``repro verify --replay``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..resilience.faults import FlakyContext
from ..resilience.policy import ResiliencePolicy
from ..resilience.retry import RetryPolicy
from ..serving.config import ExperienceConfig
from ..strategies.execution import execute_resilient
from ..strategies.strategy import Strategy
from .experience import (
    check_experience_determinism,
    check_experience_priors,
    check_experience_recovery,
)
from .federation import (
    check_federation_determinism,
    check_federation_equivalence,
    check_federation_partial,
)
from .invariants import InvariantMonitor
from .oracles import (
    OracleFailure,
    OracleReport,
    check_answer_equivalence,
    check_cost_oracle,
    check_three_way_equivalence,
    pao_contract,
    pib_contract,
)
from .overload import (
    check_overload_conservation,
    check_overload_determinism,
    check_overload_fairness,
    check_overload_isolation,
    check_overload_worker_parity,
)
from .simulator import (
    check_byte_determinism,
    check_cache_effects,
    check_generation_coherence,
    check_sequential_parity,
)
from .worldgen import (
    WorldSpec,
    build_graph_world,
    context_rng,
    shifted_distribution,
    shrink,
)

__all__ = ["PROFILES", "VerifyReport", "specs_for", "run_profile",
           "run_verify", "replay_spec"]

PROFILES = (
    "engine", "qsqn", "pib", "pao", "serving", "chaos", "overload",
    "federation", "experience",
)

#: Coverage floor (percent) enforced by ``make coverage`` and CI's
#: coverage job.  Calibrated against the 88.0% line coverage measured
#: by ``tools/approx_coverage.py`` at the floor's introduction, minus
#: a margin for collector differences (coverage.py counts some lines
#: the settrace approximation cannot, and vice versa).
COVERAGE_FLOOR = 85


@dataclass
class VerifyReport:
    """Everything one ``repro verify`` invocation produced."""

    profile: str
    reports: List[OracleReport] = field(default_factory=list)
    artifacts: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.reports)

    @property
    def failures(self) -> List[OracleFailure]:
        return [f for report in self.reports for f in report.failures]

    def summary_lines(self) -> List[str]:
        lines = [f"profile {self.profile}:"]
        for report in self.reports:
            lines.append(f"  {report.summary()}")
            for failure in report.failures:
                lines.append(f"    {failure}")
                lines.append(f"    replay: {failure.spec.to_json()}")
        for path in self.artifacts:
            lines.append(f"  wrote {path}")
        return lines


# ----------------------------------------------------------------------
# Seeded spec families
# ----------------------------------------------------------------------


def specs_for(
    profile: str, seeds: int, base_seed: int = 0
) -> List[WorldSpec]:
    """The profile's world family for seeds ``base_seed … base_seed+N-1``."""
    specs: List[WorldSpec] = []
    for offset in range(seeds):
        seed = base_seed + offset
        if profile == "engine":
            specs.append(
                WorldSpec(
                    seed=seed,
                    profile="engine",
                    negation_rate=0.15 if seed % 2 else 0.0,
                )
            )
        elif profile == "qsqn":
            # Cycle the hostile shapes; alternate seeds add cache-
            # busting storms, and the layered worlds get skewed query
            # streams plus rule-level negation.
            shape = ("layered", "deep-recursion", "same-generation",
                     "negation-mix")[seed % 4]
            specs.append(
                WorldSpec(
                    seed=seed,
                    profile="qsqn",
                    kb_shape=shape,
                    negation_rate=0.2 if shape == "layered" else 0.0,
                    hot_key_skew=0.75 if shape == "layered" else 0.0,
                    mutation_steps=6 if seed % 2 else 0,
                )
            )
        elif profile == "pib":
            specs.append(
                WorldSpec(
                    seed=seed,
                    profile="pib",
                    blockable_reduction_rate=0.3 if seed % 3 == 2 else 0.0,
                )
            )
        elif profile == "pao":
            specs.append(
                WorldSpec(
                    seed=seed,
                    profile="pao",
                    n_internal=2,
                    n_retrievals=3,
                    prob_low=0.3,
                    prob_high=0.9,
                    blockable_reduction_rate=0.5 if seed % 2 else 0.0,
                )
            )
        elif profile == "serving":
            specs.append(
                WorldSpec(
                    seed=seed,
                    profile="serving",
                    workers=2 + seed % 3,
                    answer_cache=32,
                    subgoal_memo=128,
                    repeats=2,
                )
            )
        elif profile == "chaos":
            # Every fourth seed is the combined drift+faults+burst
            # world: the blocking distribution shifts at the midpoint
            # and each sampled context arrives as a burst.
            combined = seed % 4 == 3
            specs.append(
                WorldSpec(
                    seed=seed,
                    profile="chaos",
                    contexts=40,
                    fault_rate=0.15,
                    timeout_rate=0.05,
                    retries=3,
                    drift_shift=0.6 if combined else 0.0,
                    burst_factor=3 if combined else 1,
                )
            )
        elif profile == "overload":
            specs.append(
                WorldSpec(
                    seed=seed,
                    profile="overload",
                    n_queries=10,
                    burst_factor=4,
                    tenants=2 + seed % 3,
                    queue_capacity=4 + seed % 5,
                    tenant_rate=0.5 if seed % 2 else 0.0,
                    shed_policy=(
                        "degrade-to-cached" if seed % 3 == 2
                        else "reject-over-quota" if seed % 3 == 1
                        else "reject-newest"
                    ),
                    request_deadline=40.0 if seed % 5 == 4 else None,
                    answer_cache=32 if seed % 3 == 2 else 0,
                )
            )
        elif profile == "federation":
            specs.append(
                WorldSpec(
                    seed=seed,
                    profile="federation",
                    n_queries=10,
                    n_shards=2 + seed % 3,
                    shard_replicas=bool(seed % 2),
                    fault_rate=0.2,
                    timeout_rate=0.05,
                    retries=2,
                )
            )
        elif profile == "experience":
            # PIB-style worlds with varied skeletons so the structural
            # fingerprints genuinely differ across the family.
            specs.append(
                WorldSpec(
                    seed=seed,
                    profile="experience",
                    n_internal=2 + seed % 2,
                    n_retrievals=3 + seed % 3,
                    blockable_reduction_rate=0.3 if seed % 3 == 2 else 0.0,
                )
            )
        else:
            raise ValueError(f"unknown profile {profile!r}")
    return specs


# ----------------------------------------------------------------------
# Chaos checks
# ----------------------------------------------------------------------


def _chaos_outcomes(spec: WorldSpec, monitor: InvariantMonitor):
    """One seeded chaos run: the resilient executor over flaky contexts.

    Returns the per-context outcome tuples (the determinism
    fingerprint) or raises on a soundness violation.
    """
    world = build_graph_world(spec)
    assert world.fault_plan is not None
    strategy = Strategy.depth_first(world.graph)
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=max(spec.retries, 1)),
        failure_threshold=3,
        cooldown=4,
        seed=spec.seed,
        recorder=monitor,
    )
    rng = context_rng(spec)
    # Combined drift+faults+burst worlds: at the midpoint the blocking
    # distribution shifts toward a second seeded draw, and every
    # sampled context arrives burst_factor times in a row (the same
    # storage state hammered back-to-back, the breaker stress case).
    drifted = (shifted_distribution(spec, world)
               if spec.drift_shift > 0.0 else None)
    midpoint = spec.contexts // 2
    burst = max(spec.burst_factor, 1)
    outcomes = []
    contexts = []
    for number in range(spec.contexts):
        source = (drifted if drifted is not None and number >= midpoint
                  else world.distribution)
        contexts.extend([source.sample(rng)] * burst)
    for number, inner in enumerate(contexts):
        result = execute_resilient(
            strategy, FlakyContext(inner, world.fault_plan), policy
        )
        truth = inner.statuses()
        for name, settled in result.observations.items():
            if name in truth and settled != truth[name]:
                raise AssertionError(
                    f"context #{number}: settled observation for {name} is "
                    f"{settled} but the ground truth is {truth[name]} — "
                    f"a fault leaked into the learner's view"
                )
        if result.settled_cost > result.cost + 1e-9:
            raise AssertionError(
                f"context #{number}: settled cost {result.settled_cost} "
                f"exceeds billed cost {result.cost}"
            )
        outcomes.append(
            (
                round(result.cost, 9),
                round(result.settled_cost, 9),
                result.succeeded,
                result.degraded,
                tuple(sorted(result.observations.items())),
                tuple(result.skipped_open),
                tuple(result.unsettled),
            )
        )
    return outcomes


def check_chaos(spec: WorldSpec) -> Optional[str]:
    """Soundness + determinism of the resilience layer on one world."""
    try:
        monitor = InvariantMonitor()
        first = _chaos_outcomes(spec, monitor)
        monitor.check()
        rerun_monitor = InvariantMonitor()
        second = _chaos_outcomes(spec, rerun_monitor)
        rerun_monitor.check()
    except AssertionError as error:
        return str(error)
    if first != second:
        for number, (left, right) in enumerate(zip(first, second)):
            if left != right:
                return (
                    f"chaos replay diverged at context #{number}: "
                    f"{left} != {right}"
                )
        return "chaos replay produced different context counts"
    return None


# ----------------------------------------------------------------------
# Profile execution
# ----------------------------------------------------------------------


def _run_deterministic(
    name: str,
    specs: Sequence[WorldSpec],
    check: Callable[[WorldSpec], Optional[str]],
    shrink_failures: bool = True,
) -> OracleReport:
    """Run a deterministic (per-world pass/fail) check, shrinking any
    failing spec before reporting it."""
    report = OracleReport(name)
    for spec in specs:
        report.worlds += 1
        message = check(spec)
        if message is None:
            continue
        reported = spec
        if shrink_failures:
            try:
                reported = shrink(spec, lambda s: check(s) is not None)
                message = check(reported) or message
            except Exception:
                reported = spec
        report.failures.append(OracleFailure(reported, message))
    return report


def run_profile(
    profile: str,
    seeds: int = 20,
    base_seed: int = 0,
    specs: Optional[Sequence[WorldSpec]] = None,
    shrink_failures: bool = True,
    experience: Optional[ExperienceConfig] = None,
) -> VerifyReport:
    """Run one profile's full oracle battery.

    ``experience`` carries the CLI's ``--experience-*`` knobs into the
    experience profile's checks; other profiles ignore it.
    """
    if profile not in PROFILES:
        raise ValueError(
            f"unknown profile {profile!r}; expected one of {PROFILES}"
        )
    family = list(specs) if specs is not None else specs_for(
        profile, seeds, base_seed
    )
    verify = VerifyReport(profile)
    if profile == "engine":
        verify.reports.append(
            _run_deterministic(
                "engine-equivalence", family, check_answer_equivalence,
                shrink_failures,
            )
        )
    elif profile == "qsqn":
        verify.reports.append(
            _run_deterministic(
                "qsqn-three-way-equivalence", family,
                check_three_way_equivalence, shrink_failures,
            )
        )
    elif profile == "pib":
        verify.reports.append(
            _run_deterministic(
                "cost-oracle", family, check_cost_oracle, shrink_failures
            )
        )
        verify.reports.append(pib_contract(family))
    elif profile == "pao":
        verify.reports.append(
            _run_deterministic(
                "cost-oracle", family, check_cost_oracle, shrink_failures
            )
        )
        verify.reports.append(pao_contract(family))
    elif profile == "serving":
        for name, check in (
            ("serving-byte-determinism", check_byte_determinism),
            ("serving-sequential-parity", check_sequential_parity),
            ("serving-cache-transparency", check_cache_effects),
            ("serving-generation-coherence", check_generation_coherence),
        ):
            verify.reports.append(
                _run_deterministic(name, family, check, shrink_failures)
            )
    elif profile == "chaos":
        verify.reports.append(
            _run_deterministic("chaos-resilience", family, check_chaos,
                               shrink_failures)
        )
    elif profile == "overload":
        for name, check in (
            ("overload-byte-determinism", check_overload_determinism),
            ("overload-worker-parity", check_overload_worker_parity),
            ("overload-conservation", check_overload_conservation),
            ("overload-learner-isolation", check_overload_isolation),
            ("overload-fairness", check_overload_fairness),
        ):
            verify.reports.append(
                _run_deterministic(name, family, check, shrink_failures)
            )
    elif profile == "federation":
        for name, check in (
            ("federation-backend-equivalence", check_federation_equivalence),
            ("federation-partial-soundness", check_federation_partial),
            ("federation-byte-determinism", check_federation_determinism),
        ):
            verify.reports.append(
                _run_deterministic(name, family, check, shrink_failures)
            )
    elif profile == "experience":
        for name, check in (
            ("experience-priors-only", check_experience_priors),
            ("experience-nn-determinism", check_experience_determinism),
            ("experience-store-recovery", check_experience_recovery),
        ):
            verify.reports.append(
                _run_deterministic(
                    name,
                    family,
                    lambda s, _check=check: _check(s, experience),
                    shrink_failures,
                )
            )
    return verify


def _write_artifacts(
    verify: VerifyReport, artifact_dir: str
) -> None:
    os.makedirs(artifact_dir, exist_ok=True)
    for report in verify.reports:
        for index, failure in enumerate(report.failures):
            path = os.path.join(
                artifact_dir,
                f"worldspec-{verify.profile}-{report.name}-"
                f"{failure.spec.seed}-{index}.json",
            )
            failure.spec.save(path)
            verify.artifacts.append(path)


def run_verify(
    profiles: Sequence[str],
    seeds: int = 20,
    base_seed: int = 0,
    artifact_dir: Optional[str] = None,
    out=None,
    shrink_failures: bool = True,
    experience: Optional[ExperienceConfig] = None,
) -> int:
    """Run several profiles; print summaries; return a process exit code."""
    exit_code = 0
    for profile in profiles:
        verify = run_profile(
            profile, seeds, base_seed, shrink_failures=shrink_failures,
            experience=experience,
        )
        if artifact_dir is not None and not verify.ok:
            _write_artifacts(verify, artifact_dir)
        if out is not None:
            for line in verify.summary_lines():
                print(line, file=out)
        if not verify.ok:
            exit_code = 1
    return exit_code


def replay_spec(
    spec: WorldSpec, out=None, shrink_failures: bool = False
) -> int:
    """Re-run every check of the spec's profile on exactly this world —
    the ``repro verify --replay world.json`` path."""
    verify = run_profile(
        spec.profile, specs=[spec], shrink_failures=shrink_failures
    )
    if out is not None:
        for line in verify.summary_lines():
            print(line, file=out)
    return 0 if verify.ok else 1


#: Check names per profile, for documentation and the CLI help text.
PROFILE_CHECKS: Dict[str, List[str]] = {
    "engine": ["engine-equivalence"],
    "qsqn": ["qsqn-three-way-equivalence"],
    "pib": ["cost-oracle", "pib-contract"],
    "pao": ["cost-oracle", "pao-contract"],
    "serving": [
        "serving-byte-determinism",
        "serving-sequential-parity",
        "serving-cache-transparency",
        "serving-generation-coherence",
    ],
    "chaos": ["chaos-resilience"],
    "overload": [
        "overload-byte-determinism",
        "overload-worker-parity",
        "overload-conservation",
        "overload-learner-isolation",
        "overload-fairness",
    ],
    "federation": [
        "federation-backend-equivalence",
        "federation-partial-soundness",
        "federation-byte-determinism",
    ],
    "experience": [
        "experience-priors-only",
        "experience-nn-determinism",
        "experience-store-recovery",
    ],
}

"""Always-on runtime invariants, assertable in any test or verify run.

Four families, each a structural truth the paper (or a subsystem's
documented state machine) promises unconditionally — not a statistical
contract, so a single violation is a bug:

* **Δ̃ conservatism** (Section 3.2) — the per-sample under-estimate
  ``Δ̃[Θ, Θ', I]`` never exceeds the true ``c(Θ, I) − c(Θ', I)``; the
  :class:`ConservatismWatcher` recomputes both on every monitored run
  against the *full* context the verifier (unlike PIB) can see.
* **Equation 6 schedule monotonicity** — the sequential threshold is
  strictly increasing in both the sample count and the test index, so
  within one neighbourhood (between climbs/epoch resets) the recorded
  thresholds per transformation must be non-decreasing.
* **Breaker state legality** — the only legal circuit transitions are
  closed→open, open→half-open, half-open→closed and half-open→open.
* **Cache generation coherence** — a cache keyed on
  ``Database.cache_key`` must miss the instant the database mutates.

:class:`InvariantMonitor` is a :class:`~repro.observability.recorder.Recorder`
(chainable in front of a real tracer), so the checks ride the existing
observability seam without touching any hot path.  Use it through the
:func:`verify_invariants` context manager::

    with verify_invariants() as monitor:
        pib = PIB(graph, recorder=monitor)
        ...
    # exiting raises InvariantViolation when anything was illegal
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, List, Mapping

from ..datalog.database import Database
from ..datalog.terms import Atom
from ..learning.statistics import delta_tilde
from ..observability.recorder import NULL_RECORDER, Recorder
from ..strategies.execution import ExecutionResult, cost_of
from ..strategies.transformations import neighbours

__all__ = [
    "InvariantViolation",
    "InvariantMonitor",
    "ConservatismWatcher",
    "check_cache_generation_coherence",
    "verify_invariants",
]

#: Numeric slack for cost comparisons.
TOLERANCE = 1e-9

#: The legal circuit-breaker transitions (closed→open, open→half-open,
#: half-open→closed, half-open→open).
LEGAL_BREAKER_TRANSITIONS = {
    ("closed", "open"),
    ("open", "half-open"),
    ("half-open", "closed"),
    ("half-open", "open"),
}


class InvariantViolation(AssertionError):
    """A runtime invariant was violated — always a bug, never noise."""


class InvariantMonitor(Recorder):
    """A recorder that checks invariants as events stream through it.

    Wraps an ``inner`` recorder (the null one by default) and forwards
    every event after checking, so it can sit in front of a
    :class:`~repro.observability.tracer.Tracer` without losing the
    trace.  Violations accumulate in :attr:`violations`;
    :meth:`check` raises the first one.
    """

    enabled = True

    def __init__(self, inner: Recorder = NULL_RECORDER):
        self.inner = inner
        self.metrics = inner.metrics
        self.violations: List[str] = []
        #: Last Equation 6 threshold seen per transformation, reset on
        #: every climb / epoch reset (new neighbourhood, new schedule).
        self._last_threshold: Dict[str, float] = {}
        #: Last known breaker state per arc (assumed closed at birth).
        self._breaker_state: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------

    def _violate(self, message: str) -> None:
        self.violations.append(message)

    def check(self) -> None:
        """Raise :class:`InvariantViolation` if anything was illegal."""
        if self.violations:
            raise InvariantViolation(
                f"{len(self.violations)} invariant violation(s); first: "
                f"{self.violations[0]}"
            )

    # ------------------------------------------------------------------
    # Learner events
    # ------------------------------------------------------------------

    def chernoff_margin(
        self,
        transformation: str,
        samples: int,
        delta_sum: float,
        threshold: float,
    ) -> None:
        if threshold < 0.0:
            self._violate(
                f"Equation 6 threshold negative for {transformation}: "
                f"{threshold}"
            )
        previous = self._last_threshold.get(transformation)
        if previous is not None and threshold < previous - TOLERANCE:
            self._violate(
                f"Equation 6 schedule not monotone for {transformation}: "
                f"threshold fell {previous:.6g} -> {threshold:.6g} "
                f"within one neighbourhood"
            )
        self._last_threshold[transformation] = threshold
        if self.inner.enabled:
            self.inner.chernoff_margin(
                transformation, samples, delta_sum, threshold
            )

    def climb(self, record: Any) -> None:
        self._last_threshold.clear()
        if self.inner.enabled:
            self.inner.climb(record)

    def epoch_reset(self, epoch: int, context_number: int, strategy) -> None:
        self._last_threshold.clear()
        if self.inner.enabled:
            self.inner.epoch_reset(epoch, context_number, strategy)

    def rollback(self, epoch, context_number, from_arcs, to_arcs) -> None:
        self._last_threshold.clear()
        if self.inner.enabled:
            self.inner.rollback(epoch, context_number, from_arcs, to_arcs)

    def learner_sample(
        self, contexts_processed: int, cost: float, deltas: Mapping[str, float]
    ) -> None:
        if self.inner.enabled:
            self.inner.learner_sample(contexts_processed, cost, deltas)

    # ------------------------------------------------------------------
    # Breaker events
    # ------------------------------------------------------------------

    def breaker_transition(
        self, arc_name: str, old_state: str, new_state: str
    ) -> None:
        known = self._breaker_state.get(arc_name, "closed")
        if old_state != known:
            self._violate(
                f"breaker {arc_name} transitioned from {old_state!r} but "
                f"its last known state was {known!r}"
            )
        if (old_state, new_state) not in LEGAL_BREAKER_TRANSITIONS:
            self._violate(
                f"illegal breaker transition on {arc_name}: "
                f"{old_state} -> {new_state}"
            )
        self._breaker_state[arc_name] = new_state
        if self.inner.enabled:
            self.inner.breaker_transition(arc_name, old_state, new_state)

    # ------------------------------------------------------------------
    # Pass-throughs (events the monitor forwards but does not check)
    # ------------------------------------------------------------------

    def begin_query(self, strategy: Any, resilient: bool = False) -> int:
        return self.inner.begin_query(strategy, resilient)

    def end_query(self, span: int, **fields: Any) -> None:
        if self.inner.enabled:
            self.inner.end_query(span, **fields)

    def arc_attempt(self, span, arc_name, outcome, cost, attempt=1) -> None:
        if self.inner.enabled:
            self.inner.arc_attempt(span, arc_name, outcome, cost, attempt)

    def arc_retry(self, span, arc_name, attempt, backoff) -> None:
        if self.inner.enabled:
            self.inner.arc_retry(span, arc_name, attempt, backoff)

    def arc_unsettled(self, span, arc_name, attempts) -> None:
        if self.inner.enabled:
            self.inner.arc_unsettled(span, arc_name, attempts)

    def breaker_shed(self, span, arc_name) -> None:
        if self.inner.enabled:
            self.inner.breaker_shed(span, arc_name)

    def deadline_expired(self, span, spent) -> None:
        if self.inner.enabled:
            self.inner.deadline_expired(span, spent)

    def cache_hit(self, kind: str) -> None:
        if self.inner.enabled:
            self.inner.cache_hit(kind)

    def cache_miss(self, kind: str) -> None:
        if self.inner.enabled:
            self.inner.cache_miss(kind)

    def cache_evict(self, kind: str) -> None:
        if self.inner.enabled:
            self.inner.cache_evict(kind)

    def incident(self, description: str) -> None:
        if self.inner.enabled:
            self.inner.incident(description)

    def drift_alarm(self, epoch, context_number, sources) -> None:
        if self.inner.enabled:
            self.inner.drift_alarm(epoch, context_number, sources)

    def pao_budget(self, requirements) -> None:
        if self.inner.enabled:
            self.inner.pao_budget(requirements)

    def pao_complete(self, contexts_used, estimates) -> None:
        if self.inner.enabled:
            self.inner.pao_complete(contexts_used, estimates)

    def checkpoint_saved(self, path: str) -> None:
        if self.inner.enabled:
            self.inner.checkpoint_saved(path)

    def checkpoint_restored(self, path: str) -> None:
        if self.inner.enabled:
            self.inner.checkpoint_restored(path)

    def snapshot(self) -> Dict[str, object]:
        return {
            "violations": list(self.violations),
            "breaker_states": dict(self._breaker_state),
        }


class ConservatismWatcher:
    """Checks Δ̃ conservatism against the full context, per sample.

    PIB only ever sees the monitored run's observations; the verifier
    also holds the *complete* context, so it can compute the true
    ``c(Θ, I) − c(Θ', I)`` for every neighbour and assert that the
    conservative estimate never exceeds it.  Call :meth:`observe` with
    the result *before* feeding it to ``pib.record`` (both read the
    current neighbourhood).
    """

    def __init__(self, tolerance: float = TOLERANCE):
        self.tolerance = tolerance
        self.samples_checked = 0

    def observe(self, learner, result: ExecutionResult) -> None:
        base_cost = cost_of(learner.strategy, result.context)
        for transformation, candidate in neighbours(
            learner.strategy, learner.transformations
        ):
            estimate = delta_tilde(result, candidate)
            true_delta = base_cost - cost_of(candidate, result.context)
            if estimate > true_delta + self.tolerance:
                raise InvariantViolation(
                    f"delta-tilde not conservative for "
                    f"{transformation.name}: estimate {estimate:.6g} > "
                    f"true {true_delta:.6g}"
                )
            self.samples_checked += 1


def check_cache_generation_coherence(
    cache, query: Atom, database: Database
) -> None:
    """Assert a cache keyed on ``Database.cache_key`` honours mutation.

    ``cache`` is an :class:`~repro.serving.cache.AnswerCache` (or any
    object with the same ``lookup(query, database)`` shape).  The
    database's generation counter must make any entry stored before the
    last mutation unreachable; a hit against a freshly mutated database
    is a stale read.
    """
    generation_before = database.generation
    marker = Atom("__verify_coherence__", ["probe"])
    database.add(marker)
    try:
        if database.generation == generation_before:
            raise InvariantViolation(
                "database generation did not advance on mutation"
            )
        if cache.lookup(query, database) is not None:
            raise InvariantViolation(
                f"cache served {query} from a stale generation after "
                f"the database mutated"
            )
    finally:
        database.remove(marker)


@contextmanager
def verify_invariants(inner: Recorder = NULL_RECORDER):
    """Context manager: run with an :class:`InvariantMonitor` attached,
    raise :class:`InvariantViolation` on exit if anything was illegal.

    On an exceptional exit the original exception propagates unchanged
    (the monitor's findings stay inspectable on the instance).
    """
    monitor = InvariantMonitor(inner)
    yield monitor
    monitor.check()

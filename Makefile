PYTHON ?= python
export PYTHONPATH := src

.PHONY: test verify verify-deep coverage coverage-approx lint examples \
	bench-trajectory bench-check

test:
	$(PYTHON) -m pytest -x -q

## The deterministic-simulation / differential-oracle battery.
verify:
	$(PYTHON) -m repro verify --seeds 20 --artifacts verify-artifacts

verify-deep:
	$(PYTHON) -m repro verify --seeds 200 --artifacts verify-artifacts

## Coverage gate (requires the coverage package — a CI-only
## dependency; the floor lives in src/repro/verify/runner.py).
coverage:
	$(PYTHON) -m repro verify --coverage

## Dependency-free approximation of the same number (slow: settrace).
coverage-approx:
	$(PYTHON) tools/approx_coverage.py -q

lint:
	ruff check src tests benchmarks examples tools

## Re-run the pinned perf suite and refresh this PR's BENCH_<n>.json
## (see tools/bench_trajectory.py for the trajectory story).
BENCH_LABEL ?= 10
bench-trajectory:
	$(PYTHON) tools/bench_trajectory.py --label $(BENCH_LABEL)

## Compare the suite's deterministic metrics against the committed
## snapshot without rewriting it (the CI gate for hot-path PRs).
bench-check:
	$(PYTHON) tools/bench_trajectory.py --label $(BENCH_LABEL) --check

examples:
	for example in examples/*.py; do \
		echo "--- $$example"; \
		$(PYTHON) "$$example" > /dev/null || exit 1; \
	done
